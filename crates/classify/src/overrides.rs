//! Per-CVE manual overrides.
//!
//! The paper's classification was done entirely by hand; a rule engine will
//! always have residual errors on unusual descriptions. The override table
//! reproduces the "human in the loop": specific CVE identifiers can be pinned
//! to a class, and the classifier consults the table before the rules.

use std::collections::HashMap;

use nvd_model::{CveId, OsPart};

/// A table of per-CVE classification overrides.
///
/// # Example
///
/// ```
/// use classify::OverrideTable;
/// use nvd_model::{CveId, OsPart};
///
/// let mut table = OverrideTable::new();
/// table.set(CveId::new(2008, 4609), OsPart::Kernel);
/// assert_eq!(table.lookup(CveId::new(2008, 4609)), Some(OsPart::Kernel));
/// assert_eq!(table.lookup(CveId::new(2008, 1447)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OverrideTable {
    entries: HashMap<CveId, OsPart>,
}

impl OverrideTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        OverrideTable {
            entries: HashMap::new(),
        }
    }

    /// Creates a table pre-loaded with the well-known multi-OS
    /// vulnerabilities named in the paper (Section IV-B): the DNS cache
    /// poisoning of CVE-2008-1447 and the DHCP flaw of CVE-2007-5365 live in
    /// system software (both are implemented by system daemons), while the
    /// TCP denial of service of CVE-2008-4609 is a kernel (protocol stack)
    /// problem.
    pub fn paper_defaults() -> Self {
        let mut table = OverrideTable::new();
        table.set(CveId::new(2008, 1447), OsPart::SystemSoftware);
        table.set(CveId::new(2007, 5365), OsPart::SystemSoftware);
        table.set(CveId::new(2008, 4609), OsPart::Kernel);
        table
    }

    /// Pins a CVE to a class, returning the previous value if any.
    pub fn set(&mut self, id: CveId, part: OsPart) -> Option<OsPart> {
        self.entries.insert(id, part)
    }

    /// Removes an override, returning the removed class if any.
    pub fn remove(&mut self, id: CveId) -> Option<OsPart> {
        self.entries.remove(&id)
    }

    /// Looks an override up.
    pub fn lookup(&self, id: CveId) -> Option<OsPart> {
        self.entries.get(&id).copied()
    }

    /// Number of overrides.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(cve, part)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (CveId, OsPart)> + '_ {
        self.entries.iter().map(|(id, part)| (*id, *part))
    }
}

impl FromIterator<(CveId, OsPart)> for OverrideTable {
    fn from_iter<T: IntoIterator<Item = (CveId, OsPart)>>(iter: T) -> Self {
        let mut table = OverrideTable::new();
        for (id, part) in iter {
            table.set(id, part);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lookup_remove() {
        let mut table = OverrideTable::new();
        assert!(table.is_empty());
        assert_eq!(table.set(CveId::new(2005, 1), OsPart::Driver), None);
        assert_eq!(
            table.set(CveId::new(2005, 1), OsPart::Kernel),
            Some(OsPart::Driver)
        );
        assert_eq!(table.lookup(CveId::new(2005, 1)), Some(OsPart::Kernel));
        assert_eq!(table.len(), 1);
        assert_eq!(table.remove(CveId::new(2005, 1)), Some(OsPart::Kernel));
        assert_eq!(table.remove(CveId::new(2005, 1)), None);
        assert!(table.is_empty());
    }

    #[test]
    fn paper_defaults_contains_the_named_cves() {
        let table = OverrideTable::paper_defaults();
        assert_eq!(table.len(), 3);
        assert_eq!(table.lookup(CveId::new(2008, 4609)), Some(OsPart::Kernel));
        assert_eq!(
            table.lookup(CveId::new(2008, 1447)),
            Some(OsPart::SystemSoftware)
        );
        assert_eq!(
            table.lookup(CveId::new(2007, 5365)),
            Some(OsPart::SystemSoftware)
        );
    }

    #[test]
    fn from_iterator_and_iter_roundtrip() {
        let table: OverrideTable = [
            (CveId::new(2001, 1), OsPart::Application),
            (CveId::new(2001, 2), OsPart::Driver),
        ]
        .into_iter()
        .collect();
        assert_eq!(table.len(), 2);
        let mut collected: Vec<_> = table.iter().collect();
        collected.sort_by_key(|(id, _)| *id);
        assert_eq!(collected[0], (CveId::new(2001, 1), OsPart::Application));
    }
}
