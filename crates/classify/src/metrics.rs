//! Evaluation metrics for the classifier.
//!
//! The synthetic dataset carries ground-truth classes (it generates each
//! description *from* its class), which makes it possible to quantify how
//! well the rule engine reproduces the intended classification — something
//! the paper's manual process could not report.

use std::fmt;

use nvd_model::OsPart;

/// A 4×4 confusion matrix over the OS-part classes.
///
/// Rows are the true class, columns the predicted class, both in
/// [`OsPart::ALL`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: [[u64; 4]; 4],
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    fn index(part: OsPart) -> usize {
        OsPart::ALL
            .iter()
            .position(|p| *p == part)
            .expect("OsPart::ALL contains every class")
    }

    /// Records one observation.
    pub fn record(&mut self, truth: OsPart, predicted: OsPart) {
        self.counts[Self::index(truth)][Self::index(predicted)] += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Number of observations where the prediction matched the truth.
    pub fn correct(&self) -> u64 {
        (0..4).map(|i| self.counts[i][i]).sum()
    }

    /// Overall accuracy in `[0, 1]`; zero when no observations were recorded.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// The count of observations with the given true and predicted classes.
    pub fn count(&self, truth: OsPart, predicted: OsPart) -> u64 {
        self.counts[Self::index(truth)][Self::index(predicted)]
    }

    /// Precision of a class: of everything predicted as `part`, the fraction
    /// that truly is `part`. Returns `None` when the class was never
    /// predicted.
    pub fn precision(&self, part: OsPart) -> Option<f64> {
        let col = Self::index(part);
        let predicted: u64 = (0..4).map(|row| self.counts[row][col]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.counts[col][col] as f64 / predicted as f64)
        }
    }

    /// Recall of a class: of everything truly `part`, the fraction predicted
    /// as `part`. Returns `None` when the class never occurred.
    pub fn recall(&self, part: OsPart) -> Option<f64> {
        let row = Self::index(part);
        let actual: u64 = self.counts[row].iter().sum();
        if actual == 0 {
            None
        } else {
            Some(self.counts[row][row] as f64 / actual as f64)
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>12} | predicted", "")?;
        write!(f, "{:>12} |", "true")?;
        for part in OsPart::ALL {
            write!(f, " {:>10}", part.label())?;
        }
        writeln!(f)?;
        for (row, truth) in OsPart::ALL.iter().enumerate() {
            write!(f, "{:>12} |", truth.label())?;
            for col in 0..4 {
                write!(f, " {:>10}", self.counts[row][col])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A full evaluation report: the confusion matrix plus derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// The underlying confusion matrix.
    pub matrix: ConfusionMatrix,
}

impl ClassificationReport {
    /// Builds a report from `(truth, predicted)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (OsPart, OsPart)>,
    {
        let mut matrix = ConfusionMatrix::new();
        for (truth, predicted) in pairs {
            matrix.record(truth, predicted);
        }
        ClassificationReport { matrix }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        self.matrix.accuracy()
    }

    /// Macro-averaged F1 score over the classes that occur at least once.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut classes = 0u32;
        for part in OsPart::ALL {
            let (Some(p), Some(r)) = (self.matrix.precision(part), self.matrix.recall(part)) else {
                continue;
            };
            classes += 1;
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        if classes == 0 {
            0.0
        } else {
            sum / f64::from(classes)
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.matrix)?;
        writeln!(
            f,
            "accuracy = {:.3}, macro-F1 = {:.3}, n = {}",
            self.accuracy(),
            self.macro_f1(),
            self.matrix.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_accuracy_one() {
        let report = ClassificationReport::from_pairs(
            OsPart::ALL.into_iter().map(|p| (p, p)).collect::<Vec<_>>(),
        );
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.macro_f1(), 1.0);
        assert_eq!(report.matrix.correct(), 4);
    }

    #[test]
    fn empty_matrix_is_well_behaved() {
        let matrix = ConfusionMatrix::new();
        assert_eq!(matrix.total(), 0);
        assert_eq!(matrix.accuracy(), 0.0);
        assert_eq!(matrix.precision(OsPart::Kernel), None);
        assert_eq!(matrix.recall(OsPart::Driver), None);
    }

    #[test]
    fn precision_and_recall_match_hand_computation() {
        // 3 kernel entries: 2 predicted kernel, 1 predicted application.
        // 1 application entry: predicted kernel.
        let report = ClassificationReport::from_pairs([
            (OsPart::Kernel, OsPart::Kernel),
            (OsPart::Kernel, OsPart::Kernel),
            (OsPart::Kernel, OsPart::Application),
            (OsPart::Application, OsPart::Kernel),
        ]);
        let m = &report.matrix;
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(OsPart::Kernel, OsPart::Kernel), 2);
        assert_eq!(m.count(OsPart::Kernel, OsPart::Application), 1);
        // Kernel precision: 2 correct of 3 predicted kernel.
        assert!((m.precision(OsPart::Kernel).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Kernel recall: 2 of 3 true kernel.
        assert!((m.recall(OsPart::Kernel).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Application recall: 0 of 1.
        assert_eq!(m.recall(OsPart::Application), Some(0.0));
        assert!((report.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_classes() {
        let mut matrix = ConfusionMatrix::new();
        matrix.record(OsPart::Driver, OsPart::Driver);
        let text = format!("{matrix}");
        for part in OsPart::ALL {
            assert!(text.contains(part.label()));
        }
        let report = ClassificationReport { matrix };
        assert!(format!("{report}").contains("accuracy"));
    }
}
