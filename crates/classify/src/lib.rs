//! Rule-based classification of vulnerabilities into OS parts.
//!
//! Section III-B of the paper describes a manual classification of all 1887
//! valid entries into four classes — *Driver*, *Kernel*, *System Software*
//! and *Application* — based on the vulnerability description. That manual
//! step cannot be reproduced exactly (the per-entry labels were never
//! published), so this crate encodes the paper's classification rationale as
//! an explicit keyword rule engine:
//!
//! * [`rules`] — the rule sets, one per class, derived from the examples the
//!   paper gives (network cards, web cams and UPnP devices are drivers; the
//!   TCP/IP stack, file systems and process management are kernel; login,
//!   shells and basic daemons are system software; DBMSes, browsers, media
//!   players and language runtimes are applications);
//! * [`engine`] — the [`Classifier`]: scores a description against every
//!   rule set and picks the best match, with an explicit priority order for
//!   ties and a configurable default class;
//! * [`overrides`] — a per-CVE override table reproducing the "by hand"
//!   corrections that a human analyst would make;
//! * [`metrics`] — evaluation helpers (confusion matrix, accuracy, per-class
//!   precision/recall) used to validate the classifier against the
//!   ground-truth labels carried by the synthetic dataset.
//!
//! # Example
//!
//! ```
//! use classify::Classifier;
//! use nvd_model::OsPart;
//!
//! let classifier = Classifier::with_default_rules();
//! let part = classifier.classify_summary(
//!     "Buffer overflow in the wireless network card driver allows remote attackers \
//!      to execute arbitrary code via a crafted beacon frame",
//! );
//! assert_eq!(part, OsPart::Driver);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod overrides;
pub mod rules;

pub use engine::{ClassificationOutcome, Classifier};
pub use metrics::{ClassificationReport, ConfusionMatrix};
pub use overrides::OverrideTable;
pub use rules::{Rule, RuleSet};
