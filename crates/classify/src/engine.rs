//! The classification engine.

use nvd_model::{CveId, OsPart, VulnerabilityEntry};

use crate::overrides::OverrideTable;
use crate::rules::RuleSet;

/// The outcome of classifying one entry, including enough information to
/// audit the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationOutcome {
    /// The class that was assigned.
    pub part: OsPart,
    /// Score per class in [`OsPart::ALL`] order.
    pub scores: [u32; 4],
    /// Whether the decision came from the override table rather than the
    /// rules.
    pub from_override: bool,
    /// Whether no rule matched and the default class was used.
    pub defaulted: bool,
}

/// Classifies vulnerability descriptions into OS parts
/// (Driver / Kernel / System Software / Application).
///
/// Ties are broken with an explicit priority: *Driver* wins over
/// *Application*, which wins over *System Software*, which wins over
/// *Kernel*. The rationale mirrors the paper's classification procedure:
/// driver and application wording is very specific (a description naming a
/// driver or a bundled product is clearly about that component), whereas
/// kernel wording is generic, so the generic classes only win when nothing
/// more specific matched. Descriptions with no matching keyword at all fall
/// back to the configurable default class ([`OsPart::Kernel`] by default,
/// the paper's most common base-system class).
#[derive(Debug, Clone)]
pub struct Classifier {
    rules: RuleSet,
    overrides: OverrideTable,
    default_part: OsPart,
}

impl Classifier {
    /// Creates a classifier with the paper-derived rule set and an empty
    /// override table.
    pub fn with_default_rules() -> Self {
        Classifier {
            rules: RuleSet::paper_defaults(),
            overrides: OverrideTable::new(),
            default_part: OsPart::Kernel,
        }
    }

    /// Creates a classifier from a custom rule set.
    pub fn new(rules: RuleSet) -> Self {
        Classifier {
            rules,
            overrides: OverrideTable::new(),
            default_part: OsPart::Kernel,
        }
    }

    /// Replaces the override table.
    pub fn with_overrides(mut self, overrides: OverrideTable) -> Self {
        self.overrides = overrides;
        self
    }

    /// Changes the class assigned when no rule matches.
    pub fn with_default_part(mut self, part: OsPart) -> Self {
        self.default_part = part;
        self
    }

    /// The rule set in use.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The override table in use.
    pub fn overrides(&self) -> &OverrideTable {
        &self.overrides
    }

    /// Classifies a bare description.
    pub fn classify_summary(&self, summary: &str) -> OsPart {
        self.outcome_for(None, summary).part
    }

    /// Classifies an entry (overrides are consulted first).
    pub fn classify_entry(&self, entry: &VulnerabilityEntry) -> ClassificationOutcome {
        self.outcome_for(Some(entry.id()), entry.summary())
    }

    /// Classifies every entry of a slice in place: entries that already have
    /// a class keep it, the rest get the rule-based class. Returns how many
    /// entries were (re-)classified.
    pub fn classify_all(&self, entries: &mut [VulnerabilityEntry]) -> usize {
        let mut classified = 0;
        for entry in entries.iter_mut() {
            if entry.part().is_none() {
                let outcome = self.classify_entry(entry);
                entry.set_part(outcome.part);
                classified += 1;
            }
        }
        classified
    }

    fn outcome_for(&self, id: Option<CveId>, summary: &str) -> ClassificationOutcome {
        if let Some(id) = id {
            if let Some(part) = self.overrides.lookup(id) {
                return ClassificationOutcome {
                    part,
                    scores: [0; 4],
                    from_override: true,
                    defaulted: false,
                };
            }
        }
        let scores = self.rules.scores(summary);
        let total: u32 = scores.iter().sum();
        if total == 0 {
            return ClassificationOutcome {
                part: self.default_part,
                scores,
                from_override: false,
                defaulted: true,
            };
        }
        // Tie-break priority: Driver, Application, SystemSoftware, Kernel.
        let priority = [
            OsPart::Driver,
            OsPart::Application,
            OsPart::SystemSoftware,
            OsPart::Kernel,
        ];
        let best_score = *scores.iter().max().expect("four classes");
        let part = priority
            .into_iter()
            .find(|p| {
                let index = OsPart::ALL
                    .iter()
                    .position(|q| q == p)
                    .expect("class index");
                scores[index] == best_score
            })
            .expect("some class attains the maximum score");
        ClassificationOutcome {
            part,
            scores,
            from_override: false,
            defaulted: false,
        }
    }
}

impl Default for Classifier {
    fn default() -> Self {
        Classifier::with_default_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;
    use nvd_model::OsDistribution;

    #[test]
    fn classifies_paper_style_descriptions() {
        let c = Classifier::with_default_rules();
        assert_eq!(
            c.classify_summary(
                "Heap overflow in the wireless network card driver allows remote code execution"
            ),
            OsPart::Driver
        );
        assert_eq!(
            c.classify_summary(
                "The TCP/IP stack does not properly validate sequence numbers, \
                 allowing a remote denial of service"
            ),
            OsPart::Kernel
        );
        assert_eq!(
            c.classify_summary(
                "Format string vulnerability in the login daemon allows local users \
                 to gain privileges"
            ),
            OsPart::SystemSoftware
        );
        assert_eq!(
            c.classify_summary(
                "SQL injection in the bundled database server allows remote attackers \
                 to read arbitrary tables"
            ),
            OsPart::Application
        );
    }

    #[test]
    fn unmatched_descriptions_use_the_default_class() {
        let c = Classifier::with_default_rules();
        let outcome = c.outcome_for(None, "An unusual flaw with no recognisable wording");
        assert!(outcome.defaulted);
        assert_eq!(outcome.part, OsPart::Kernel);
        let c = c.with_default_part(OsPart::SystemSoftware);
        assert_eq!(
            c.classify_summary("An unusual flaw with no recognisable wording"),
            OsPart::SystemSoftware
        );
    }

    #[test]
    fn tie_break_prefers_more_specific_classes() {
        // One rule per class, same weight, all matching.
        let rules: RuleSet = [
            Rule::new(OsPart::Kernel, "flaw", 1),
            Rule::new(OsPart::SystemSoftware, "flaw", 1),
            Rule::new(OsPart::Application, "flaw", 1),
            Rule::new(OsPart::Driver, "flaw", 1),
        ]
        .into_iter()
        .collect();
        let c = Classifier::new(rules);
        assert_eq!(c.classify_summary("a flaw"), OsPart::Driver);

        let rules: RuleSet = [
            Rule::new(OsPart::Kernel, "flaw", 1),
            Rule::new(OsPart::Application, "flaw", 1),
        ]
        .into_iter()
        .collect();
        let c = Classifier::new(rules);
        assert_eq!(c.classify_summary("a flaw"), OsPart::Application);
    }

    #[test]
    fn overrides_take_precedence_over_rules() {
        let mut overrides = OverrideTable::new();
        overrides.set(CveId::new(2008, 4609), OsPart::Kernel);
        let c = Classifier::with_default_rules().with_overrides(overrides);
        let entry = VulnerabilityEntry::builder(CveId::new(2008, 4609))
            .summary("database server flaw") // rules would say Application
            .affects_os(OsDistribution::Windows2000)
            .build()
            .unwrap();
        let outcome = c.classify_entry(&entry);
        assert!(outcome.from_override);
        assert_eq!(outcome.part, OsPart::Kernel);
        assert!(c.overrides().lookup(CveId::new(2008, 4609)).is_some());
    }

    #[test]
    fn classify_all_fills_missing_classes_only() {
        let c = Classifier::with_default_rules();
        let mut entries = vec![
            VulnerabilityEntry::builder(CveId::new(2005, 1))
                .summary("kernel memory management flaw")
                .build()
                .unwrap(),
            VulnerabilityEntry::builder(CveId::new(2005, 2))
                .summary("media player crash")
                .part(OsPart::Kernel) // pre-assigned, must be kept
                .build()
                .unwrap(),
        ];
        let classified = c.classify_all(&mut entries);
        assert_eq!(classified, 1);
        assert_eq!(entries[0].part(), Some(OsPart::Kernel));
        assert_eq!(entries[1].part(), Some(OsPart::Kernel));
    }

    #[test]
    fn outcome_scores_are_reported() {
        let c = Classifier::with_default_rules();
        let outcome = c.outcome_for(None, "buffer overflow in the kernel scheduler");
        assert!(!outcome.defaulted);
        assert!(!outcome.from_override);
        let kernel_index = OsPart::ALL
            .iter()
            .position(|p| *p == OsPart::Kernel)
            .unwrap();
        assert!(outcome.scores[kernel_index] >= 6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn classifier_is_total_and_deterministic(summary in "[ -~]{0,200}") {
                let c = Classifier::with_default_rules();
                let a = c.classify_summary(&summary);
                let b = c.classify_summary(&summary);
                prop_assert_eq!(a, b);
            }
        }
    }
}
