//! Keyword rules encoding the classification rationale of Section III-B.

use nvd_model::OsPart;

/// A single keyword rule: if the (lower-cased) description contains
/// `keyword`, `weight` points are added to the score of `part`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The class the rule votes for.
    pub part: OsPart,
    /// The keyword to look for (lower-case; matched as a substring).
    pub keyword: &'static str,
    /// How many points a match contributes.
    pub weight: u32,
}

impl Rule {
    /// Creates a rule.
    pub const fn new(part: OsPart, keyword: &'static str, weight: u32) -> Self {
        Rule {
            part,
            keyword,
            weight,
        }
    }

    /// Whether the rule matches a lower-cased description.
    pub fn matches(&self, lower_description: &str) -> bool {
        lower_description.contains(self.keyword)
    }
}

/// An ordered collection of [`Rule`]s.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        RuleSet { rules: Vec::new() }
    }

    /// Creates the default rule set used by the study reproduction.
    ///
    /// The keywords come from the class definitions in Section III-B of the
    /// paper and from the typical wording of NVD summaries for each class.
    pub fn paper_defaults() -> Self {
        use OsPart::*;
        let mut set = RuleSet::new();
        let rules: &[(OsPart, &'static str, u32)] = &[
            // ---------------- Driver ----------------
            (Driver, "driver", 6),
            (Driver, "wireless", 3),
            (Driver, "network card", 4),
            (Driver, "video card", 4),
            (Driver, "graphics card", 4),
            (Driver, "sound card", 4),
            (Driver, "audio card", 4),
            (Driver, "web cam", 4),
            (Driver, "webcam", 4),
            (Driver, "universal plug and play", 4),
            (Driver, "upnp device", 4),
            (Driver, "firmware", 2),
            (Driver, "beacon frame", 2),
            (Driver, "802.11", 2),
            // ---------------- Kernel ----------------
            (Kernel, "kernel", 6),
            (Kernel, "tcp/ip stack", 5),
            (Kernel, "tcp implementation", 5),
            (Kernel, "ip stack", 4),
            (Kernel, "network stack", 4),
            (Kernel, "icmp", 3),
            (Kernel, "tcp", 2),
            (Kernel, "file system", 4),
            (Kernel, "filesystem", 4),
            (Kernel, "virtual memory", 4),
            (Kernel, "memory management", 4),
            (Kernel, "page table", 4),
            (Kernel, "process management", 4),
            (Kernel, "task management", 4),
            (Kernel, "scheduler", 3),
            (Kernel, "system call", 4),
            (Kernel, "syscall", 4),
            (Kernel, "core library", 3),
            (Kernel, "libc", 3),
            (Kernel, "signal handler", 3),
            (Kernel, "privilege escalation in the kernel", 5),
            (Kernel, "processor", 2),
            (Kernel, "cpu", 2),
            (Kernel, "ioctl", 3),
            (Kernel, "packet", 1),
            // ---------------- System software ----------------
            (SystemSoftware, "login", 4),
            (SystemSoftware, "shell", 3),
            (SystemSoftware, "daemon", 4),
            (SystemSoftware, "init script", 3),
            (SystemSoftware, "cron", 3),
            (SystemSoftware, "syslog", 3),
            (SystemSoftware, "sshd", 4),
            (SystemSoftware, "openssh", 4),
            (SystemSoftware, "telnetd", 4),
            (SystemSoftware, "ftpd", 3),
            (SystemSoftware, "inetd", 4),
            (SystemSoftware, "rpc service", 3),
            (SystemSoftware, "rpcbind", 3),
            (SystemSoftware, "nfs server", 3),
            (SystemSoftware, "dhcp", 3),
            (SystemSoftware, "dns resolver", 3),
            (SystemSoftware, "dns protocol", 3),
            (SystemSoftware, "name service", 3),
            (SystemSoftware, "authentication module", 3),
            (SystemSoftware, "pam", 2),
            (SystemSoftware, "sudo", 3),
            (SystemSoftware, "passwd", 3),
            (SystemSoftware, "getty", 3),
            (SystemSoftware, "system utility", 3),
            (SystemSoftware, "package manager", 3),
            // ---------------- Application ----------------
            (Application, "database server", 5),
            (Application, "database management", 5),
            (Application, "sql server", 4),
            (Application, "mysql", 4),
            (Application, "postgresql", 4),
            (Application, "web browser", 5),
            (Application, "internet explorer", 5),
            (Application, "browser", 3),
            (Application, "messenger", 4),
            (Application, "mail client", 4),
            (Application, "email client", 4),
            (Application, "mail server", 4),
            (Application, "web server", 4),
            (Application, "http server", 4),
            (Application, "ftp client", 4),
            (Application, "media player", 5),
            (Application, "music player", 5),
            (Application, "video player", 5),
            (Application, "text editor", 4),
            (Application, "word processor", 4),
            (Application, "spreadsheet", 4),
            (Application, "compiler", 4),
            (Application, "virtual machine", 3),
            (Application, "java runtime", 4),
            (Application, "interpreter", 3),
            (Application, "scripting language", 3),
            (Application, "antivirus", 4),
            (Application, "kerberos", 3),
            (Application, "ldap", 3),
            (Application, "game", 2),
            (Application, "office", 3),
            (Application, "pdf viewer", 4),
            (Application, "image viewer", 4),
            (Application, "archive utility", 3),
        ];
        for (part, keyword, weight) in rules {
            set.push(Rule::new(*part, keyword, *weight));
        }
        set
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the rule set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, Rule> {
        self.rules.iter()
    }

    /// Scores a description against every rule; returns the total score per
    /// class in [`OsPart::ALL`] order.
    pub fn scores(&self, description: &str) -> [u32; 4] {
        let lower = description.to_ascii_lowercase();
        let mut scores = [0u32; 4];
        for rule in &self.rules {
            if rule.matches(&lower) {
                let index = OsPart::ALL
                    .iter()
                    .position(|p| *p == rule.part)
                    .expect("OsPart::ALL contains every class");
                scores[index] += rule.weight;
            }
        }
        scores
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        let mut set = RuleSet::new();
        for rule in iter {
            set.push(rule);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_cover_all_classes() {
        let set = RuleSet::paper_defaults();
        assert!(set.len() > 50);
        for part in OsPart::ALL {
            assert!(
                set.iter().any(|r| r.part == part),
                "no rules for class {part}"
            );
        }
    }

    #[test]
    fn rule_matching_is_case_insensitive_via_scores() {
        let set = RuleSet::paper_defaults();
        let upper = set.scores("Buffer overflow in the KERNEL memory management");
        let lower = set.scores("buffer overflow in the kernel memory management");
        assert_eq!(upper, lower);
        let kernel_index = OsPart::ALL
            .iter()
            .position(|p| *p == OsPart::Kernel)
            .unwrap();
        assert!(upper[kernel_index] > 0);
    }

    #[test]
    fn scores_accumulate_multiple_matches() {
        let set: RuleSet = [
            Rule::new(OsPart::Driver, "driver", 2),
            Rule::new(OsPart::Driver, "wireless", 3),
            Rule::new(OsPart::Kernel, "kernel", 5),
        ]
        .into_iter()
        .collect();
        let scores = set.scores("wireless driver flaw");
        assert_eq!(scores[0], 5); // Driver is index 0 in OsPart::ALL
        assert_eq!(scores[1], 0);
    }

    #[test]
    fn empty_ruleset_scores_zero() {
        let set = RuleSet::new();
        assert!(set.is_empty());
        assert_eq!(set.scores("anything"), [0, 0, 0, 0]);
    }
}
