//! Facade over the OS-diversity reproduction workspace.
//!
//! Depend on this crate to get the whole pipeline — data generation, NVD
//! feed round-trip, relational store, classification, pairwise/k-way
//! analysis and the BFT simulator — through one import. Each member crate is
//! re-exported under its own name, and the headline types of the analysis
//! pipeline are lifted to the crate root.
//!
//! # Example
//!
//! ```
//! use osdiv::{CalibratedGenerator, PairwiseAnalysis, StudyDataset};
//!
//! let dataset = CalibratedGenerator::new(1).generate();
//! let study = StudyDataset::from_entries(dataset.entries());
//! let pairwise = PairwiseAnalysis::compute(&study);
//! assert_eq!(pairwise.rows().len(), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bft_sim;
pub use classify;
pub use datagen;
pub use nvd_feed;
pub use nvd_model;
pub use osdiv_bench;
pub use osdiv_core;
pub use tabular;
pub use vulnstore;

pub use bft_sim::{QuorumModel, ReplicaSet, SimulationConfig, Simulator};
pub use classify::Classifier;
pub use datagen::{CalibratedGenerator, ParametricConfig, ParametricGenerator};
pub use nvd_feed::{FeedReader, FeedWriter};
pub use nvd_model::{CveId, OsDistribution, OsFamily, OsPart, OsSet, VulnerabilityEntry};
pub use osdiv_core::{
    ClassDistribution, KWayAnalysis, PairwiseAnalysis, ReleaseAnalysis, ReplicaSelection,
    ServerProfile, SplitMatrix, StudyDataset, TemporalAnalysis, ValidityDistribution,
};
pub use tabular::TextTable;
pub use vulnstore::VulnStore;
