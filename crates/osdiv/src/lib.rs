//! Facade over the OS-diversity reproduction workspace.
//!
//! Depend on this crate to get the whole pipeline — data generation, NVD
//! feed round-trip, relational store, classification, the typed analysis
//! session and the BFT simulator — through one import. Each member crate is
//! re-exported under its own name, and the headline types of the analysis
//! pipeline are lifted to the crate root.
//!
//! The entry point is the [`Study`] session: build it from entries, ask for
//! analyses by type (results are memoized), and render any deliverable as
//! text, CSV or JSON.
//!
//! # Example
//!
//! ```
//! use osdiv::{CalibratedGenerator, Format, PairwiseAnalysis, Study};
//!
//! let dataset = CalibratedGenerator::new(1).generate();
//! let study = Study::from_entries(dataset.entries());
//!
//! // Typed, memoized analysis lookup.
//! let pairwise = study.get::<PairwiseAnalysis>().unwrap();
//! assert_eq!(pairwise.rows().len(), 55);
//!
//! // Run the whole registry in parallel, then render the combined report.
//! study.run_all().unwrap();
//! let report = study.report(Format::Text).unwrap();
//! assert!(report.contains("== Table III: pairwise common vulnerabilities =="));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bft_sim;
pub use classify;
pub use datagen;
pub use nvd_feed;
pub use nvd_model;
pub use osdiv_bench;
pub use osdiv_core;
pub use osdiv_serve;
pub use tabular;
pub use vulnstore;

pub use bft_sim::{QuorumModel, ReplicaSet, SimulationConfig, Simulator};
pub use classify::Classifier;
pub use datagen::{CalibratedGenerator, ParametricConfig, ParametricGenerator};
pub use nvd_feed::{FeedReader, FeedWriter};
pub use nvd_model::{CveId, OsDistribution, OsFamily, OsPart, OsSet, VulnerabilityEntry};
pub use osdiv_core::{
    Analysis, AnalysisError, AnalysisId, ClassDistribution, Format, KWayAnalysis, PairwiseAnalysis,
    ReleaseAnalysis, Render, ReplicaSelection, SelectionAnalysis, ServerProfile, SplitMatrix,
    Study, StudyDataset, TemporalAnalysis, ValidityDistribution,
};
pub use osdiv_serve::{Router, RouterOptions, Server, ServerHandle, ServerOptions};
pub use tabular::TextTable;
pub use vulnstore::VulnStore;
