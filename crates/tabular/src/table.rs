//! Column-aligned text tables with CSV export.

use std::fmt;

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell.
///
/// # Example
///
/// ```
/// use tabular::TextTable;
///
/// let mut t = TextTable::new(["pair", "v(AB)"]);
/// t.push_row(["OpenBSD-NetBSD", "40"]);
/// assert_eq!(t.row_count(), 1);
/// assert!(t.to_csv().starts_with("pair,v(AB)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated to the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// The cell at `(row, column)`, if present.
    pub fn cell(&self, row: usize, column: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(column))
            .map(String::as_str)
    }

    /// Renders the table as aligned text (header, separator line, rows).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV (header first). Cells containing commas,
    /// quotes or newlines are quoted.
    pub fn to_csv(&self) -> String {
        fn csv_cell(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_padded_and_truncated_to_header_width() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.push_row(["1"]);
        t.push_row(["1", "2", "3", "4"]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 1), Some(""));
        assert_eq!(t.cell(1, 2), Some("3"));
        assert_eq!(t.cell(1, 3), None);
        assert_eq!(t.column_count(), 3);
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["OS", "Valid"]);
        t.push_row(["OpenBSD", "142"]);
        t.push_row(["Windows 2000", "481"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "Valid" column starts at the same offset in every data line.
        let offset = lines[2].find("142").unwrap();
        assert_eq!(lines[3].find("481").unwrap(), offset);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(["x"]);
        t.push_row(["y"]);
        assert_eq!(format!("{t}"), t.render());
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(["name", "note"]);
        t.push_row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,note\n"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn render_has_one_line_per_row_plus_two(
                rows in proptest::collection::vec(
                    proptest::collection::vec("[a-z0-9]{0,8}", 3), 0..20)
            ) {
                let mut t = TextTable::new(["c1", "c2", "c3"]);
                for row in &rows {
                    t.push_row(row.clone());
                }
                prop_assert_eq!(t.render().lines().count(), rows.len() + 2);
                prop_assert_eq!(t.to_csv().lines().count(), rows.len() + 1);
            }
        }
    }
}
