//! Column-aligned text tables with CSV and JSON export.

use std::fmt;

use crate::json::json_string;

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell.
///
/// # Example
///
/// ```
/// use tabular::TextTable;
///
/// let mut t = TextTable::new(["pair", "v(AB)"]);
/// t.push_row(["OpenBSD-NetBSD", "40"]);
/// assert_eq!(t.row_count(), 1);
/// assert!(t.to_csv().starts_with("pair,v(AB)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated to the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// The cell at `(row, column)`, if present.
    pub fn cell(&self, row: usize, column: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(column))
            .map(String::as_str)
    }

    /// Renders the table as aligned text (header, separator line, rows).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV (header first). Cells containing commas,
    /// quotes or newlines are quoted.
    pub fn to_csv(&self) -> String {
        fn csv_cell(cell: &str) -> String {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Renders the table as a JSON object `{"header": [...], "rows": [[...]]}`.
    /// Every cell is emitted as a JSON string, mirroring the internal
    /// representation, so the document round-trips losslessly.
    ///
    /// # Example
    ///
    /// ```
    /// use tabular::TextTable;
    ///
    /// let mut t = TextTable::new(["pair", "v(AB)"]);
    /// t.push_row(["OpenBSD-NetBSD", "40"]);
    /// assert_eq!(
    ///     t.to_json(),
    ///     r#"{"header":["pair","v(AB)"],"rows":[["OpenBSD-NetBSD","40"]]}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let encode_row =
            |cells: &[String]| crate::json::json_array(cells.iter().map(|c| json_string(c)));
        format!(
            "{{\"header\":{},\"rows\":{}}}",
            encode_row(&self.header),
            crate::json::json_array(self.rows.iter().map(|row| encode_row(row)))
        )
    }

    /// Parses a CSV document previously produced by [`TextTable::to_csv`]
    /// (first record is the header). Quoted cells — including embedded
    /// commas, doubled quotes and newlines — are decoded. Returns `None` on
    /// malformed input (an unterminated quoted cell or an empty document).
    ///
    /// # Example
    ///
    /// ```
    /// use tabular::TextTable;
    ///
    /// let mut t = TextTable::new(["name", "note"]);
    /// t.push_row(["a,b", "say \"hi\""]);
    /// let parsed = TextTable::from_csv(&t.to_csv()).unwrap();
    /// assert_eq!(parsed, t);
    /// ```
    pub fn from_csv(text: &str) -> Option<TextTable> {
        let mut records: Vec<Vec<String>> = Vec::new();
        let mut record: Vec<String> = Vec::new();
        let mut cell = String::new();
        let mut chars = text.chars().peekable();
        let mut in_quotes = false;
        let mut saw_any = false;
        while let Some(c) = chars.next() {
            saw_any = true;
            if in_quotes {
                match c {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        cell.push('"');
                    }
                    '"' => in_quotes = false,
                    c => cell.push(c),
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => record.push(std::mem::take(&mut cell)),
                    '\n' => {
                        record.push(std::mem::take(&mut cell));
                        records.push(std::mem::take(&mut record));
                    }
                    '\r' => {}
                    c => cell.push(c),
                }
            }
        }
        if in_quotes || !saw_any {
            return None;
        }
        if !cell.is_empty() || !record.is_empty() {
            record.push(cell);
            records.push(record);
        }
        let mut iter = records.into_iter();
        let mut table = TextTable::new(iter.next()?);
        for record in iter {
            table.push_row(record);
        }
        Some(table)
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_padded_and_truncated_to_header_width() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.push_row(["1"]);
        t.push_row(["1", "2", "3", "4"]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 1), Some(""));
        assert_eq!(t.cell(1, 2), Some("3"));
        assert_eq!(t.cell(1, 3), None);
        assert_eq!(t.column_count(), 3);
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["OS", "Valid"]);
        t.push_row(["OpenBSD", "142"]);
        t.push_row(["Windows 2000", "481"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "Valid" column starts at the same offset in every data line.
        let offset = lines[2].find("142").unwrap();
        assert_eq!(lines[3].find("481").unwrap(), offset);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(["x"]);
        t.push_row(["y"]);
        assert_eq!(format!("{t}"), t.render());
        assert!(!t.is_empty());
    }

    #[test]
    fn json_export_escapes_and_structures_cells() {
        let mut t = TextTable::new(["name", "note"]);
        t.push_row(["a\"b", "x"]);
        let json = t.to_json();
        assert!(json.starts_with("{\"header\":[\"name\",\"note\"]"));
        assert!(json.contains("\"a\\\"b\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn csv_round_trips_through_from_csv() {
        let mut t = TextTable::new(["pair", "note"]);
        t.push_row(["a,b", "say \"hi\""]);
        t.push_row(["plain", "multi\nline"]);
        t.push_row(["bare\rreturn", "crlf\r\npair"]);
        assert_eq!(TextTable::from_csv(&t.to_csv()).unwrap(), t);
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert_eq!(TextTable::from_csv(""), None);
        assert_eq!(TextTable::from_csv("a,\"unterminated"), None);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(["name", "note"]);
        t.push_row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,note\n"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn render_has_one_line_per_row_plus_two(
                rows in proptest::collection::vec(
                    proptest::collection::vec("[a-z0-9]{0,8}", 3), 0..20)
            ) {
                let mut t = TextTable::new(["c1", "c2", "c3"]);
                for row in &rows {
                    t.push_row(row.clone());
                }
                prop_assert_eq!(t.render().lines().count(), rows.len() + 2);
                prop_assert_eq!(t.to_csv().lines().count(), rows.len() + 1);
            }
        }
    }
}
