//! A small table / series / aggregation toolkit.
//!
//! Every deliverable of the study is a table or a figure: per-OS counts
//! (Tables I and II), a 55-row pair table (Table III), per-year series
//! (Figure 2), matrices (Table V) and bar groups (Figure 3). The Rust
//! ecosystem's dataframe tooling is outside the allowed dependency set, so
//! this crate provides the few primitives the report generators need:
//!
//! * [`TextTable`] — column-aligned text tables with CSV and JSON export
//!   (and a CSV parser for round-tripping exported tables);
//! * [`Series`] — labelled `(x, y)` series for figure-style output;
//! * [`agg`] — counting and grouping helpers (frequency counters, per-year
//!   histograms, ratio helpers);
//! * [`json`] — the hand-rolled JSON encoding helpers behind the `to_json`
//!   exporters (the vendored `serde` is a marker stub, so JSON is written
//!   directly).
//!
//! # Example
//!
//! ```
//! use tabular::TextTable;
//!
//! let mut table = TextTable::new(["OS", "Valid"]);
//! table.push_row(["OpenBSD", "142"]);
//! table.push_row(["NetBSD", "126"]);
//! let rendered = table.render();
//! assert!(rendered.contains("OpenBSD"));
//! assert!(rendered.lines().count() >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod json;
pub mod mime;
pub mod series;
pub mod table;

pub use agg::{Counter, YearHistogram};
pub use json::{json_array, json_number, json_string};
pub use series::{Series, SeriesSet};
pub use table::TextTable;
