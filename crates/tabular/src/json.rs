//! Minimal JSON encoding helpers shared by the table and series exporters.
//!
//! The workspace has no JSON serializer (the vendored `serde` is a marker
//! stub, see `vendor/README.md`), so the few JSON documents the renderers
//! emit are written by hand. Only encoding is provided; the grammar emitted
//! is plain RFC 8259 JSON.

/// Escapes a string for inclusion in a JSON document and wraps it in double
/// quotes.
///
/// # Example
///
/// ```
/// assert_eq!(tabular::json_string("a\"b"), "\"a\\\"b\"");
/// assert_eq!(tabular::json_string("line\nbreak"), "\"line\\nbreak\"");
/// ```
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number. Integral values are printed without a
/// fractional part; non-finite values (which JSON cannot represent) become
/// `null`.
///
/// # Example
///
/// ```
/// assert_eq!(tabular::json_number(12.0), "12");
/// assert_eq!(tabular::json_number(0.5), "0.5");
/// assert_eq!(tabular::json_number(f64::NAN), "null");
/// ```
pub fn json_number(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_string();
    }
    if (value - value.round()).abs() < f64::EPSILON && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Joins pre-encoded JSON values into a JSON array.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let inner: Vec<String> = items.into_iter().collect();
    format!("[{}]", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped_and_quoted() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("q\"q"), "\"q\\\"q\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_use_the_shortest_faithful_form() {
        assert_eq!(json_number(0.0), "0");
        assert_eq!(json_number(-3.0), "-3");
        assert_eq!(json_number(2.25), "2.25");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn arrays_join_with_commas() {
        assert_eq!(json_array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(json_array(std::iter::empty()), "[]");
    }
}
