//! Counting and grouping helpers.

use std::collections::HashMap;
use std::hash::Hash;

/// A frequency counter over hashable keys.
///
/// # Example
///
/// ```
/// use tabular::Counter;
///
/// let mut counter = Counter::new();
/// counter.add("Kernel");
/// counter.add("Kernel");
/// counter.add("Driver");
/// assert_eq!(counter.count(&"Kernel"), 2);
/// assert_eq!(counter.total(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter<K: Eq + Hash> {
    counts: HashMap<K, u64>,
}

impl<K: Eq + Hash> Counter<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Counter {
            counts: HashMap::new(),
        }
    }

    /// Adds one occurrence of `key`.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Adds `n` occurrences of `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// The count of `key` (zero if never seen).
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total number of occurrences across keys.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct keys seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// The `(key, count)` pairs sorted by descending count (ties in
    /// unspecified order).
    pub fn sorted_desc(&self) -> Vec<(&K, u64)> {
        let mut pairs: Vec<(&K, u64)> = self.iter().collect();
        pairs.sort_by_key(|pair| std::cmp::Reverse(pair.1));
        pairs
    }

    /// The fraction `count(key) / total()`, or 0 when empty.
    pub fn fraction(&self, key: &K) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(key) as f64 / total as f64
        }
    }
}

impl<K: Eq + Hash> FromIterator<K> for Counter<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut counter = Counter::new();
        for key in iter {
            counter.add(key);
        }
        counter
    }
}

impl<K: Eq + Hash> Extend<K> for Counter<K> {
    fn extend<T: IntoIterator<Item = K>>(&mut self, iter: T) {
        for key in iter {
            self.add(key);
        }
    }
}

/// A per-year histogram over a fixed, inclusive year range — the shape of
/// each curve in Figure 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YearHistogram {
    first_year: u16,
    counts: Vec<u64>,
}

impl YearHistogram {
    /// Creates a histogram covering `first_year..=last_year`, all zeros.
    ///
    /// # Panics
    ///
    /// Panics if `last_year < first_year` (a programming error).
    pub fn new(first_year: u16, last_year: u16) -> Self {
        assert!(
            last_year >= first_year,
            "YearHistogram range must not be empty"
        );
        YearHistogram {
            first_year,
            counts: vec![0; usize::from(last_year - first_year) + 1],
        }
    }

    /// The first year of the range.
    pub fn first_year(&self) -> u16 {
        self.first_year
    }

    /// The last year of the range.
    pub fn last_year(&self) -> u16 {
        self.first_year + (self.counts.len() as u16) - 1
    }

    /// Adds one occurrence in `year`. Years outside the range are clamped to
    /// the nearest bound (the paper's 2002 feed contains entries back to
    /// 1994; clamping keeps them countable without growing the axis).
    pub fn add(&mut self, year: u16) {
        self.add_n(year, 1);
    }

    /// Adds `n` occurrences in `year` (clamped to the range).
    pub fn add_n(&mut self, year: u16, n: u64) {
        let clamped = year.clamp(self.first_year, self.last_year());
        let index = usize::from(clamped - self.first_year);
        self.counts[index] += n;
    }

    /// The count for `year` (zero if outside the range).
    pub fn count(&self, year: u16) -> u64 {
        if year < self.first_year || year > self.last_year() {
            return 0;
        }
        self.counts[usize::from(year - self.first_year)]
    }

    /// Total count over all years.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates over `(year, count)` pairs in ascending year order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, c)| (self.first_year + i as u16, *c))
    }

    /// The year with the highest count (earliest year wins ties).
    pub fn peak_year(&self) -> u16 {
        self.iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(year, _)| year)
            .unwrap_or(self.first_year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic_operations() {
        let mut c: Counter<&str> = ["a", "b", "a", "c", "a"].into_iter().collect();
        assert_eq!(c.count(&"a"), 3);
        assert_eq!(c.count(&"z"), 0);
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 3);
        assert!((c.fraction(&"a") - 0.6).abs() < 1e-12);
        c.extend(["b"]);
        assert_eq!(c.count(&"b"), 2);
        c.add_n("d", 10);
        assert_eq!(c.sorted_desc()[0], (&"d", 10));
        assert_eq!(Counter::<u8>::new().fraction(&1), 0.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = YearHistogram::new(1994, 2010);
        assert_eq!(h.first_year(), 1994);
        assert_eq!(h.last_year(), 2010);
        h.add(2000);
        h.add(2000);
        h.add(1990); // clamped to 1994
        h.add(2015); // clamped to 2010
        assert_eq!(h.count(2000), 2);
        assert_eq!(h.count(1994), 1);
        assert_eq!(h.count(2010), 1);
        assert_eq!(h.count(1980), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.peak_year(), 2000);
        assert_eq!(h.iter().count(), 17);
    }

    #[test]
    fn histogram_single_year_range() {
        let mut h = YearHistogram::new(2005, 2005);
        h.add(2005);
        assert_eq!(h.total(), 1);
        assert_eq!(h.peak_year(), 2005);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn histogram_rejects_inverted_range() {
        YearHistogram::new(2010, 2005);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn counter_total_equals_number_of_adds(keys in proptest::collection::vec(0u8..20, 0..200)) {
                let counter: Counter<u8> = keys.iter().copied().collect();
                prop_assert_eq!(counter.total() as usize, keys.len());
                let sum_of_counts: u64 = counter.iter().map(|(_, c)| c).sum();
                prop_assert_eq!(sum_of_counts as usize, keys.len());
            }

            #[test]
            fn histogram_total_equals_number_of_adds(years in proptest::collection::vec(1990u16..2015, 0..200)) {
                let mut h = YearHistogram::new(1994, 2010);
                for y in &years {
                    h.add(*y);
                }
                prop_assert_eq!(h.total() as usize, years.len());
            }
        }
    }
}
