//! Media-type helpers for the table/series export formats.
//!
//! The serving layer negotiates between the three export formats of the
//! study (aligned text, CSV, JSON); the constants and the [`essence`]
//! helper live here so the renderers and the HTTP layer agree on the exact
//! `Content-Type` strings without duplicating them.
//!
//! # Example
//!
//! ```
//! use tabular::mime;
//!
//! assert_eq!(mime::essence("application/json; charset=utf-8"), "application/json");
//! assert_eq!(mime::essence(" text/csv "), "text/csv");
//! ```

/// `Content-Type` of the aligned-text rendering.
pub const TEXT_PLAIN: &str = "text/plain; charset=utf-8";

/// `Content-Type` of the CSV rendering.
pub const TEXT_CSV: &str = "text/csv; charset=utf-8";

/// `Content-Type` of the JSON rendering.
pub const APPLICATION_JSON: &str = "application/json";

/// The essence of a media type: everything before the first `;` parameter,
/// with surrounding whitespace trimmed. Comparison should be
/// case-insensitive per RFC 9110 (`str::eq_ignore_ascii_case`).
pub fn essence(content_type: &str) -> &str {
    content_type.split(';').next().unwrap_or("").trim()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essence_strips_parameters_and_whitespace() {
        assert_eq!(essence(TEXT_PLAIN), "text/plain");
        assert_eq!(essence(TEXT_CSV), "text/csv");
        assert_eq!(essence(APPLICATION_JSON), "application/json");
        assert_eq!(essence("Application/JSON ; q=0.9"), "Application/JSON");
        assert_eq!(essence(""), "");
    }
}
