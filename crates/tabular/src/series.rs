//! Labelled numeric series for figure-style output.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One labelled series of `(x, y)` points, e.g. "FreeBSD vulnerabilities per
/// year".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    label: String,
    points: Vec<(i64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: i64, y: f64) {
        self.points.push((x, y));
    }

    /// The points in insertion order.
    pub fn points(&self) -> &[(i64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at a given x, if present (first match).
    pub fn y_at(&self, x: i64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Sum of the y values.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, y)| y).sum()
    }

    /// The maximum y value (0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

impl FromIterator<(i64, f64)> for Series {
    fn from_iter<T: IntoIterator<Item = (i64, f64)>>(iter: T) -> Self {
        let mut series = Series::new("unnamed");
        for (x, y) in iter {
            series.push(x, y);
        }
        series
    }
}

/// A group of series sharing the same x axis — the shape of each sub-plot of
/// Figure 2 (one series per OS of a family) and of Figure 3 (history vs
/// observed bars per configuration).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesSet {
    title: String,
    series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty set with a title.
    pub fn new(title: impl Into<String>) -> Self {
        SeriesSet {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// The set title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The series in insertion order.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks a series up by label.
    pub fn by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label() == label)
    }

    /// Renders the set as CSV: one column per series, one row per distinct x
    /// value (sorted ascending). Missing values are left empty.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<i64> = self
            .series
            .iter()
            .flat_map(|s| s.points().iter().map(|(x, _)| *x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        let mut out = String::from("x");
        for series in &self.series {
            out.push(',');
            out.push_str(series.label());
        }
        out.push('\n');
        for x in xs {
            out.push_str(&x.to_string());
            for series in &self.series {
                out.push(',');
                if let Some(y) = series.y_at(x) {
                    if (y - y.round()).abs() < f64::EPSILON {
                        out.push_str(&format!("{}", y as i64));
                    } else {
                        out.push_str(&format!("{y:.3}"));
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the set as a JSON object
    /// `{"title": ..., "series": [{"label": ..., "points": [[x, y], ...]}]}`.
    /// Integral y values are emitted without a fractional part.
    ///
    /// # Example
    ///
    /// ```
    /// use tabular::{Series, SeriesSet};
    ///
    /// let mut set = SeriesSet::new("BSD family");
    /// let mut s = Series::new("OpenBSD");
    /// s.push(2002, 12.0);
    /// set.push(s);
    /// assert_eq!(
    ///     set.to_json(),
    ///     r#"{"title":"BSD family","series":[{"label":"OpenBSD","points":[[2002,12]]}]}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let series = crate::json::json_array(self.series.iter().map(|s| {
            let points = crate::json::json_array(
                s.points()
                    .iter()
                    .map(|(x, y)| format!("[{x},{}]", crate::json::json_number(*y))),
            );
            format!(
                "{{\"label\":{},\"points\":{}}}",
                crate::json::json_string(s.label()),
                points
            )
        }));
        format!(
            "{{\"title\":{},\"series\":{}}}",
            crate::json::json_string(&self.title),
            series
        )
    }

    /// Renders the set as a crude ASCII chart (one row per series, one `#`
    /// per `scale` units of y summed over the series), useful for eyeballing
    /// figure shapes in the terminal.
    pub fn to_ascii_bars(&self, scale: f64) -> String {
        let mut out = format!("{}\n", self.title);
        let width = self
            .series
            .iter()
            .map(|s| s.label().len())
            .max()
            .unwrap_or(0);
        for series in &self.series {
            let bar_len = if scale > 0.0 {
                (series.total() / scale).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "{:width$}  {} ({:.0})\n",
                series.label(),
                "#".repeat(bar_len),
                series.total(),
                width = width
            ));
        }
        out
    }
}

impl fmt::Display for SeriesSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeriesSet {
        let mut set = SeriesSet::new("BSD family");
        let mut openbsd = Series::new("OpenBSD");
        openbsd.push(2002, 12.0);
        openbsd.push(2003, 9.0);
        let mut netbsd = Series::new("NetBSD");
        netbsd.push(2002, 7.0);
        netbsd.push(2004, 3.0);
        set.push(openbsd);
        set.push(netbsd);
        set
    }

    #[test]
    fn series_accessors() {
        let s: Series = [(2000, 1.0), (2001, 2.5)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.y_at(2001), Some(2.5));
        assert_eq!(s.y_at(1999), None);
        assert_eq!(s.total(), 3.5);
        assert_eq!(s.max_y(), 2.5);
        assert!(Series::new("empty").is_empty());
        assert_eq!(Series::new("empty").max_y(), 0.0);
    }

    #[test]
    fn series_set_lookup_and_title() {
        let set = sample();
        assert_eq!(set.title(), "BSD family");
        assert_eq!(set.series().len(), 2);
        assert!(set.by_label("OpenBSD").is_some());
        assert!(set.by_label("FreeBSD").is_none());
    }

    #[test]
    fn csv_merges_x_axes_and_leaves_gaps_empty() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,OpenBSD,NetBSD");
        assert_eq!(lines[1], "2002,12,7");
        assert_eq!(lines[2], "2003,9,");
        assert_eq!(lines[3], "2004,,3");
        assert_eq!(format!("{}", sample()), csv);
    }

    #[test]
    fn ascii_bars_reflect_totals() {
        let art = sample().to_ascii_bars(1.0);
        assert!(art.contains("OpenBSD"));
        assert!(art.contains(&"#".repeat(21))); // 12 + 9
        assert!(art.contains("(21)"));
        // Scale of zero produces no bars but does not panic.
        let flat = sample().to_ascii_bars(0.0);
        assert!(!flat.contains('#'));
    }
}
