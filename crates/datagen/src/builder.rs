//! Assembling full vulnerability entries from the overlap plan.

use std::collections::HashMap;

use nvd_model::{
    AccessComplexity, AccessVector, Authentication, CveId, CvssV2, ImpactMetric, OsDistribution,
    OsSet, Validity, VulnerabilityEntry,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calibration::TABLE1;
use crate::descriptions::{generate_invalid_summary, generate_summary};
use crate::overlap::{build_specs, Era, VulnSpec};
use crate::temporal::{sample_date, sample_year};

/// A generated dataset: the synthetic counterpart of the paper's 2120
/// collected NVD entries (1887 valid plus the Unknown / Unspecified /
/// Disputed entries of Table I).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    entries: Vec<VulnerabilityEntry>,
}

impl Dataset {
    /// Wraps a list of entries as a dataset.
    pub fn from_entries(entries: Vec<VulnerabilityEntry>) -> Self {
        Dataset { entries }
    }

    /// All entries (valid and invalid).
    pub fn entries(&self) -> &[VulnerabilityEntry] {
        &self.entries
    }

    /// Consumes the dataset, returning the entries.
    pub fn into_entries(self) -> Vec<VulnerabilityEntry> {
        self.entries
    }

    /// The entries that survive the paper's validity filter.
    pub fn valid_entries(&self) -> impl Iterator<Item = &VulnerabilityEntry> {
        self.entries.iter().filter(|e| e.is_valid())
    }

    /// Number of entries (valid and invalid).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the dataset as an NVD 2.0-style XML feed.
    ///
    /// # Errors
    ///
    /// Propagates [`nvd_feed::FeedError`] from the writer (currently only
    /// I/O-free serialization, so this cannot fail in practice).
    pub fn to_feed_xml(&self) -> Result<String, nvd_feed::FeedError> {
        nvd_feed::FeedWriter::new()
            .with_pub_date("2010-09-30")
            .write_to_string(&self.entries)
    }
}

/// Generates the calibrated synthetic dataset (see DESIGN.md §5 and the
/// [`crate::overlap`] module for the construction).
///
/// The generator is deterministic for a given seed: identifiers, dates and
/// summaries are drawn from a seeded PRNG, and the overlap structure is
/// fully deterministic.
#[derive(Debug, Clone)]
pub struct CalibratedGenerator {
    seed: u64,
    include_invalid: bool,
}

impl CalibratedGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        CalibratedGenerator {
            seed,
            include_invalid: true,
        }
    }

    /// Skips the Unknown / Unspecified / Disputed entries of Table I (useful
    /// when only the valid data set is needed).
    pub fn without_invalid_entries(mut self) -> Self {
        self.include_invalid = false;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let plan = build_specs();
        let mut id_allocator = IdAllocator::new();
        let mut entries = Vec::with_capacity(plan.specs.len() + 256);

        // Table VI release tagging: one Debian-only vulnerability affecting
        // Debian 3.0 and 4.0, and one Debian–RedHat vulnerability affecting
        // Debian 4.0, RedHat 4.0 and RedHat 5.0. Everything else carries no
        // per-release information, exactly like the bulk of the NVD data the
        // paper could not correlate with distribution security trackers.
        let debian_release_spec = plan
            .specs
            .iter()
            .position(|s| s.oses == OsSet::singleton(OsDistribution::Debian) && s.is_base_system());
        let debian_redhat_spec = plan.specs.iter().position(|s| {
            s.oses == OsSet::pair(OsDistribution::Debian, OsDistribution::RedHat)
                && s.is_isolated_thin()
        });

        for (index, spec) in plan.specs.iter().enumerate() {
            let entry = self.build_entry(
                &mut rng,
                &mut id_allocator,
                spec,
                debian_release_spec == Some(index),
                debian_redhat_spec == Some(index),
            );
            entries.push(entry);
        }

        if self.include_invalid {
            for row in &TABLE1 {
                for (validity, count) in [
                    (Validity::Unknown, row.unknown),
                    (Validity::Unspecified, row.unspecified),
                    (Validity::Disputed, row.disputed),
                ] {
                    for _ in 0..count {
                        entries.push(self.build_invalid_entry(
                            &mut rng,
                            &mut id_allocator,
                            row.os,
                            validity,
                        ));
                    }
                }
            }
        }

        Dataset { entries }
    }

    fn build_entry(
        &self,
        rng: &mut StdRng,
        ids: &mut IdAllocator,
        spec: &VulnSpec,
        tag_debian_releases: bool,
        tag_debian_redhat_releases: bool,
    ) -> VulnerabilityEntry {
        let year = spec
            .fixed_year
            .unwrap_or_else(|| sample_year(rng, spec.oses, spec.era));
        let id = spec.fixed_id.unwrap_or_else(|| ids.allocate(year));
        let summary = match spec.fixed_summary {
            Some(text) => text.to_string(),
            None => generate_summary(rng, spec.part, spec.access, spec.oses),
        };
        let mut builder = VulnerabilityEntry::builder(id)
            .published(sample_date(rng, year))
            .summary(summary)
            .part(spec.part)
            .validity(Validity::Valid)
            .cvss(sample_cvss(rng, spec.access));
        if tag_debian_releases {
            builder = builder
                .affects_os_version(OsDistribution::Debian, "3.0")
                .affects_os_version(OsDistribution::Debian, "4.0");
        } else if tag_debian_redhat_releases {
            builder = builder
                .affects_os_version(OsDistribution::Debian, "4.0")
                .affects_os_version(OsDistribution::RedHat, "4.0")
                .affects_os_version(OsDistribution::RedHat, "5.0");
        } else {
            builder = builder.affects_set(spec.oses);
        }
        builder
            .build()
            .expect("generated entries always have publication >= identifier year")
    }

    fn build_invalid_entry(
        &self,
        rng: &mut StdRng,
        ids: &mut IdAllocator,
        os: OsDistribution,
        validity: Validity,
    ) -> VulnerabilityEntry {
        let oses = OsSet::singleton(os);
        let year = sample_year(rng, oses, Era::Any);
        let id = ids.allocate(year);
        VulnerabilityEntry::builder(id)
            .published(sample_date(rng, year))
            .summary(generate_invalid_summary(rng, validity, oses))
            .validity(validity)
            .affects_set(oses)
            .build()
            .expect("generated entries always have publication >= identifier year")
    }
}

impl Default for CalibratedGenerator {
    fn default() -> Self {
        CalibratedGenerator::new(42)
    }
}

/// Allocates synthetic CVE numbers per year, starting high enough to avoid
/// colliding with the real identifiers used by the named vulnerabilities.
#[derive(Debug, Default)]
struct IdAllocator {
    next: HashMap<u16, u32>,
}

impl IdAllocator {
    fn new() -> Self {
        IdAllocator {
            next: HashMap::new(),
        }
    }

    fn allocate(&mut self, year: u16) -> CveId {
        let counter = self.next.entry(year).or_insert(6000);
        let number = *counter;
        *counter += 1;
        CveId::new(year, number)
    }
}

/// Draws a CVSS vector consistent with the requested access vector: the
/// remaining metrics are varied so the dataset contains a realistic spread
/// of scores.
fn sample_cvss<R: Rng>(rng: &mut R, access: AccessVector) -> CvssV2 {
    let complexity = match rng.gen_range(0..4) {
        0 => AccessComplexity::Medium,
        1 => AccessComplexity::High,
        _ => AccessComplexity::Low,
    };
    let auth = if rng.gen_bool(0.15) {
        Authentication::Single
    } else {
        Authentication::None
    };
    let impact = |rng: &mut R| match rng.gen_range(0..3) {
        0 => ImpactMetric::None,
        1 => ImpactMetric::Partial,
        _ => ImpactMetric::Complete,
    };
    let (c, i, a) = (impact(rng), impact(rng), impact(rng));
    // Avoid the all-None impact vector (a vulnerability with no impact would
    // not be in the NVD in the first place).
    let c = if (c, i, a) == (ImpactMetric::None, ImpactMetric::None, ImpactMetric::None) {
        ImpactMetric::Partial
    } else {
        c
    };
    CvssV2::new(access, complexity, auth, c, i, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{table1_row, table3_row, DISTINCT_VALID};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CalibratedGenerator::new(7).generate();
        let b = CalibratedGenerator::new(7).generate();
        assert_eq!(a.entries().len(), b.entries().len());
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.summary(), y.summary());
            assert_eq!(x.published(), y.published());
        }
        let c = CalibratedGenerator::new(8).generate();
        assert_eq!(a.entries().len(), c.entries().len());
    }

    #[test]
    fn valid_count_is_close_to_the_paper() {
        let dataset = CalibratedGenerator::new(1).generate();
        let valid = dataset.valid_entries().count() as i64;
        let distinct = i64::from(DISTINCT_VALID);
        // The generator merges shared vulnerabilities differently than the
        // real data (the exact multi-OS structure is unpublished), so the
        // distinct count differs from 1887 by a bounded margin.
        assert!(
            (valid - distinct).abs() < 600,
            "valid count {valid} too far from {distinct}"
        );
    }

    #[test]
    fn per_os_totals_match_table1() {
        let dataset = CalibratedGenerator::new(2).generate();
        for os in OsDistribution::ALL {
            let row = table1_row(os);
            let valid = dataset.valid_entries().filter(|e| e.affects(os)).count() as u32;
            assert_eq!(valid, row.valid, "valid count for {os}");
            let unknown = dataset
                .entries()
                .iter()
                .filter(|e| e.affects(os) && e.validity() == Validity::Unknown)
                .count() as u32;
            assert_eq!(unknown, row.unknown, "unknown count for {os}");
            let disputed = dataset
                .entries()
                .iter()
                .filter(|e| e.affects(os) && e.validity() == Validity::Disputed)
                .count() as u32;
            assert_eq!(disputed, row.disputed, "disputed count for {os}");
        }
    }

    #[test]
    fn without_invalid_entries_keeps_only_valid_ones() {
        let dataset = CalibratedGenerator::new(3)
            .without_invalid_entries()
            .generate();
        assert_eq!(dataset.valid_entries().count(), dataset.len());
    }

    #[test]
    fn pairwise_counts_follow_table3() {
        let dataset = CalibratedGenerator::new(4).generate();
        let row = table3_row(OsDistribution::Windows2000, OsDistribution::Windows2003).unwrap();
        let shared = dataset
            .valid_entries()
            .filter(|e| {
                e.affects(OsDistribution::Windows2000) && e.affects(OsDistribution::Windows2003)
            })
            .count() as u32;
        assert!(shared >= row.all && shared <= row.all + 2);
    }

    #[test]
    fn cve_ids_are_unique() {
        let dataset = CalibratedGenerator::new(5).generate();
        let mut ids: Vec<CveId> = dataset.entries().iter().map(|e| e.id()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate CVE identifiers generated");
    }

    #[test]
    fn publication_years_match_identifier_years() {
        let dataset = CalibratedGenerator::new(6).generate();
        for entry in dataset.entries() {
            assert_eq!(entry.id().year(), entry.year(), "{}", entry.id());
        }
    }

    #[test]
    fn named_vulnerabilities_keep_their_identifiers() {
        let dataset = CalibratedGenerator::new(7).generate();
        let nine = dataset
            .entries()
            .iter()
            .find(|e| e.id() == CveId::new(2008, 4609))
            .expect("CVE-2008-4609 present");
        assert_eq!(nine.affected_os_set().len(), 9);
        assert!(dataset
            .entries()
            .iter()
            .any(|e| e.id() == CveId::new(2008, 1447)));
        assert!(dataset
            .entries()
            .iter()
            .any(|e| e.id() == CveId::new(2007, 5365)));
    }

    #[test]
    fn release_tagged_vulnerabilities_reproduce_table6_structure() {
        let dataset = CalibratedGenerator::new(8).generate();
        let debian_only = dataset.valid_entries().find(|e| {
            e.affects_release(OsDistribution::Debian, "3.0")
                && e.affects_release(OsDistribution::Debian, "4.0")
                && e.affected_os_set().len() == 1
        });
        assert!(
            debian_only.is_some(),
            "missing the Debian 3.0/4.0 vulnerability"
        );
        let cross = dataset.valid_entries().find(|e| {
            e.affects_release(OsDistribution::Debian, "4.0")
                && e.affects_release(OsDistribution::RedHat, "4.0")
                && e.affects_release(OsDistribution::RedHat, "5.0")
        });
        assert!(
            cross.is_some(),
            "missing the Debian/RedHat release vulnerability"
        );
    }

    #[test]
    fn dataset_round_trips_through_the_feed_format() {
        let dataset = CalibratedGenerator::new(9)
            .without_invalid_entries()
            .generate();
        let xml = dataset.to_feed_xml().unwrap();
        let parsed = nvd_feed::FeedReader::new()
            .strict()
            .read_from_str(&xml)
            .unwrap();
        assert_eq!(parsed.len(), dataset.len());
    }

    #[test]
    fn era_constraints_are_respected_for_isolated_thin_pairs() {
        let dataset = CalibratedGenerator::new(10).generate();
        // Windows2000–Windows2003 has a history/observed split of 35/46; the
        // generated years must respect the period boundaries approximately.
        let mut history = 0;
        let mut observed = 0;
        for entry in dataset.valid_entries() {
            if entry.affects(OsDistribution::Windows2000)
                && entry.affects(OsDistribution::Windows2003)
                && entry.part().map(|p| p.is_base_system()).unwrap_or(false)
                && entry.is_remotely_exploitable()
            {
                if entry.year() <= 2005 {
                    history += 1;
                } else {
                    observed += 1;
                }
            }
        }
        assert!((30..=40).contains(&history), "history count {history}");
        assert!((42..=52).contains(&observed), "observed count {observed}");
    }
}
