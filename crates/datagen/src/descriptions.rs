//! Synthetic NVD-style summaries.
//!
//! Each summary is generated *from* the vulnerability's ground-truth class
//! using wording typical of real NVD entries for that class, so that the
//! `classify` crate can be evaluated round-trip (generate → strip class →
//! re-classify → compare).

use nvd_model::{AccessVector, OsPart, OsSet};
use rand::Rng;

/// Flaw kinds that prefix most NVD summaries.
const FLAWS: &[&str] = &[
    "Buffer overflow",
    "Heap-based buffer overflow",
    "Stack-based buffer overflow",
    "Integer overflow",
    "Format string vulnerability",
    "Race condition",
    "Off-by-one error",
    "NULL pointer dereference",
    "Use-after-free",
    "Improper input validation",
];

/// Per-class components the flaw is located in, written so they match the
/// classification rules derived from Section III-B of the paper.
fn components(part: OsPart) -> &'static [&'static str] {
    match part {
        OsPart::Driver => &[
            "the wireless network card driver",
            "the video card driver",
            "the audio card driver",
            "the web cam driver",
            "the Universal Plug and Play device driver",
            "the wired network card driver firmware",
        ],
        OsPart::Kernel => &[
            "the kernel TCP/IP stack",
            "the kernel memory management subsystem",
            "the file system implementation in the kernel",
            "the process management code of the kernel",
            "the system call interface of the kernel",
            "the kernel packet scheduler",
            "the signal handler in the kernel core libraries",
        ],
        OsPart::SystemSoftware => &[
            "the login daemon",
            "the default shell",
            "the cron daemon",
            "the syslog daemon",
            "the OpenSSH sshd daemon",
            "the DHCP client daemon",
            "the DNS resolver daemon",
            "the RPC service portmapper",
            "the PAM authentication module",
        ],
        OsPart::Application => &[
            "the bundled database server",
            "the default web browser",
            "the bundled media player",
            "the mail client shipped with the distribution",
            "the FTP client",
            "the Kerberos administration utility",
            "the Java runtime virtual machine",
            "the bundled text editor",
            "the LDAP directory client",
        ],
    }
}

/// Consequences, split by whether the vulnerability is remotely exploitable
/// (so the generated CVSS access vector and the text agree).
fn consequences(remote: bool) -> &'static [&'static str] {
    if remote {
        &[
            "allows remote attackers to execute arbitrary code via a crafted packet",
            "allows remote attackers to cause a denial of service via a malformed request",
            "allows remote attackers to obtain sensitive information via a crafted message",
            "allows remote attackers to bypass authentication via a crafted handshake",
        ]
    } else {
        &[
            "allows local users to gain privileges via a crafted argument",
            "allows local users to cause a denial of service via a malformed ioctl request",
            "allows local users to overwrite arbitrary files via a symlink attack",
            "allows local users to read kernel memory via a crafted system call",
        ]
    }
}

/// Generates a summary for a vulnerability of the given class and access
/// vector affecting the given OS set.
pub fn generate_summary<R: Rng>(
    rng: &mut R,
    part: OsPart,
    access: AccessVector,
    oses: OsSet,
) -> String {
    let flaw = FLAWS[rng.gen_range(0..FLAWS.len())];
    let component = {
        let options = components(part);
        options[rng.gen_range(0..options.len())]
    };
    let consequence = {
        let options = consequences(access.is_remote());
        options[rng.gen_range(0..options.len())]
    };
    let os_names: Vec<&str> = oses.iter().map(|os| os.short_name()).collect();
    let location = match os_names.len() {
        0 => String::from("multiple operating systems"),
        1 => os_names[0].to_string(),
        _ => format!(
            "{} and {}",
            os_names[..os_names.len() - 1].join(", "),
            os_names[os_names.len() - 1]
        ),
    };
    format!("{flaw} in {component} on {location} {consequence}.")
}

/// Generates a summary for an entry that the study would filter out
/// (Unknown / Unspecified / Disputed), reproducing the wording NVD uses.
pub fn generate_invalid_summary<R: Rng>(
    rng: &mut R,
    kind: nvd_model::Validity,
    oses: OsSet,
) -> String {
    let os = oses
        .iter()
        .next()
        .map(|os| os.short_name().to_string())
        .unwrap_or_else(|| "an operating system".to_string());
    match kind {
        nvd_model::Validity::Unknown => format!(
            "Unknown vulnerability in {os} with unknown impact, possibly related to a \
             vendor patch."
        ),
        nvd_model::Validity::Unspecified => format!(
            "Unspecified vulnerability in {os} allows attackers to have an unknown impact \
             via unknown vectors."
        ),
        nvd_model::Validity::Disputed => {
            let flaw = FLAWS[rng.gen_range(0..FLAWS.len())];
            format!(
                "** DISPUTED ** {flaw} in {os}; the vendor disputes this issue because the \
                 affected code path is not reachable."
            )
        }
        nvd_model::Validity::Valid => {
            unreachable!("generate_invalid_summary must not be called for valid entries")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{OsDistribution, Validity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn summaries_mention_the_affected_oses() {
        let mut rng = StdRng::seed_from_u64(1);
        let oses = OsSet::from_iter([OsDistribution::Debian, OsDistribution::RedHat]);
        let summary = generate_summary(&mut rng, OsPart::Kernel, AccessVector::Network, oses);
        assert!(summary.contains("Debian"));
        assert!(summary.contains("RedHat"));
        assert!(summary.ends_with('.'));
    }

    #[test]
    fn remote_and_local_wording_matches_access_vector() {
        let mut rng = StdRng::seed_from_u64(2);
        let oses = OsSet::singleton(OsDistribution::Solaris);
        for _ in 0..20 {
            let remote = generate_summary(&mut rng, OsPart::Kernel, AccessVector::Network, oses);
            assert!(remote.contains("remote attackers"), "{remote}");
            let local = generate_summary(&mut rng, OsPart::Kernel, AccessVector::Local, oses);
            assert!(local.contains("local users"), "{local}");
        }
    }

    #[test]
    fn class_specific_wording_is_recognised_by_the_classifier() {
        let classifier = classify::Classifier::with_default_rules();
        let mut rng = StdRng::seed_from_u64(3);
        let oses = OsSet::singleton(OsDistribution::FreeBsd);
        let mut correct = 0;
        let mut total = 0;
        for part in OsPart::ALL {
            for _ in 0..50 {
                let summary = generate_summary(&mut rng, part, AccessVector::Network, oses);
                total += 1;
                if classifier.classify_summary(&summary) == part {
                    correct += 1;
                }
            }
        }
        let accuracy = f64::from(correct) / f64::from(total);
        assert!(
            accuracy > 0.9,
            "classifier only recovers {accuracy:.2} of generated classes"
        );
    }

    #[test]
    fn invalid_summaries_carry_the_filter_markers() {
        let mut rng = StdRng::seed_from_u64(4);
        let oses = OsSet::singleton(OsDistribution::Windows2000);
        let unknown = generate_invalid_summary(&mut rng, Validity::Unknown, oses);
        assert_eq!(Validity::from_summary(&unknown), Validity::Unknown);
        let unspecified = generate_invalid_summary(&mut rng, Validity::Unspecified, oses);
        assert_eq!(Validity::from_summary(&unspecified), Validity::Unspecified);
        let disputed = generate_invalid_summary(&mut rng, Validity::Disputed, oses);
        assert_eq!(Validity::from_summary(&disputed), Validity::Disputed);
    }

    #[test]
    #[should_panic(expected = "must not be called for valid entries")]
    fn invalid_summary_for_valid_kind_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        generate_invalid_summary(
            &mut rng,
            Validity::Valid,
            OsSet::singleton(OsDistribution::Debian),
        );
    }
}
