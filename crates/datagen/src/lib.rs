//! Synthetic NVD dataset generation, calibrated to the published statistics
//! of Garcia et al. (DSN 2011).
//!
//! The paper's raw inputs — the 2002–2010 NVD XML feeds and the authors'
//! hand-made classification of 1887 entries — are not available here, so the
//! reproduction generates a *synthetic* per-vulnerability dataset whose
//! aggregate statistics match the numbers the paper publishes:
//!
//! * [`calibration`] — the embedded paper tables (Tables I–VI, the named
//!   multi-OS CVEs of Section IV-B, and an approximation of the Figure 2
//!   temporal histograms);
//! * [`overlap`] — the constructive algorithm that turns the pairwise
//!   common-vulnerability counts (Table III), the per-part breakdown
//!   (Table IV) and the history/observed split (Table V) into a list of
//!   per-vulnerability *specs* (affected OS set, class, access vector, era);
//! * [`descriptions`] — realistic summary text per class so the `classify`
//!   crate can be evaluated round-trip;
//! * [`builder`] — [`CalibratedGenerator`], which assembles full
//!   [`nvd_model::VulnerabilityEntry`] values (CVE ids, dates, CVSS vectors,
//!   release tags, invalid entries) from the specs;
//! * [`parametric`] — a freely parameterizable generative model used for
//!   scalability benchmarks and what-if studies.
//!
//! The construction order (multi-OS vulnerabilities, then exact pairs, then
//! singletons) and the handling of constraints that cannot be satisfied
//! simultaneously are documented in DESIGN.md §5; EXPERIMENTS.md records the
//! achieved-vs-paper numbers for every table.
//!
//! # Example
//!
//! ```
//! use datagen::CalibratedGenerator;
//!
//! let dataset = CalibratedGenerator::new(7).generate();
//! // The paper studies 1887 valid vulnerabilities; the calibrated dataset
//! // reproduces the per-OS totals, so the overall count is close to that.
//! assert!(dataset.valid_entries().count() > 1500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod calibration;
pub mod descriptions;
pub mod overlap;
pub mod parametric;
pub mod temporal;

pub use builder::{CalibratedGenerator, Dataset};
pub use overlap::{Era, VulnSpec};
pub use parametric::{ParametricConfig, ParametricGenerator};
