//! A freely parameterizable generative model.
//!
//! The calibrated generator reproduces the paper's numbers; the parametric
//! generator answers a different need: scalability benchmarks (how does the
//! analysis cost grow with the number of vulnerabilities?) and what-if
//! studies (what would the diversity gains look like if intra-family code
//! reuse doubled?).

use nvd_model::{
    AccessVector, CveId, OsDistribution, OsFamily, OsPart, OsSet, Validity, VulnerabilityEntry,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::Dataset;
use crate::descriptions::generate_summary;
use crate::temporal::{sample_date, FIRST_YEAR, LAST_YEAR};

/// Configuration of the parametric generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricConfig {
    /// Number of vulnerabilities to generate.
    pub vulnerability_count: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Probability that a vulnerability affecting one OS also affects
    /// another member of the same family (applied repeatedly, so higher
    /// values produce larger intra-family sets).
    pub family_reuse_probability: f64,
    /// Probability that a vulnerability crosses family boundaries (applied
    /// once per additional family).
    pub cross_family_probability: f64,
    /// Fraction of vulnerabilities in the Application class.
    pub application_fraction: f64,
    /// Fraction of vulnerabilities that are remotely exploitable.
    pub remote_fraction: f64,
    /// First publication year (inclusive).
    pub first_year: u16,
    /// Last publication year (inclusive).
    pub last_year: u16,
}

impl Default for ParametricConfig {
    fn default() -> Self {
        ParametricConfig {
            vulnerability_count: 2000,
            seed: 42,
            family_reuse_probability: 0.12,
            cross_family_probability: 0.02,
            application_fraction: 0.40,
            remote_fraction: 0.55,
            first_year: FIRST_YEAR,
            last_year: LAST_YEAR,
        }
    }
}

impl ParametricConfig {
    /// A configuration that scales the default workload to `n`
    /// vulnerabilities (used by the scalability benches).
    pub fn with_count(n: usize) -> Self {
        ParametricConfig {
            vulnerability_count: n,
            ..ParametricConfig::default()
        }
    }
}

/// Generates datasets from a [`ParametricConfig`].
#[derive(Debug, Clone)]
pub struct ParametricGenerator {
    config: ParametricConfig,
}

impl ParametricGenerator {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if a probability/fraction is outside `[0, 1]` or the year
    /// range is inverted (programming errors in bench/test code).
    pub fn new(config: ParametricConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.family_reuse_probability));
        assert!((0.0..=1.0).contains(&config.cross_family_probability));
        assert!((0.0..=1.0).contains(&config.application_fraction));
        assert!((0.0..=1.0).contains(&config.remote_fraction));
        assert!(config.first_year <= config.last_year);
        ParametricGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParametricConfig {
        &self.config
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut entries = Vec::with_capacity(cfg.vulnerability_count);
        for index in 0..cfg.vulnerability_count {
            let oses = self.sample_os_set(&mut rng);
            let part = self.sample_part(&mut rng);
            let access = if rng.gen_bool(cfg.remote_fraction) {
                AccessVector::Network
            } else {
                AccessVector::Local
            };
            let year = rng.gen_range(cfg.first_year..=cfg.last_year);
            let id = CveId::new(year, 50_000 + index as u32);
            let entry = VulnerabilityEntry::builder(id)
                .published(sample_date(&mut rng, year))
                .summary(generate_summary(&mut rng, part, access, oses))
                .part(part)
                .validity(Validity::Valid)
                .cvss(if access.is_remote() {
                    nvd_model::CvssV2::typical_remote()
                } else {
                    nvd_model::CvssV2::typical_local()
                })
                .affects_set(oses)
                .build()
                .expect("parametric entries are always structurally valid");
            entries.push(entry);
        }
        Dataset::from_entries(entries)
    }

    fn sample_os_set(&self, rng: &mut StdRng) -> OsSet {
        let cfg = &self.config;
        let primary = OsDistribution::ALL[rng.gen_range(0..OsDistribution::COUNT)];
        let mut set = OsSet::singleton(primary);
        // Intra-family reuse: repeatedly try to add family members.
        let family_members = primary.family().members();
        for os in family_members {
            if *os != primary && rng.gen_bool(cfg.family_reuse_probability) {
                set.insert(*os);
            }
        }
        // Cross-family spread: at most one OS from each other family.
        for family in OsFamily::ALL {
            if family == primary.family() {
                continue;
            }
            if rng.gen_bool(cfg.cross_family_probability) {
                let members = family.members();
                set.insert(members[rng.gen_range(0..members.len())]);
            }
        }
        set
    }

    fn sample_part(&self, rng: &mut StdRng) -> OsPart {
        if rng.gen_bool(self.config.application_fraction) {
            return OsPart::Application;
        }
        // The paper's base-system split is roughly 1.4% drivers, 35.5%
        // kernel, 23.2% system software (Table II); renormalized over the
        // base system only.
        let roll: f64 = rng.gen();
        if roll < 0.025 {
            OsPart::Driver
        } else if roll < 0.62 {
            OsPart::Kernel
        } else {
            OsPart::SystemSoftware
        }
    }
}

impl Default for ParametricGenerator {
    fn default() -> Self {
        ParametricGenerator::new(ParametricConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_number_of_entries() {
        let dataset = ParametricGenerator::new(ParametricConfig::with_count(500)).generate();
        assert_eq!(dataset.len(), 500);
        assert_eq!(dataset.valid_entries().count(), 500);
    }

    #[test]
    fn determinism_per_seed() {
        let a = ParametricGenerator::new(ParametricConfig::with_count(200)).generate();
        let b = ParametricGenerator::new(ParametricConfig::with_count(200)).generate();
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.affected_os_set(), y.affected_os_set());
        }
    }

    #[test]
    fn zero_reuse_produces_single_os_vulnerabilities() {
        let config = ParametricConfig {
            vulnerability_count: 300,
            family_reuse_probability: 0.0,
            cross_family_probability: 0.0,
            ..ParametricConfig::default()
        };
        let dataset = ParametricGenerator::new(config).generate();
        assert!(dataset
            .entries()
            .iter()
            .all(|e| e.affected_os_set().len() == 1));
    }

    #[test]
    fn high_reuse_produces_shared_vulnerabilities() {
        let config = ParametricConfig {
            vulnerability_count: 300,
            family_reuse_probability: 0.9,
            cross_family_probability: 0.3,
            ..ParametricConfig::default()
        };
        let dataset = ParametricGenerator::new(config).generate();
        let shared = dataset
            .entries()
            .iter()
            .filter(|e| e.affected_os_set().len() >= 2)
            .count();
        assert!(shared > 200, "only {shared} shared vulnerabilities");
    }

    #[test]
    fn remote_fraction_is_respected_approximately() {
        let config = ParametricConfig {
            vulnerability_count: 1000,
            remote_fraction: 0.8,
            ..ParametricConfig::default()
        };
        let dataset = ParametricGenerator::new(config).generate();
        let remote = dataset
            .entries()
            .iter()
            .filter(|e| e.is_remotely_exploitable())
            .count();
        assert!((700..=900).contains(&remote), "remote count {remote}");
    }

    #[test]
    #[should_panic]
    fn invalid_probability_is_rejected() {
        ParametricGenerator::new(ParametricConfig {
            family_reuse_probability: 1.5,
            ..ParametricConfig::default()
        });
    }
}
