//! Publication-year assignment.
//!
//! Years are drawn from the per-OS weights approximating Figure 2 of the
//! paper ([`crate::calibration::figure2_year_weights`]), optionally
//! restricted to the history (1994–2005) or observed (2006–2010) period so
//! that the Table V split is respected.

use nvd_model::{Date, OsSet};
use rand::Rng;

use crate::calibration::figure2_year_weights;
use crate::overlap::Era;

/// First year covered by the study (the 2002 feed reaches back to 1994).
pub const FIRST_YEAR: u16 = 1994;
/// Last year covered by the study (feeds until September 2010).
pub const LAST_YEAR: u16 = 2010;
/// Last year of the paper's *history* period.
pub const HISTORY_LAST_YEAR: u16 = 2005;

/// The inclusive year range allowed for an era.
pub fn era_range(era: Era) -> (u16, u16) {
    match era {
        Era::History => (FIRST_YEAR, HISTORY_LAST_YEAR),
        Era::Observed => (HISTORY_LAST_YEAR + 1, LAST_YEAR),
        Era::Any => (FIRST_YEAR, LAST_YEAR),
    }
}

/// Samples a publication year for a vulnerability affecting `oses`,
/// restricted to `era`. The year weights of every affected OS are summed so
/// shared vulnerabilities land in years where all members were receiving
/// reports; if no weight falls inside the era window the midpoint of the
/// window is used.
pub fn sample_year<R: Rng>(rng: &mut R, oses: OsSet, era: Era) -> u16 {
    let (era_lo, hi) = era_range(era);
    // A vulnerability report cannot reasonably predate the youngest affected
    // distribution (the paper treats such NVD entries as database
    // artefacts), so the lower bound is clamped to the latest first-release
    // year among the affected OSes when that still leaves a non-empty
    // window.
    let release_floor = oses
        .iter()
        .map(|os| os.first_release_year())
        .max()
        .unwrap_or(era_lo);
    let lo = era_lo.max(release_floor.min(hi));
    let mut weights: Vec<(u16, u32)> = Vec::new();
    for year in lo..=hi {
        let mut weight = 0u32;
        for os in oses {
            weight += figure2_year_weights(os)
                .iter()
                .find(|(y, _)| *y == year)
                .map(|(_, w)| *w)
                .unwrap_or(0);
        }
        if weight > 0 {
            weights.push((year, weight));
        }
    }
    if weights.is_empty() {
        return lo + (hi - lo) / 2;
    }

    let total: u32 = weights.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (year, weight) in &weights {
        if pick < *weight {
            return *year;
        }
        pick -= weight;
    }
    weights.last().expect("weights not empty").0
}

/// Samples a full publication date within the given year (month 1–12,
/// day 1–28 so every month is valid).
pub fn sample_date<R: Rng>(rng: &mut R, year: u16) -> Date {
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=28);
    Date::new(year, month, day).expect("day <= 28 is valid in every month")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::OsDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn era_ranges_partition_the_study_period() {
        let (h_lo, h_hi) = era_range(Era::History);
        let (o_lo, o_hi) = era_range(Era::Observed);
        let (a_lo, a_hi) = era_range(Era::Any);
        assert_eq!(h_lo, a_lo);
        assert_eq!(o_hi, a_hi);
        assert_eq!(h_hi + 1, o_lo);
        assert_eq!((h_lo, o_hi), (1994, 2010));
    }

    #[test]
    fn sampled_years_respect_the_era() {
        let mut rng = StdRng::seed_from_u64(11);
        let oses = OsSet::singleton(OsDistribution::FreeBsd);
        for _ in 0..200 {
            let history = sample_year(&mut rng, oses, Era::History);
            assert!((1994..=2005).contains(&history), "{history}");
            let observed = sample_year(&mut rng, oses, Era::Observed);
            assert!((2006..=2010).contains(&observed), "{observed}");
        }
    }

    #[test]
    fn recent_oses_fall_back_to_the_window_midpoint_in_history() {
        // Windows 2008 has no weight before 2008, so a history-period draw
        // must fall back to the midpoint of 1994–2005.
        let mut rng = StdRng::seed_from_u64(12);
        let oses = OsSet::singleton(OsDistribution::Windows2008);
        let year = sample_year(&mut rng, oses, Era::History);
        assert_eq!(year, 2005);
    }

    #[test]
    fn shared_vulnerability_years_follow_combined_weights() {
        let mut rng = StdRng::seed_from_u64(13);
        let pair = OsSet::pair(OsDistribution::Windows2000, OsDistribution::Windows2003);
        // Windows 2003 has no weight before 2003, but Windows 2000 does, so
        // years before 2003 are possible yet the bulk must land 2003+.
        let years: Vec<u16> = (0..500)
            .map(|_| sample_year(&mut rng, pair, Era::Any))
            .collect();
        let after_2003 = years.iter().filter(|y| **y >= 2003).count();
        assert!(after_2003 > 300, "only {after_2003} of 500 after 2003");
    }

    #[test]
    fn sample_date_is_within_year() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let date = sample_date(&mut rng, 2004);
            assert_eq!(date.year(), 2004);
            assert!((1..=12).contains(&date.month()));
            assert!((1..=28).contains(&date.day()));
        }
    }

    #[test]
    fn empty_os_set_uses_midpoint() {
        let mut rng = StdRng::seed_from_u64(15);
        let year = sample_year(&mut rng, OsSet::EMPTY, Era::Observed);
        assert_eq!(year, 2008);
    }
}
