//! The published statistics of the paper, embedded as constants.
//!
//! Every number in this module is transcribed from the paper:
//!
//! * [`TABLE1`] — Table I, distribution of OS vulnerabilities in the NVD
//!   (valid / unknown / unspecified / disputed per OS);
//! * [`TABLE2`] — Table II, vulnerabilities per OS component class;
//! * [`TABLE3`] — Table III, common vulnerabilities for every OS pair under
//!   the three filters (All, No Applications, No Applications + No Local);
//! * [`TABLE4`] — Table IV, per-part breakdown of the Isolated Thin Server
//!   common vulnerabilities;
//! * [`TABLE5`] — Table V, history (1994–2005) vs observed (2006–2010)
//!   common vulnerabilities for the 8 OSes with enough history data;
//! * [`named_multi_os_vulnerabilities`] — the three named CVEs of
//!   Section IV-B (DNS, DHCP and TCP) that affect six and nine OSes;
//! * [`figure2_year_weights`] — an approximation of the per-OS temporal
//!   distribution of Figure 2 (the paper only publishes the curves, not the
//!   values, so the weights encode the visible shape: when the OS started
//!   receiving reports, where the peaks are);
//! * [`figure3_sets`] — the replica-set configurations of Figure 3.

use nvd_model::{CveId, OsDistribution, OsPart, OsSet};

use OsDistribution::*;

/// One row of Table I: per-OS counts by validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// The operating system.
    pub os: OsDistribution,
    /// Valid vulnerabilities (kept by the study).
    pub valid: u32,
    /// Entries tagged Unknown.
    pub unknown: u32,
    /// Entries tagged Unspecified.
    pub unspecified: u32,
    /// Entries flagged `**DISPUTED**`.
    pub disputed: u32,
}

/// Table I of the paper.
pub const TABLE1: [Table1Row; 11] = [
    Table1Row {
        os: OpenBsd,
        valid: 142,
        unknown: 1,
        unspecified: 1,
        disputed: 1,
    },
    Table1Row {
        os: NetBsd,
        valid: 126,
        unknown: 0,
        unspecified: 1,
        disputed: 2,
    },
    Table1Row {
        os: FreeBsd,
        valid: 258,
        unknown: 0,
        unspecified: 0,
        disputed: 2,
    },
    Table1Row {
        os: OpenSolaris,
        valid: 31,
        unknown: 0,
        unspecified: 40,
        disputed: 0,
    },
    Table1Row {
        os: Solaris,
        valid: 400,
        unknown: 39,
        unspecified: 109,
        disputed: 0,
    },
    Table1Row {
        os: Debian,
        valid: 201,
        unknown: 3,
        unspecified: 1,
        disputed: 0,
    },
    Table1Row {
        os: Ubuntu,
        valid: 87,
        unknown: 2,
        unspecified: 1,
        disputed: 0,
    },
    Table1Row {
        os: RedHat,
        valid: 369,
        unknown: 12,
        unspecified: 8,
        disputed: 1,
    },
    Table1Row {
        os: Windows2000,
        valid: 481,
        unknown: 7,
        unspecified: 27,
        disputed: 5,
    },
    Table1Row {
        os: Windows2003,
        valid: 343,
        unknown: 4,
        unspecified: 30,
        disputed: 3,
    },
    Table1Row {
        os: Windows2008,
        valid: 118,
        unknown: 0,
        unspecified: 3,
        disputed: 0,
    },
];

/// Number of distinct valid vulnerabilities in the paper's data set
/// (last row of Table I).
pub const DISTINCT_VALID: u32 = 1887;

/// One row of Table II: per-OS counts by component class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// The operating system.
    pub os: OsDistribution,
    /// Driver vulnerabilities.
    pub driver: u32,
    /// Kernel vulnerabilities.
    pub kernel: u32,
    /// System-software vulnerabilities.
    pub system_software: u32,
    /// Application vulnerabilities.
    pub application: u32,
}

impl Table2Row {
    /// Total vulnerabilities of the OS (equals Table I valid count).
    pub fn total(&self) -> u32 {
        self.driver + self.kernel + self.system_software + self.application
    }

    /// Count for a specific class.
    pub fn count(&self, part: OsPart) -> u32 {
        match part {
            OsPart::Driver => self.driver,
            OsPart::Kernel => self.kernel,
            OsPart::SystemSoftware => self.system_software,
            OsPart::Application => self.application,
        }
    }
}

/// Table II of the paper.
pub const TABLE2: [Table2Row; 11] = [
    Table2Row {
        os: OpenBsd,
        driver: 2,
        kernel: 75,
        system_software: 33,
        application: 32,
    },
    Table2Row {
        os: NetBsd,
        driver: 9,
        kernel: 59,
        system_software: 32,
        application: 26,
    },
    Table2Row {
        os: FreeBsd,
        driver: 4,
        kernel: 147,
        system_software: 54,
        application: 53,
    },
    Table2Row {
        os: OpenSolaris,
        driver: 0,
        kernel: 15,
        system_software: 9,
        application: 7,
    },
    Table2Row {
        os: Solaris,
        driver: 2,
        kernel: 156,
        system_software: 114,
        application: 128,
    },
    Table2Row {
        os: Debian,
        driver: 1,
        kernel: 24,
        system_software: 34,
        application: 142,
    },
    Table2Row {
        os: Ubuntu,
        driver: 2,
        kernel: 22,
        system_software: 8,
        application: 55,
    },
    Table2Row {
        os: RedHat,
        driver: 5,
        kernel: 89,
        system_software: 93,
        application: 182,
    },
    Table2Row {
        os: Windows2000,
        driver: 3,
        kernel: 143,
        system_software: 132,
        application: 203,
    },
    Table2Row {
        os: Windows2003,
        driver: 1,
        kernel: 95,
        system_software: 71,
        application: 176,
    },
    Table2Row {
        os: Windows2008,
        driver: 0,
        kernel: 42,
        system_software: 14,
        application: 62,
    },
];

/// One row of Table III: an OS pair with the common-vulnerability counts
/// under the three filters. The per-OS totals (the `v(A)` / `v(B)` columns)
/// are available from [`os_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Row {
    /// First OS of the pair (paper row order).
    pub a: OsDistribution,
    /// Second OS of the pair.
    pub b: OsDistribution,
    /// v(AB) with no filter (Fat Server).
    pub all: u32,
    /// v(AB) without Application vulnerabilities (Thin Server).
    pub no_app: u32,
    /// v(AB) without Application and local-only vulnerabilities
    /// (Isolated Thin Server).
    pub no_app_no_local: u32,
}

/// Table III of the paper: all 55 OS pairs.
pub const TABLE3: [Table3Row; 55] = [
    Table3Row {
        a: OpenBsd,
        b: NetBsd,
        all: 40,
        no_app: 32,
        no_app_no_local: 16,
    },
    Table3Row {
        a: OpenBsd,
        b: FreeBsd,
        all: 53,
        no_app: 48,
        no_app_no_local: 32,
    },
    Table3Row {
        a: OpenBsd,
        b: OpenSolaris,
        all: 1,
        no_app: 1,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenBsd,
        b: Solaris,
        all: 12,
        no_app: 10,
        no_app_no_local: 6,
    },
    Table3Row {
        a: OpenBsd,
        b: Debian,
        all: 2,
        no_app: 2,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenBsd,
        b: Ubuntu,
        all: 3,
        no_app: 1,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenBsd,
        b: RedHat,
        all: 10,
        no_app: 5,
        no_app_no_local: 4,
    },
    Table3Row {
        a: OpenBsd,
        b: Windows2000,
        all: 3,
        no_app: 3,
        no_app_no_local: 3,
    },
    Table3Row {
        a: OpenBsd,
        b: Windows2003,
        all: 2,
        no_app: 2,
        no_app_no_local: 2,
    },
    Table3Row {
        a: OpenBsd,
        b: Windows2008,
        all: 1,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: NetBsd,
        b: FreeBsd,
        all: 49,
        no_app: 39,
        no_app_no_local: 24,
    },
    Table3Row {
        a: NetBsd,
        b: OpenSolaris,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: NetBsd,
        b: Solaris,
        all: 15,
        no_app: 12,
        no_app_no_local: 8,
    },
    Table3Row {
        a: NetBsd,
        b: Debian,
        all: 3,
        no_app: 2,
        no_app_no_local: 2,
    },
    Table3Row {
        a: NetBsd,
        b: Ubuntu,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: NetBsd,
        b: RedHat,
        all: 7,
        no_app: 4,
        no_app_no_local: 2,
    },
    Table3Row {
        a: NetBsd,
        b: Windows2000,
        all: 3,
        no_app: 3,
        no_app_no_local: 3,
    },
    Table3Row {
        a: NetBsd,
        b: Windows2003,
        all: 1,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: NetBsd,
        b: Windows2008,
        all: 1,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: FreeBsd,
        b: OpenSolaris,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: FreeBsd,
        b: Solaris,
        all: 21,
        no_app: 15,
        no_app_no_local: 8,
    },
    Table3Row {
        a: FreeBsd,
        b: Debian,
        all: 7,
        no_app: 4,
        no_app_no_local: 1,
    },
    Table3Row {
        a: FreeBsd,
        b: Ubuntu,
        all: 3,
        no_app: 3,
        no_app_no_local: 0,
    },
    Table3Row {
        a: FreeBsd,
        b: RedHat,
        all: 20,
        no_app: 13,
        no_app_no_local: 5,
    },
    Table3Row {
        a: FreeBsd,
        b: Windows2000,
        all: 4,
        no_app: 4,
        no_app_no_local: 4,
    },
    Table3Row {
        a: FreeBsd,
        b: Windows2003,
        all: 2,
        no_app: 2,
        no_app_no_local: 2,
    },
    Table3Row {
        a: FreeBsd,
        b: Windows2008,
        all: 1,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: OpenSolaris,
        b: Solaris,
        all: 27,
        no_app: 22,
        no_app_no_local: 6,
    },
    Table3Row {
        a: OpenSolaris,
        b: Debian,
        all: 1,
        no_app: 1,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenSolaris,
        b: Ubuntu,
        all: 1,
        no_app: 1,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenSolaris,
        b: RedHat,
        all: 1,
        no_app: 1,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenSolaris,
        b: Windows2000,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenSolaris,
        b: Windows2003,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: OpenSolaris,
        b: Windows2008,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Solaris,
        b: Debian,
        all: 4,
        no_app: 4,
        no_app_no_local: 2,
    },
    Table3Row {
        a: Solaris,
        b: Ubuntu,
        all: 2,
        no_app: 2,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Solaris,
        b: RedHat,
        all: 13,
        no_app: 8,
        no_app_no_local: 4,
    },
    Table3Row {
        a: Solaris,
        b: Windows2000,
        all: 9,
        no_app: 3,
        no_app_no_local: 3,
    },
    Table3Row {
        a: Solaris,
        b: Windows2003,
        all: 7,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: Solaris,
        b: Windows2008,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Debian,
        b: Ubuntu,
        all: 12,
        no_app: 6,
        no_app_no_local: 2,
    },
    Table3Row {
        a: Debian,
        b: RedHat,
        all: 61,
        no_app: 26,
        no_app_no_local: 11,
    },
    Table3Row {
        a: Debian,
        b: Windows2000,
        all: 1,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: Debian,
        b: Windows2003,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Debian,
        b: Windows2008,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Ubuntu,
        b: RedHat,
        all: 25,
        no_app: 8,
        no_app_no_local: 1,
    },
    Table3Row {
        a: Ubuntu,
        b: Windows2000,
        all: 1,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: Ubuntu,
        b: Windows2003,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Ubuntu,
        b: Windows2008,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: RedHat,
        b: Windows2000,
        all: 2,
        no_app: 1,
        no_app_no_local: 1,
    },
    Table3Row {
        a: RedHat,
        b: Windows2003,
        all: 1,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: RedHat,
        b: Windows2008,
        all: 0,
        no_app: 0,
        no_app_no_local: 0,
    },
    Table3Row {
        a: Windows2000,
        b: Windows2003,
        all: 253,
        no_app: 116,
        no_app_no_local: 81,
    },
    Table3Row {
        a: Windows2000,
        b: Windows2008,
        all: 70,
        no_app: 27,
        no_app_no_local: 14,
    },
    Table3Row {
        a: Windows2003,
        b: Windows2008,
        all: 95,
        no_app: 39,
        no_app_no_local: 18,
    },
];

/// Per-OS totals of Table III (the `v(A)` column) under the three filters:
/// `(all, no_app, no_app_no_local)`.
pub fn os_totals(os: OsDistribution) -> (u32, u32, u32) {
    match os {
        OpenBsd => (142, 110, 60),
        NetBsd => (126, 100, 41),
        FreeBsd => (258, 205, 87),
        OpenSolaris => (31, 24, 6),
        Solaris => (400, 272, 103),
        Debian => (201, 59, 25),
        Ubuntu => (87, 32, 10),
        RedHat => (369, 187, 58),
        Windows2000 => (481, 278, 178),
        Windows2003 => (343, 167, 109),
        Windows2008 => (118, 56, 26),
    }
}

/// One row of Table IV: the per-part breakdown of the Isolated Thin Server
/// common vulnerabilities of a pair (only the 34 pairs with a non-zero
/// total appear in the paper's table; the rest are all-zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// First OS of the pair.
    pub a: OsDistribution,
    /// Second OS of the pair.
    pub b: OsDistribution,
    /// Shared driver vulnerabilities.
    pub driver: u32,
    /// Shared kernel vulnerabilities.
    pub kernel: u32,
    /// Shared system-software vulnerabilities.
    pub system_software: u32,
}

impl Table4Row {
    /// Total shared Isolated Thin Server vulnerabilities of the pair.
    pub fn total(&self) -> u32 {
        self.driver + self.kernel + self.system_software
    }
}

/// Table IV of the paper (non-zero pairs only).
pub const TABLE4: [Table4Row; 34] = [
    Table4Row {
        a: Windows2000,
        b: Windows2003,
        driver: 0,
        kernel: 40,
        system_software: 41,
    },
    Table4Row {
        a: OpenBsd,
        b: FreeBsd,
        driver: 1,
        kernel: 14,
        system_software: 17,
    },
    Table4Row {
        a: NetBsd,
        b: FreeBsd,
        driver: 2,
        kernel: 13,
        system_software: 9,
    },
    Table4Row {
        a: Windows2003,
        b: Windows2008,
        driver: 0,
        kernel: 10,
        system_software: 8,
    },
    Table4Row {
        a: OpenBsd,
        b: NetBsd,
        driver: 1,
        kernel: 8,
        system_software: 7,
    },
    Table4Row {
        a: Windows2000,
        b: Windows2008,
        driver: 0,
        kernel: 8,
        system_software: 6,
    },
    Table4Row {
        a: Debian,
        b: RedHat,
        driver: 0,
        kernel: 5,
        system_software: 6,
    },
    Table4Row {
        a: FreeBsd,
        b: Solaris,
        driver: 0,
        kernel: 5,
        system_software: 3,
    },
    Table4Row {
        a: NetBsd,
        b: Solaris,
        driver: 0,
        kernel: 4,
        system_software: 4,
    },
    Table4Row {
        a: OpenBsd,
        b: Solaris,
        driver: 0,
        kernel: 5,
        system_software: 1,
    },
    Table4Row {
        a: OpenSolaris,
        b: Solaris,
        driver: 0,
        kernel: 3,
        system_software: 3,
    },
    Table4Row {
        a: FreeBsd,
        b: RedHat,
        driver: 0,
        kernel: 1,
        system_software: 4,
    },
    Table4Row {
        a: FreeBsd,
        b: Windows2000,
        driver: 1,
        kernel: 3,
        system_software: 0,
    },
    Table4Row {
        a: OpenBsd,
        b: RedHat,
        driver: 0,
        kernel: 1,
        system_software: 3,
    },
    Table4Row {
        a: Solaris,
        b: RedHat,
        driver: 0,
        kernel: 3,
        system_software: 1,
    },
    Table4Row {
        a: NetBsd,
        b: Windows2000,
        driver: 1,
        kernel: 2,
        system_software: 0,
    },
    Table4Row {
        a: OpenBsd,
        b: Windows2000,
        driver: 0,
        kernel: 3,
        system_software: 0,
    },
    Table4Row {
        a: Solaris,
        b: Windows2000,
        driver: 0,
        kernel: 3,
        system_software: 0,
    },
    Table4Row {
        a: Solaris,
        b: Debian,
        driver: 0,
        kernel: 1,
        system_software: 1,
    },
    Table4Row {
        a: OpenBsd,
        b: Windows2003,
        driver: 0,
        kernel: 2,
        system_software: 0,
    },
    Table4Row {
        a: FreeBsd,
        b: Windows2003,
        driver: 0,
        kernel: 2,
        system_software: 0,
    },
    Table4Row {
        a: Debian,
        b: Ubuntu,
        driver: 0,
        kernel: 0,
        system_software: 2,
    },
    Table4Row {
        a: NetBsd,
        b: Debian,
        driver: 0,
        kernel: 0,
        system_software: 2,
    },
    Table4Row {
        a: NetBsd,
        b: RedHat,
        driver: 0,
        kernel: 0,
        system_software: 2,
    },
    Table4Row {
        a: NetBsd,
        b: Windows2003,
        driver: 0,
        kernel: 1,
        system_software: 0,
    },
    Table4Row {
        a: NetBsd,
        b: Windows2008,
        driver: 0,
        kernel: 1,
        system_software: 0,
    },
    Table4Row {
        a: OpenBsd,
        b: Windows2008,
        driver: 0,
        kernel: 1,
        system_software: 0,
    },
    Table4Row {
        a: FreeBsd,
        b: Windows2008,
        driver: 0,
        kernel: 1,
        system_software: 0,
    },
    Table4Row {
        a: Solaris,
        b: Windows2003,
        driver: 0,
        kernel: 1,
        system_software: 0,
    },
    Table4Row {
        a: FreeBsd,
        b: Debian,
        driver: 0,
        kernel: 0,
        system_software: 1,
    },
    Table4Row {
        a: Debian,
        b: Windows2000,
        driver: 0,
        kernel: 0,
        system_software: 1,
    },
    Table4Row {
        a: Ubuntu,
        b: RedHat,
        driver: 0,
        kernel: 0,
        system_software: 1,
    },
    Table4Row {
        a: Ubuntu,
        b: Windows2000,
        driver: 0,
        kernel: 0,
        system_software: 1,
    },
    Table4Row {
        a: RedHat,
        b: Windows2000,
        driver: 0,
        kernel: 0,
        system_software: 1,
    },
];

/// The eight OSes with enough data during the history period to appear in
/// Table V (Ubuntu, OpenSolaris and Windows 2008 are excluded).
pub const TABLE5_OSES: [OsDistribution; 8] = [
    OpenBsd,
    NetBsd,
    FreeBsd,
    Solaris,
    Debian,
    RedHat,
    Windows2000,
    Windows2003,
];

/// One cell pair of Table V: the history-period (1994–2005) and
/// observed-period (2006–2010) common Isolated Thin Server vulnerabilities
/// of an OS pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table5Cell {
    /// First OS of the pair.
    pub a: OsDistribution,
    /// Second OS of the pair.
    pub b: OsDistribution,
    /// Common vulnerabilities published 1994–2005.
    pub history: u32,
    /// Common vulnerabilities published 2006–2010.
    pub observed: u32,
}

/// Table V of the paper (28 pairs over the 8 OSes). History + observed
/// always equals the pair's Isolated Thin Server total of Tables III/IV.
pub const TABLE5: [Table5Cell; 28] = [
    Table5Cell {
        a: OpenBsd,
        b: NetBsd,
        history: 9,
        observed: 7,
    },
    Table5Cell {
        a: OpenBsd,
        b: FreeBsd,
        history: 25,
        observed: 7,
    },
    Table5Cell {
        a: OpenBsd,
        b: Solaris,
        history: 6,
        observed: 0,
    },
    Table5Cell {
        a: OpenBsd,
        b: Debian,
        history: 0,
        observed: 0,
    },
    Table5Cell {
        a: OpenBsd,
        b: RedHat,
        history: 4,
        observed: 0,
    },
    Table5Cell {
        a: OpenBsd,
        b: Windows2000,
        history: 2,
        observed: 1,
    },
    Table5Cell {
        a: OpenBsd,
        b: Windows2003,
        history: 1,
        observed: 1,
    },
    Table5Cell {
        a: NetBsd,
        b: FreeBsd,
        history: 15,
        observed: 9,
    },
    Table5Cell {
        a: NetBsd,
        b: Solaris,
        history: 8,
        observed: 0,
    },
    Table5Cell {
        a: NetBsd,
        b: Debian,
        history: 2,
        observed: 0,
    },
    Table5Cell {
        a: NetBsd,
        b: RedHat,
        history: 2,
        observed: 0,
    },
    Table5Cell {
        a: NetBsd,
        b: Windows2000,
        history: 2,
        observed: 1,
    },
    Table5Cell {
        a: NetBsd,
        b: Windows2003,
        history: 0,
        observed: 1,
    },
    Table5Cell {
        a: FreeBsd,
        b: Solaris,
        history: 8,
        observed: 0,
    },
    Table5Cell {
        a: FreeBsd,
        b: Debian,
        history: 1,
        observed: 0,
    },
    Table5Cell {
        a: FreeBsd,
        b: RedHat,
        history: 5,
        observed: 0,
    },
    Table5Cell {
        a: FreeBsd,
        b: Windows2000,
        history: 3,
        observed: 1,
    },
    Table5Cell {
        a: FreeBsd,
        b: Windows2003,
        history: 1,
        observed: 1,
    },
    Table5Cell {
        a: Solaris,
        b: Debian,
        history: 2,
        observed: 0,
    },
    Table5Cell {
        a: Solaris,
        b: RedHat,
        history: 3,
        observed: 1,
    },
    Table5Cell {
        a: Solaris,
        b: Windows2000,
        history: 3,
        observed: 0,
    },
    Table5Cell {
        a: Solaris,
        b: Windows2003,
        history: 1,
        observed: 0,
    },
    Table5Cell {
        a: Debian,
        b: RedHat,
        history: 10,
        observed: 1,
    },
    Table5Cell {
        a: Debian,
        b: Windows2000,
        history: 0,
        observed: 1,
    },
    Table5Cell {
        a: Debian,
        b: Windows2003,
        history: 0,
        observed: 0,
    },
    Table5Cell {
        a: RedHat,
        b: Windows2000,
        history: 0,
        observed: 1,
    },
    Table5Cell {
        a: RedHat,
        b: Windows2003,
        history: 0,
        observed: 0,
    },
    Table5Cell {
        a: Windows2000,
        b: Windows2003,
        history: 35,
        observed: 46,
    },
];

/// Per-OS Isolated Thin Server totals split into history / observed periods.
/// Only published for Debian ("16 vulnerabilities … over the history period"
/// and "9 shared vulnerabilities … between 2006 and 2010"); for the other
/// OSes the generator splits the per-OS totals 2/3–1/3 as the paper says the
/// overall data set splits.
pub fn os_period_totals(os: OsDistribution) -> (u32, u32) {
    let (_, _, its) = os_totals(os);
    match os {
        Debian => (16, 9),
        _ => {
            let history = (its * 2).div_ceil(3);
            (history, its - history)
        }
    }
}

/// A named multi-OS vulnerability of Section IV-B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedVulnerability {
    /// The CVE identifier given in the paper.
    pub id: CveId,
    /// The publication year.
    pub year: u16,
    /// The affected OS set used by the generator.
    pub oses: OsSet,
    /// The component class.
    pub part: OsPart,
    /// A description consistent with the real CVE.
    pub summary: &'static str,
}

/// The three multi-OS vulnerabilities named in Section IV-B: the DNS cache
/// poisoning and DHCP flaws shared by six OSes and the TCP denial of service
/// shared by nine OSes. The exact OS memberships are not listed in the
/// paper, so the generator uses plausible sets of the stated sizes.
pub fn named_multi_os_vulnerabilities() -> Vec<NamedVulnerability> {
    vec![
        NamedVulnerability {
            id: CveId::new(2008, 4609),
            year: 2008,
            oses: OsSet::from_iter([
                OpenBsd,
                NetBsd,
                FreeBsd,
                Solaris,
                Debian,
                RedHat,
                Windows2000,
                Windows2003,
                Windows2008,
            ]),
            part: OsPart::Kernel,
            summary: "The TCP implementation does not properly handle crafted sequences of \
                      segments, which allows remote attackers to cause a denial of service \
                      (connection queue exhaustion) in the kernel network stack.",
        },
        NamedVulnerability {
            id: CveId::new(2008, 1447),
            year: 2008,
            oses: OsSet::from_iter([FreeBsd, NetBsd, Solaris, Debian, Ubuntu, RedHat]),
            part: OsPart::SystemSoftware,
            summary: "The DNS protocol resolver daemon uses insufficiently random transaction \
                      IDs and source ports, which allows remote attackers to poison the cache \
                      of the name service via a birthday attack.",
        },
        NamedVulnerability {
            id: CveId::new(2007, 5365),
            year: 2007,
            oses: OsSet::from_iter([OpenBsd, NetBsd, FreeBsd, Solaris, Debian, RedHat]),
            part: OsPart::SystemSoftware,
            summary: "Stack-based buffer overflow in the DHCP daemon allows remote attackers \
                      to execute arbitrary code via a crafted request containing many options.",
        },
    ]
}

/// Per-OS year weights approximating the Figure 2 curves: `(year, weight)`
/// pairs; years not listed have weight zero. The weights are relative, not
/// absolute counts — the generator samples publication years from them.
pub fn figure2_year_weights(os: OsDistribution) -> &'static [(u16, u32)] {
    match os {
        // Solaris reports span the whole period with peaks around 1995,
        // 2004-2007; OpenSolaris only exists from 2008.
        Solaris => &[
            (1994, 6),
            (1995, 12),
            (1996, 8),
            (1997, 6),
            (1998, 8),
            (1999, 10),
            (2000, 8),
            (2001, 12),
            (2002, 16),
            (2003, 18),
            (2004, 28),
            (2005, 30),
            (2006, 34),
            (2007, 40),
            (2008, 30),
            (2009, 26),
            (2010, 20),
        ],
        OpenSolaris => &[(2008, 10), (2009, 14), (2010, 7)],
        // BSD family: busy 1999-2006, quieter recently.
        OpenBsd => &[
            (1996, 2),
            (1997, 4),
            (1998, 6),
            (1999, 10),
            (2000, 12),
            (2001, 14),
            (2002, 22),
            (2003, 14),
            (2004, 16),
            (2005, 12),
            (2006, 10),
            (2007, 8),
            (2008, 6),
            (2009, 4),
            (2010, 2),
        ],
        NetBsd => &[
            (1997, 2),
            (1998, 4),
            (1999, 6),
            (2000, 10),
            (2001, 10),
            (2002, 12),
            (2003, 12),
            (2004, 14),
            (2005, 16),
            (2006, 18),
            (2007, 10),
            (2008, 6),
            (2009, 4),
            (2010, 2),
        ],
        FreeBsd => &[
            (1996, 4),
            (1997, 8),
            (1998, 10),
            (1999, 16),
            (2000, 22),
            (2001, 24),
            (2002, 30),
            (2003, 24),
            (2004, 28),
            (2005, 26),
            (2006, 24),
            (2007, 16),
            (2008, 14),
            (2009, 10),
            (2010, 6),
        ],
        // Windows server family: 2000 and 2003 peak mid-decade, 2008 recent.
        Windows2000 => &[
            (1999, 8),
            (2000, 30),
            (2001, 36),
            (2002, 44),
            (2003, 40),
            (2004, 44),
            (2005, 48),
            (2006, 50),
            (2007, 40),
            (2008, 40),
            (2009, 36),
            (2010, 28),
        ],
        Windows2003 => &[
            (2003, 16),
            (2004, 28),
            (2005, 36),
            (2006, 44),
            (2007, 38),
            (2008, 44),
            (2009, 42),
            (2010, 34),
        ],
        Windows2008 => &[(2008, 24), (2009, 48), (2010, 46)],
        // Linux family: Red Hat spans the period, Debian peaks early-2000s,
        // Ubuntu starts in 2005.
        Debian => &[
            (1998, 4),
            (1999, 10),
            (2000, 14),
            (2001, 18),
            (2002, 22),
            (2003, 24),
            (2004, 26),
            (2005, 28),
            (2006, 20),
            (2007, 14),
            (2008, 10),
            (2009, 6),
            (2010, 4),
        ],
        Ubuntu => &[
            (2005, 8),
            (2006, 18),
            (2007, 20),
            (2008, 16),
            (2009, 14),
            (2010, 10),
        ],
        RedHat => &[
            (1997, 6),
            (1998, 10),
            (1999, 18),
            (2000, 28),
            (2001, 30),
            (2002, 36),
            (2003, 30),
            (2004, 34),
            (2005, 32),
            (2006, 36),
            (2007, 30),
            (2008, 28),
            (2009, 26),
            (2010, 22),
        ],
    }
}

/// A replica-set configuration of Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure3Set {
    /// The label used in the figure.
    pub label: &'static str,
    /// The replica OSes (four replicas; the homogeneous Debian configuration
    /// uses the same OS four times, represented here by the singleton set).
    pub oses: OsSet,
    /// Whether the configuration is homogeneous (four identical replicas).
    pub homogeneous: bool,
}

/// The five configurations of Figure 3.
pub fn figure3_sets() -> Vec<Figure3Set> {
    vec![
        Figure3Set {
            label: "Debian",
            oses: OsSet::singleton(Debian),
            homogeneous: true,
        },
        Figure3Set {
            label: "Set1",
            oses: OsSet::from_iter([Windows2003, Solaris, Debian, OpenBsd]),
            homogeneous: false,
        },
        Figure3Set {
            label: "Set2",
            oses: OsSet::from_iter([Windows2003, Solaris, Debian, NetBsd]),
            homogeneous: false,
        },
        Figure3Set {
            label: "Set3",
            oses: OsSet::from_iter([Windows2003, Solaris, RedHat, NetBsd]),
            homogeneous: false,
        },
        Figure3Set {
            label: "Set4",
            oses: OsSet::from_iter([OpenBsd, NetBsd, Debian, RedHat]),
            homogeneous: false,
        },
    ]
}

/// Looks up the Table III row of a pair (in either order).
pub fn table3_row(a: OsDistribution, b: OsDistribution) -> Option<&'static Table3Row> {
    TABLE3
        .iter()
        .find(|row| (row.a == a && row.b == b) || (row.a == b && row.b == a))
}

/// Looks up the Table IV row of a pair (in either order); absent pairs have
/// an all-zero breakdown.
pub fn table4_row(a: OsDistribution, b: OsDistribution) -> Option<&'static Table4Row> {
    TABLE4
        .iter()
        .find(|row| (row.a == a && row.b == b) || (row.a == b && row.b == a))
}

/// Looks up the Table V cell of a pair (in either order).
pub fn table5_cell(a: OsDistribution, b: OsDistribution) -> Option<&'static Table5Cell> {
    TABLE5
        .iter()
        .find(|cell| (cell.a == a && cell.b == b) || (cell.a == b && cell.b == a))
}

/// The Table I row of an OS.
pub fn table1_row(os: OsDistribution) -> &'static Table1Row {
    TABLE1
        .iter()
        .find(|row| row.os == os)
        .expect("TABLE1 covers every distribution")
}

/// The Table II row of an OS.
pub fn table2_row(os: OsDistribution) -> &'static Table2Row {
    TABLE2
        .iter()
        .find(|row| row.os == os)
        .expect("TABLE2 covers every distribution")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_every_os_once() {
        for os in OsDistribution::ALL {
            assert_eq!(TABLE1.iter().filter(|r| r.os == os).count(), 1);
            assert_eq!(TABLE2.iter().filter(|r| r.os == os).count(), 1);
        }
    }

    #[test]
    fn table2_totals_equal_table1_valid_counts() {
        for os in OsDistribution::ALL {
            assert_eq!(
                table2_row(os).total(),
                table1_row(os).valid,
                "class totals must match the valid count for {os}"
            );
        }
    }

    #[test]
    fn table3_has_all_55_pairs_with_nested_filters() {
        assert_eq!(TABLE3.len(), 55);
        for row in &TABLE3 {
            assert_ne!(row.a, row.b);
            assert!(row.no_app <= row.all, "{}-{}", row.a, row.b);
            assert!(row.no_app_no_local <= row.no_app, "{}-{}", row.a, row.b);
        }
        // Every unordered pair appears exactly once.
        for (i, a) in OsDistribution::ALL.iter().enumerate() {
            for b in OsDistribution::ALL.iter().skip(i + 1) {
                assert!(table3_row(*a, *b).is_some(), "missing pair {a}-{b}");
            }
        }
    }

    #[test]
    fn table3_diagonal_matches_os_totals_ordering() {
        for os in OsDistribution::ALL {
            let (all, no_app, remote) = os_totals(os);
            assert!(no_app <= all);
            assert!(remote <= no_app);
            assert_eq!(all, table1_row(os).valid);
        }
    }

    #[test]
    fn table4_totals_match_table3_third_filter() {
        for row in &TABLE4 {
            let t3 = table3_row(row.a, row.b).unwrap();
            assert_eq!(
                row.total(),
                t3.no_app_no_local,
                "Table IV total must equal the Isolated Thin Server count for {}-{}",
                row.a,
                row.b
            );
        }
        // Pairs absent from Table IV have a zero Isolated Thin Server count.
        for row in &TABLE3 {
            if table4_row(row.a, row.b).is_none() {
                assert_eq!(row.no_app_no_local, 0, "{}-{}", row.a, row.b);
            }
        }
    }

    #[test]
    fn table5_sums_match_table3_third_filter() {
        assert_eq!(TABLE5.len(), 28);
        for cell in &TABLE5 {
            let t3 = table3_row(cell.a, cell.b).unwrap();
            assert_eq!(
                cell.history + cell.observed,
                t3.no_app_no_local,
                "history + observed must equal the Isolated Thin Server count for {}-{}",
                cell.a,
                cell.b
            );
        }
        // All 28 pairs over the 8 Table V OSes are present.
        for (i, a) in TABLE5_OSES.iter().enumerate() {
            for b in TABLE5_OSES.iter().skip(i + 1) {
                assert!(table5_cell(*a, *b).is_some(), "missing pair {a}-{b}");
            }
        }
    }

    #[test]
    fn named_vulnerabilities_have_the_published_sizes() {
        let named = named_multi_os_vulnerabilities();
        assert_eq!(named.len(), 3);
        let nine: Vec<_> = named.iter().filter(|v| v.oses.len() == 9).collect();
        let six: Vec<_> = named.iter().filter(|v| v.oses.len() == 6).collect();
        assert_eq!(nine.len(), 1);
        assert_eq!(six.len(), 2);
        assert_eq!(nine[0].id, CveId::new(2008, 4609));
    }

    #[test]
    fn figure2_weights_exist_for_every_os_and_respect_first_release() {
        for os in OsDistribution::ALL {
            let weights = figure2_year_weights(os);
            assert!(!weights.is_empty(), "no weights for {os}");
            let total: u32 = weights.iter().map(|(_, w)| w).sum();
            assert!(total > 0);
            // No weight should predate the first release by more than a year
            // (the paper's Windows 2000 pre-1999 artefact is the exception it
            // discusses; the generator does not reproduce database errors).
            for (year, _) in weights {
                assert!(
                    *year + 1 >= os.first_release_year(),
                    "{os} has weight in {year} before first release"
                );
            }
        }
    }

    #[test]
    fn figure3_sets_match_the_paper() {
        let sets = figure3_sets();
        assert_eq!(sets.len(), 5);
        assert!(sets[0].homogeneous);
        assert_eq!(sets[1].oses.len(), 4);
        assert!(sets[1].oses.contains(Windows2003));
        assert!(sets[4].oses.contains(RedHat));
    }

    #[test]
    fn os_period_totals_sum_to_its_total() {
        for os in OsDistribution::ALL {
            let (history, observed) = os_period_totals(os);
            let (_, _, its) = os_totals(os);
            assert_eq!(history + observed, its, "{os}");
        }
        assert_eq!(os_period_totals(Debian), (16, 9));
    }
}
