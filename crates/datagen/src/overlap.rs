//! The constructive overlap algorithm: from the paper's aggregate tables to
//! a list of per-vulnerability specifications.
//!
//! The construction follows the priority order documented in DESIGN.md §5:
//!
//! 1. the three *named* multi-OS vulnerabilities of Section IV-B;
//! 2. family-level vulnerabilities affecting three or four OSes, consuming
//!    part of the intra-family pair budgets (they model the code reuse
//!    inside a family the paper describes, and they are *required* for the
//!    Windows family, whose pairwise counts sum to more than the per-OS
//!    totals — i.e. many real vulnerabilities affect all three Windows
//!    versions at once);
//! 3. vulnerabilities affecting *exactly one pair*, until every pair's
//!    Table III counts are met under all three filters;
//! 4. single-OS vulnerabilities, until every OS reaches its Table I valid
//!    total, with classes chosen to approach Table II and access vectors to
//!    approach the per-OS Isolated Thin Server totals.
//!
//! Not every published marginal can be satisfied at once: the named
//! nine-OS/six-OS vulnerabilities necessarily touch a few pairs whose
//! published counts are zero (the paper's own tables have this tension).
//! The construction resolves it by letting those vulnerabilities spill over
//! ("steal") from neighbouring sub-budgets, which keeps the deviation to at
//! most one or two vulnerabilities on a handful of pairs; EXPERIMENTS.md
//! records the achieved numbers.
//!
//! The output is a list of [`VulnSpec`]s; the [`builder`](crate::builder)
//! turns them into full entries (identifiers, dates, summaries, CVSS).

use std::collections::HashMap;

use nvd_model::{AccessVector, CveId, OsDistribution, OsPart, OsSet};

use crate::calibration::{
    self, named_multi_os_vulnerabilities, os_totals, table2_row, table4_row, table5_cell, TABLE3,
};

/// Which half of the paper's history/observed split a vulnerability must be
/// published in (Table V). `Any` means the publication year is
/// unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Era {
    /// 1994–2005 (the paper's *history* period).
    History,
    /// 2006–2010 (the paper's *observed* period).
    Observed,
    /// No constraint.
    Any,
}

/// The specification of one synthetic vulnerability, before identifiers,
/// dates and text are assigned.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnSpec {
    /// The affected OS distributions.
    pub oses: OsSet,
    /// The component class (ground truth for the classifier evaluation).
    pub part: OsPart,
    /// The access vector (drives the *No Local* filter).
    pub access: AccessVector,
    /// The era constraint for the publication year.
    pub era: Era,
    /// A fixed CVE identifier (used by the named multi-OS vulnerabilities).
    pub fixed_id: Option<CveId>,
    /// A fixed publication year.
    pub fixed_year: Option<u16>,
    /// A fixed summary text.
    pub fixed_summary: Option<&'static str>,
}

impl VulnSpec {
    fn new(oses: OsSet, part: OsPart, access: AccessVector, era: Era) -> Self {
        VulnSpec {
            oses,
            part,
            access,
            era,
            fixed_id: None,
            fixed_year: None,
            fixed_summary: None,
        }
    }

    /// Whether the spec survives the *No Applications* filter.
    pub fn is_base_system(&self) -> bool {
        self.part.is_base_system()
    }

    /// Whether the spec survives the *Isolated Thin Server* filter
    /// (base system and remotely exploitable).
    pub fn is_isolated_thin(&self) -> bool {
        self.is_base_system() && self.access.is_remote()
    }
}

/// Remaining generation budget for one OS pair, tracked across the three
/// nested filters plus the per-class and per-era sub-budgets of the
/// Isolated Thin Server level.
#[derive(Debug, Clone, Copy, Default)]
struct PairBudget {
    /// Application-level shared vulnerabilities still to generate
    /// (`all - no_app`).
    app: u32,
    /// Base-system, locally exploitable shared vulnerabilities
    /// (`no_app - no_app_no_local`).
    local_base: u32,
    /// Base-system, remotely exploitable shared vulnerabilities
    /// (`no_app_no_local`), split by class below.
    remote_driver: u32,
    remote_kernel: u32,
    remote_syssoft: u32,
    /// Era split of the remote budget (only for the Table V pairs; for other
    /// pairs both are zero and the era is unconstrained).
    remote_history: u32,
    remote_observed: u32,
    /// Whether the pair appears in Table V (era split applies).
    has_era_split: bool,
}

impl PairBudget {
    fn remote_total(&self) -> u32 {
        self.remote_driver + self.remote_kernel + self.remote_syssoft
    }
}

/// Remaining per-OS budgets (valid totals, class counts, remote counts).
#[derive(Debug, Clone, Copy)]
struct OsBudget {
    total: u32,
    driver: u32,
    kernel: u32,
    syssoft: u32,
    app: u32,
    remote_base: u32,
    history: u32,
}

/// The full output of the constructive algorithm.
#[derive(Debug, Clone)]
pub struct OverlapPlan {
    /// Every vulnerability spec, multi-OS first, then pairs, then singles.
    pub specs: Vec<VulnSpec>,
}

/// Builds the complete list of vulnerability specs from the calibration
/// tables. Deterministic: no randomness is involved at this stage.
pub fn build_specs() -> OverlapPlan {
    let mut pair_budgets: HashMap<(usize, usize), PairBudget> = HashMap::new();
    for row in &TABLE3 {
        let key = pair_key(row.a, row.b);
        let t4 = table4_row(row.a, row.b);
        let t5 = table5_cell(row.a, row.b);
        let (driver, kernel, syssoft) = match t4 {
            Some(t4) => (t4.driver, t4.kernel, t4.system_software),
            // Pairs absent from Table IV have a zero Isolated Thin Server
            // count, so the split is all zeros.
            None => (0, 0, 0),
        };
        let (history, observed, has_era_split) = match t5 {
            Some(cell) => (cell.history, cell.observed, true),
            None => (0, 0, false),
        };
        pair_budgets.insert(
            key,
            PairBudget {
                app: row.all - row.no_app,
                local_base: row.no_app - row.no_app_no_local,
                remote_driver: driver,
                remote_kernel: kernel,
                remote_syssoft: syssoft,
                remote_history: history,
                remote_observed: observed,
                has_era_split,
            },
        );
    }

    let mut os_budgets: HashMap<OsDistribution, OsBudget> = OsDistribution::ALL
        .iter()
        .map(|&os| {
            let t2 = table2_row(os);
            let (_, _, remote) = os_totals(os);
            let (history, _) = calibration::os_period_totals(os);
            (
                os,
                OsBudget {
                    total: t2.total(),
                    driver: t2.driver,
                    kernel: t2.kernel,
                    syssoft: t2.system_software,
                    app: t2.application,
                    remote_base: remote,
                    history,
                },
            )
        })
        .collect();

    let mut specs = Vec::new();

    // ------------------------------------------------------------------
    // Step 1: named multi-OS vulnerabilities (Section IV-B).
    // ------------------------------------------------------------------
    for named in named_multi_os_vulnerabilities() {
        let era = if named.year <= 2005 {
            Era::History
        } else {
            Era::Observed
        };
        let mut spec = VulnSpec::new(named.oses, named.part, AccessVector::Network, era);
        spec.fixed_id = Some(named.id);
        spec.fixed_year = Some(named.year);
        spec.fixed_summary = Some(named.summary);
        consume(&mut pair_budgets, &mut os_budgets, &spec);
        specs.push(spec);
    }

    // ------------------------------------------------------------------
    // Step 2: family-level multi-OS vulnerabilities. They consume the
    // larger Application / local-base budgets so the carefully calibrated
    // Isolated Thin Server tables (IV and V) stay exact.
    // ------------------------------------------------------------------
    for (group, part, access, divisor) in family_group_candidates() {
        let level_budget = group_pairs(group)
            .iter()
            .map(|&(a, b)| {
                let budget = pair_budgets[&pair_key(a, b)];
                if part == OsPart::Application {
                    budget.app
                } else {
                    budget.local_base
                }
            })
            .min()
            .unwrap_or(0);
        let count = level_budget / divisor;
        for _ in 0..count {
            let spec = VulnSpec::new(group, part, access, Era::Any);
            consume(&mut pair_budgets, &mut os_budgets, &spec);
            specs.push(spec);
        }
    }

    // ------------------------------------------------------------------
    // Step 3: exact-pair vulnerabilities to exhaust the Table III budgets.
    // ------------------------------------------------------------------
    let mut pair_keys: Vec<(usize, usize)> = pair_budgets.keys().copied().collect();
    pair_keys.sort_unstable();
    for key in pair_keys {
        let (a, b) = key_pair(key);
        let budget = pair_budgets[&key];
        let pair_set = OsSet::pair(a, b);

        // Remote base-system vulnerabilities, split by class (Table IV) and
        // era (Table V).
        let mut era_queue = Vec::new();
        if budget.has_era_split {
            for _ in 0..budget.remote_history {
                era_queue.push(Era::History);
            }
            for _ in 0..budget.remote_observed {
                era_queue.push(Era::Observed);
            }
        } else {
            era_queue = vec![Era::Any; budget.remote_total() as usize];
        }
        // Pad in case the class split is larger than the era split.
        while era_queue.len() < budget.remote_total() as usize {
            era_queue.push(Era::Any);
        }
        let mut era_iter = era_queue.into_iter();
        for (class, count) in [
            (OsPart::Driver, budget.remote_driver),
            (OsPart::Kernel, budget.remote_kernel),
            (OsPart::SystemSoftware, budget.remote_syssoft),
        ] {
            for _ in 0..count {
                let era = era_iter.next().unwrap_or(Era::Any);
                let spec = VulnSpec::new(pair_set, class, AccessVector::Network, era);
                consume(&mut pair_budgets, &mut os_budgets, &spec);
                specs.push(spec);
            }
        }

        // Locally exploitable base-system vulnerabilities: alternate between
        // kernel and system software (the paper does not publish this split).
        for i in 0..budget.local_base {
            let class = if i % 2 == 0 {
                OsPart::Kernel
            } else {
                OsPart::SystemSoftware
            };
            let spec = VulnSpec::new(pair_set, class, AccessVector::Local, Era::Any);
            consume(&mut pair_budgets, &mut os_budgets, &spec);
            specs.push(spec);
        }

        // Shared application vulnerabilities: alternate remote/local (only
        // the *No Applications* filter removes them, so the access vector
        // does not influence any published number).
        for i in 0..budget.app {
            let access = if i % 2 == 0 {
                AccessVector::Network
            } else {
                AccessVector::Local
            };
            let spec = VulnSpec::new(pair_set, OsPart::Application, access, Era::Any);
            consume(&mut pair_budgets, &mut os_budgets, &spec);
            specs.push(spec);
        }
    }

    // ------------------------------------------------------------------
    // Step 4: single-OS vulnerabilities to reach the per-OS totals.
    // ------------------------------------------------------------------
    for os in OsDistribution::ALL {
        let budget = os_budgets[&os];
        let single = OsSet::singleton(os);
        // The per-class budgets can exceed the remaining total when the
        // shared vulnerabilities above saturated a different class; the
        // total is the binding constraint (it keeps Table I exact), so the
        // classes are filled in order until the total is used up.
        let mut remaining = budget.total;
        let mut remote_base_left = budget.remote_base;
        let mut history_left = budget.history;
        let mut base_single =
            |class: OsPart, count: u32, specs: &mut Vec<VulnSpec>, remaining: &mut u32| {
                let take = count.min(*remaining);
                *remaining -= take;
                for _ in 0..take {
                    let access = if remote_base_left > 0 {
                        remote_base_left -= 1;
                        AccessVector::Network
                    } else {
                        AccessVector::Local
                    };
                    let era = if access.is_remote() {
                        if history_left > 0 {
                            history_left -= 1;
                            Era::History
                        } else {
                            Era::Observed
                        }
                    } else {
                        Era::Any
                    };
                    specs.push(VulnSpec::new(single, class, access, era));
                }
            };
        base_single(OsPart::Driver, budget.driver, &mut specs, &mut remaining);
        base_single(OsPart::Kernel, budget.kernel, &mut specs, &mut remaining);
        base_single(
            OsPart::SystemSoftware,
            budget.syssoft,
            &mut specs,
            &mut remaining,
        );
        let app_take = budget.app.min(remaining);
        remaining -= app_take;
        for i in 0..app_take {
            let access = if i % 3 == 0 {
                AccessVector::Local
            } else {
                AccessVector::Network
            };
            specs.push(VulnSpec::new(single, OsPart::Application, access, Era::Any));
        }
        // If every class budget saturated before the total was reached,
        // fill the remainder with kernel vulnerabilities (the paper's most
        // common base-system class).
        for _ in 0..remaining {
            specs.push(VulnSpec::new(
                single,
                OsPart::Kernel,
                AccessVector::Local,
                Era::Any,
            ));
        }
    }

    OverlapPlan { specs }
}

/// Decrements the pair and OS budgets consumed by a spec. When the exact
/// sub-budget of a pair is exhausted the consumption spills over to the
/// nearest alternative (other remote classes, then local, then application)
/// so that the pair's *total* budget stays as close to the target as the
/// published marginals allow.
fn consume(
    pair_budgets: &mut HashMap<(usize, usize), PairBudget>,
    os_budgets: &mut HashMap<OsDistribution, OsBudget>,
    spec: &VulnSpec,
) {
    for (a, b) in set_pairs(spec.oses) {
        let Some(budget) = pair_budgets.get_mut(&pair_key(a, b)) else {
            continue;
        };
        if spec.part == OsPart::Application {
            budget.app = budget.app.saturating_sub(1);
        } else if spec.access.is_remote() {
            // Preferred class first, then the other remote classes, then the
            // local and application levels.
            let slots: [&mut u32; 3] = match spec.part {
                OsPart::Driver => [
                    &mut budget.remote_driver,
                    &mut budget.remote_kernel,
                    &mut budget.remote_syssoft,
                ],
                OsPart::Kernel => [
                    &mut budget.remote_kernel,
                    &mut budget.remote_syssoft,
                    &mut budget.remote_driver,
                ],
                OsPart::SystemSoftware | OsPart::Application => [
                    &mut budget.remote_syssoft,
                    &mut budget.remote_kernel,
                    &mut budget.remote_driver,
                ],
            };
            let mut consumed = false;
            for slot in slots {
                if *slot > 0 {
                    *slot -= 1;
                    consumed = true;
                    break;
                }
            }
            if !consumed {
                if budget.local_base > 0 {
                    budget.local_base -= 1;
                } else {
                    budget.app = budget.app.saturating_sub(1);
                }
            } else {
                match spec.era {
                    Era::History => budget.remote_history = budget.remote_history.saturating_sub(1),
                    Era::Observed => {
                        budget.remote_observed = budget.remote_observed.saturating_sub(1)
                    }
                    Era::Any => {
                        if budget.remote_observed > 0 {
                            budget.remote_observed -= 1;
                        } else {
                            budget.remote_history = budget.remote_history.saturating_sub(1);
                        }
                    }
                }
            }
        } else if budget.local_base > 0 {
            budget.local_base -= 1;
        } else {
            budget.app = budget.app.saturating_sub(1);
        }
    }
    for os in spec.oses {
        let Some(budget) = os_budgets.get_mut(&os) else {
            continue;
        };
        budget.total = budget.total.saturating_sub(1);
        match spec.part {
            OsPart::Driver => budget.driver = budget.driver.saturating_sub(1),
            OsPart::Kernel => budget.kernel = budget.kernel.saturating_sub(1),
            OsPart::SystemSoftware => budget.syssoft = budget.syssoft.saturating_sub(1),
            OsPart::Application => budget.app = budget.app.saturating_sub(1),
        }
        if spec.is_isolated_thin() {
            budget.remote_base = budget.remote_base.saturating_sub(1);
            if spec.era == Era::History {
                budget.history = budget.history.saturating_sub(1);
            }
        }
    }
}

/// The candidate family-level groups of Step 2, each with the divisor
/// applied to the tightest pair budget (1 = take everything the budget
/// allows, 2 = take half).
///
/// The Windows groups use the full budget: the paper's pairwise counts for
/// the Windows family sum to more than the per-OS totals, which is only
/// possible when many vulnerabilities affect all three versions, so the
/// generator must create a large number of three-way Windows
/// vulnerabilities to stay consistent with Table I.
fn family_group_candidates() -> Vec<(OsSet, OsPart, AccessVector, u32)> {
    use OsDistribution::*;
    let bsd = OsSet::from_iter([OpenBsd, NetBsd, FreeBsd]);
    let linux = OsSet::from_iter([Debian, Ubuntu, RedHat]);
    let windows = OsSet::from_iter([Windows2000, Windows2003, Windows2008]);
    let bsd_solaris = OsSet::from_iter([OpenBsd, NetBsd, FreeBsd, Solaris]);
    vec![
        (windows, OsPart::Application, AccessVector::Network, 1),
        (windows, OsPart::Kernel, AccessVector::Local, 1),
        (linux, OsPart::Application, AccessVector::Network, 2),
        (bsd, OsPart::Application, AccessVector::Network, 2),
        (bsd, OsPart::Kernel, AccessVector::Local, 2),
        (linux, OsPart::SystemSoftware, AccessVector::Local, 2),
        (bsd_solaris, OsPart::Application, AccessVector::Network, 2),
    ]
}

fn pair_key(a: OsDistribution, b: OsDistribution) -> (usize, usize) {
    let (x, y) = (a.index(), b.index());
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

fn key_pair(key: (usize, usize)) -> (OsDistribution, OsDistribution) {
    (
        OsDistribution::from_index(key.0).expect("valid index"),
        OsDistribution::from_index(key.1).expect("valid index"),
    )
}

/// Every unordered pair of members of a set.
fn set_pairs(set: OsSet) -> Vec<(OsDistribution, OsDistribution)> {
    let members: Vec<OsDistribution> = set.iter().collect();
    let mut pairs = Vec::new();
    for (i, a) in members.iter().enumerate() {
        for b in members.iter().skip(i + 1) {
            pairs.push((*a, *b));
        }
    }
    pairs
}

/// The pairs of a specific group (helper for Step 2 budget inspection).
fn group_pairs(group: OsSet) -> Vec<(OsDistribution, OsDistribution)> {
    set_pairs(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{table1_row, table3_row};

    /// The named multi-OS vulnerabilities unavoidably touch a few pairs
    /// whose published counts are zero, so measured counts may exceed the
    /// paper's by a small margin on those pairs.
    const NAMED_SLACK: u32 = 2;

    fn assert_close(measured: u32, expected: u32, context: &str) {
        assert!(
            measured >= expected && measured <= expected + NAMED_SLACK,
            "{context}: measured {measured}, paper {expected}"
        );
    }

    /// Like [`assert_close`] but symmetric: the named multi-OS
    /// vulnerabilities can shift a shared vulnerability between classes or
    /// eras on the pairs they touch, so sub-splits may deviate in either
    /// direction by the same small margin.
    fn assert_close_symmetric(measured: u32, expected: u32, context: &str) {
        // All three named vulnerabilities can land on the same pair (e.g.
        // NetBSD-Debian), so the symmetric slack is one unit wider.
        assert!(
            measured.abs_diff(expected) <= NAMED_SLACK + 1,
            "{context}: measured {measured}, paper {expected}"
        );
    }

    fn shared_count(specs: &[VulnSpec], a: OsDistribution, b: OsDistribution) -> (u32, u32, u32) {
        let mut all = 0;
        let mut no_app = 0;
        let mut remote = 0;
        for spec in specs {
            if spec.oses.contains(a) && spec.oses.contains(b) {
                all += 1;
                if spec.is_base_system() {
                    no_app += 1;
                    if spec.access.is_remote() {
                        remote += 1;
                    }
                }
            }
        }
        (all, no_app, remote)
    }

    #[test]
    fn specs_reproduce_table3_for_every_pair() {
        let plan = build_specs();
        for row in &TABLE3 {
            let (all, no_app, remote) = shared_count(&plan.specs, row.a, row.b);
            let expected = table3_row(row.a, row.b).unwrap();
            let context = format!("pair {}-{}", row.a, row.b);
            assert_close(all, expected.all, &format!("{context} (all)"));
            assert_close(no_app, expected.no_app, &format!("{context} (no app)"));
            assert_close(
                remote,
                expected.no_app_no_local,
                &format!("{context} (isolated thin)"),
            );
        }
    }

    #[test]
    fn table3_is_exact_for_most_pairs() {
        // The spill-over only affects pairs touched by the named multi-OS
        // vulnerabilities; at least 40 of the 55 pairs must be exact in all
        // three filters.
        let plan = build_specs();
        let exact = TABLE3
            .iter()
            .filter(|row| {
                let (all, no_app, remote) = shared_count(&plan.specs, row.a, row.b);
                (all, no_app, remote) == (row.all, row.no_app, row.no_app_no_local)
            })
            .count();
        assert!(exact >= 40, "only {exact} of 55 pairs are exact");
    }

    #[test]
    fn specs_reproduce_per_os_totals() {
        let plan = build_specs();
        for os in OsDistribution::ALL {
            let total = plan
                .specs
                .iter()
                .filter(|spec| spec.oses.contains(os))
                .count() as u32;
            assert_eq!(total, table1_row(os).valid, "total for {os}");
        }
    }

    #[test]
    fn specs_reproduce_isolated_thin_class_split() {
        let plan = build_specs();
        for row in &calibration::TABLE4 {
            let mut counts = [0u32; 3];
            for spec in &plan.specs {
                if spec.oses.contains(row.a) && spec.oses.contains(row.b) && spec.is_isolated_thin()
                {
                    match spec.part {
                        OsPart::Driver => counts[0] += 1,
                        OsPart::Kernel => counts[1] += 1,
                        OsPart::SystemSoftware => counts[2] += 1,
                        OsPart::Application => {}
                    }
                }
            }
            let context = format!("pair {}-{}", row.a, row.b);
            assert_close_symmetric(counts[0], row.driver, &format!("{context} driver"));
            assert_close_symmetric(counts[1], row.kernel, &format!("{context} kernel"));
            assert_close_symmetric(
                counts[2],
                row.system_software,
                &format!("{context} syssoft"),
            );
        }
    }

    #[test]
    fn specs_reproduce_table5_era_split() {
        let plan = build_specs();
        for cell in &calibration::TABLE5 {
            let mut history = 0;
            let mut observed = 0;
            for spec in &plan.specs {
                if spec.oses.contains(cell.a)
                    && spec.oses.contains(cell.b)
                    && spec.is_isolated_thin()
                {
                    match spec.era {
                        Era::History => history += 1,
                        Era::Observed => observed += 1,
                        Era::Any => {}
                    }
                }
            }
            let context = format!("pair {}-{}", cell.a, cell.b);
            assert_close_symmetric(history, cell.history, &format!("{context} history"));
            assert_close_symmetric(observed, cell.observed, &format!("{context} observed"));
        }
    }

    #[test]
    fn named_vulnerabilities_are_present_with_their_ids() {
        let plan = build_specs();
        let named: Vec<&VulnSpec> = plan.specs.iter().filter(|s| s.fixed_id.is_some()).collect();
        assert_eq!(named.len(), 3);
        assert!(named.iter().any(|s| s.oses.len() == 9));
        assert_eq!(named.iter().filter(|s| s.oses.len() == 6).count(), 2);
    }

    #[test]
    fn multi_os_structure_exists_beyond_the_named_cves() {
        let plan = build_specs();
        let three_or_more = plan.specs.iter().filter(|s| s.oses.len() >= 3).count();
        assert!(
            three_or_more > 20,
            "expected family-level multi-OS vulnerabilities, found {three_or_more}"
        );
    }

    #[test]
    fn class_totals_per_os_are_close_to_table2() {
        let plan = build_specs();
        for os in OsDistribution::ALL {
            let expected = table2_row(os);
            for part in OsPart::ALL {
                let got = plan
                    .specs
                    .iter()
                    .filter(|s| s.oses.contains(os) && s.part == part)
                    .count() as i64;
                let want = i64::from(expected.count(part));
                // The joint constraints cannot all be met exactly; allow a
                // small absolute slack plus 20% relative slack.
                let slack = 6 + want * 20 / 100;
                assert!(
                    (got - want).abs() <= slack,
                    "{os} {part}: generated {got}, paper {want} (slack {slack})"
                );
            }
        }
    }

    #[test]
    fn per_os_isolated_thin_totals_are_close() {
        let plan = build_specs();
        for os in OsDistribution::ALL {
            let (_, _, want) = os_totals(os);
            let got = plan
                .specs
                .iter()
                .filter(|s| s.oses.contains(os) && s.is_isolated_thin())
                .count() as i64;
            let slack = 6 + i64::from(want) * 20 / 100;
            assert!(
                (got - i64::from(want)).abs() <= slack,
                "{os}: generated {got} isolated-thin, paper {want}"
            );
        }
    }
}
