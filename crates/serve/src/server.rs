//! The TCP front end: a blocking accept loop feeding a fixed-size worker
//! thread pool, keep-alive connection handling, and graceful shutdown.
//!
//! Shutdown can be triggered from inside ([`crate::Router`]'s
//! `POST /v1/shutdown`) or outside ([`ServerHandle::shutdown`]); both raise
//! the same flag. The accept loop is woken with a loop-back connection,
//! stops accepting, closes the work queue and joins every worker — workers
//! finish the connection they are serving first, so in-flight responses
//! are never cut.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use osdiv_core::{obs, FlightRecorder, JsonLine};
use parking_lot::Mutex;

use crate::http::{Body, BodyError, RequestParser, Response, StreamBody, MAX_BODY_BYTES};
use crate::metrics::{RouteClass, ServeMetrics, Stage};
use crate::router::{micros_since, Router};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads (each serves one connection at a time).
    pub threads: usize,
    /// Idle-read timeout of a keep-alive connection.
    pub read_timeout: Duration,
    /// Requests served on one connection before it is closed.
    pub max_keep_alive_requests: usize,
    /// Wall-clock budget for receiving one request head: a client that
    /// trickles bytes (slow loris) is answered 408 and closed once the
    /// budget is spent, no matter how regularly it keeps the socket warm.
    /// Also the socket write timeout, so a peer that stops reading its
    /// response cannot pin a worker either.
    pub io_timeout: Duration,
    /// Admission-control high-water mark: a connection dequeued while
    /// this many more still wait is shed with a pre-parse `503` +
    /// `Retry-After`. Ingestion requests shed earlier, at half this
    /// depth, so cached reads degrade last.
    pub shed_queue_depth: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            threads: default_threads(),
            read_timeout: Duration::from_secs(5),
            max_keep_alive_requests: 1000,
            io_timeout: Duration::from_secs(10),
            shed_queue_depth: default_threads() * 16,
        }
    }
}

/// The default worker count: the machine's parallelism, clamped to 2–8.
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    router: Arc<Router>,
    options: ServerOptions,
}

impl Server {
    /// Binds an address (`127.0.0.1:0` asks the OS for an ephemeral port —
    /// read the result back with [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: Arc<Router>,
        options: ServerOptions,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            router,
            options,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has a local address")
    }

    /// Runs the accept loop on the calling thread until the shutdown flag
    /// is raised, then drains the worker pool and returns.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr();
        let shutdown = self.router.shutdown_flag();
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));

        self.router
            .metrics()
            .set_workers_total(self.options.threads.max(1));
        let workers: Vec<thread::JoinHandle<()>> = (0..self.options.threads.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let router = Arc::clone(&self.router);
                let options = self.options.clone();
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || loop {
                    let stream = { receiver.lock().recv() };
                    match stream {
                        Err(_) => return, // queue closed: shutdown
                        Ok(mut stream) => {
                            let metrics = router.metrics();
                            metrics.dispatch_dequeued();
                            metrics.worker_busy();
                            // Admission control, before a single byte is
                            // parsed: when the backlog behind this
                            // connection is still past the high-water
                            // mark, answering cheaply and moving on
                            // drains the queue far faster than serving
                            // would.
                            if metrics.dispatch_queue_depth() > options.shed_queue_depth as u64 {
                                shed_connection(&mut stream, metrics);
                            } else {
                                handle_connection(&router, stream, &options, &shutdown, addr);
                            }
                            router.metrics().worker_idle();
                        }
                    }
                })
            })
            .collect();

        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    self.router.metrics().record_connection();
                    self.router.metrics().dispatch_enqueued();
                    // A send only fails after every worker exited, which
                    // cannot happen before the queue is closed below.
                    let _ = sender.send(stream);
                }
                Err(error) if error.kind() == ErrorKind::ConnectionAborted => continue,
                Err(error) => {
                    shutdown.store(true, Ordering::SeqCst);
                    drop(sender);
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(error);
                }
            }
        }

        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle for
    /// the bound address and for shutting the server down.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = self.router.shutdown_flag();
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// A handle to a [`Server::spawn`]ed server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag, wakes the accept loop and joins it (in-
    /// flight connections finish first).
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept_loop(self.addr);
        self.thread
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
    }
}

/// Unblocks a `TcpListener::accept` stuck with no incoming connections.
fn wake_accept_loop(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// The static overload response: written without parsing a byte of the
/// request, so the reject path costs a write and a close.
const SHED_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
Retry-After: 1\r\n\
Content-Type: text/plain; charset=utf-8\r\n\
Content-Length: 9\r\n\
Connection: close\r\n\r\n\
overload\n";

/// Cheap-rejects one connection under overload: static `503` +
/// `Retry-After`, no parsing, then close.
fn shed_connection(stream: &mut TcpStream, metrics: &ServeMetrics) {
    metrics.record_shed();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    if stream.write_all(SHED_RESPONSE).is_ok() {
        metrics.record_bytes_out(SHED_RESPONSE.len());
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Best-effort RST avoidance when closing a connection whose request body
/// was never fully read: signal FIN, then discard (bounded, with a short
/// timeout) whatever the peer keeps sending, so the already-written error
/// response survives long enough to be read.
fn lame_duck_drain(stream: &mut TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 8192];
    let mut budget: usize = 4 * 1024 * 1024;
    loop {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(n) if n >= budget => break,
            Ok(n) => budget -= n,
            Err(_) => break,
        }
    }
}

/// Serves one connection until it closes, errors, exhausts its keep-alive
/// budget, or the server shuts down.
fn handle_connection(
    router: &Router,
    mut stream: TcpStream,
    options: &ServerOptions,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(options.read_timeout));
    let _ = stream.set_write_timeout(Some(options.io_timeout));
    let _ = stream.set_nodelay(true);
    let metrics = Arc::clone(router.metrics());
    metrics.connection_opened();
    let record_write = |written: io::Result<usize>| -> bool {
        match written {
            Ok(bytes) => {
                metrics.record_bytes_out(bytes);
                true
            }
            Err(_) => false,
        }
    };
    let mut parser = RequestParser::new();
    let mut served = 0usize;
    let mut chunk = [0u8; 4096];

    'connection: loop {
        // Parse the next request: buffered bytes first (pipelining), then
        // reads off the socket. `request_started` anchors at the first
        // activity belonging to this request — not at keep-alive idle
        // time — so the parse stage measures head transfer + parsing.
        let mut request_started: Option<Instant> = None;
        let request = loop {
            let attempt_started = Instant::now();
            match parser.try_parse() {
                Ok(Some(request)) => {
                    request_started.get_or_insert(attempt_started);
                    break request;
                }
                Ok(None) => {}
                Err(violation) => {
                    record_write(Response::from(&violation).write_to(&mut stream, false, false));
                    break 'connection;
                }
            }
            // Once a request is in flight its head transfer runs on a
            // wall-clock budget: a slow-loris client trickling one byte
            // per read keeps every *individual* read under the idle
            // timeout, so each read's deadline shrinks to whatever
            // budget remains — total pin time is bounded by
            // `io_timeout`, not by bytes × read_timeout.
            if let Some(started) = request_started {
                let remaining = options.io_timeout.saturating_sub(started.elapsed());
                if remaining.is_zero() {
                    metrics.record_io_timeout();
                    record_write(
                        Response::text(408, "request header read timed out").write_to(
                            &mut stream,
                            false,
                            false,
                        ),
                    );
                    break 'connection;
                }
                let _ = stream.set_read_timeout(Some(options.read_timeout.min(remaining)));
            }
            match stream.read(&mut chunk) {
                Ok(0) => break 'connection, // peer closed
                Ok(n) => {
                    request_started.get_or_insert_with(Instant::now);
                    match parser.feed(&chunk[..n]) {
                        Ok(Some(request)) => break request,
                        Ok(None) => {}
                        Err(violation) => {
                            record_write(Response::from(&violation).write_to(
                                &mut stream,
                                false,
                                false,
                            ));
                            break 'connection;
                        }
                    }
                }
                Err(error)
                    if error.kind() == ErrorKind::WouldBlock
                        || error.kind() == ErrorKind::TimedOut =>
                {
                    if request_started.is_some() {
                        // Mid-request stall, not keep-alive idleness:
                        // tell the peer before closing.
                        metrics.record_io_timeout();
                        record_write(
                            Response::text(408, "request header read timed out").write_to(
                                &mut stream,
                                false,
                                false,
                            ),
                        );
                    }
                    break 'connection;
                }
                Err(_) => break 'connection,
            }
        };
        // Restore the idle timeout the budget tracking above may have
        // shrunk — body reads and the next keep-alive request start
        // from the configured value.
        let _ = stream.set_read_timeout(Some(options.read_timeout));
        let request_started = request_started.unwrap_or_else(Instant::now);
        let mut trace = router.begin_trace();
        trace.route = RouteClass::classify(&request.method, &request.path);
        trace.parse_us = micros_since(request_started);
        metrics.record_stage_us(Stage::Parse, trace.parse_us);
        // Pre-mint the request's root span: routing runs under its trace
        // scope so router/ingester spans nest under it, and the record
        // itself is written after the response — once the duration is
        // known. The span's start is back-dated to the first request byte
        // on the recorder clock.
        let recorder = FlightRecorder::global();
        let request_span = recorder.next_span_id();
        let request_start_us = recorder
            .now_us()
            .saturating_sub(micros_since(request_started));

        // The body streams through the router: ingestion routes consume it
        // chunk by chunk (never buffering the whole payload), every other
        // route leaves it to be drained — bounded — below.
        let framing = match request.body_framing() {
            Ok(framing) => framing,
            Err(violation) => {
                record_write(Response::from(&violation).write_to(&mut stream, false, false));
                break;
            }
        };
        let mut body = StreamBody::new(&mut parser, &mut stream, framing);
        served += 1;
        // Routes that do not consume the body get it drained (bounded)
        // *before* routing: an oversized or malformed upload must be
        // rejected before the route runs its side effect. Draining after
        // routing used to register a `?seed=` dataset and then replace
        // its 201 with a 413 — the side effect without the success.
        // Graceful degradation: ingestion is the expensive, deferrable
        // work, so it sheds at *half* the high-water mark — cached reads
        // keep being served while the queue recovers. The 503 goes out
        // before a single body byte is consumed.
        let soft_watermark = (options.shed_queue_depth / 2).max(1);
        let rejected = if trace.route == RouteClass::Ingest
            && metrics.dispatch_queue_depth() > soft_watermark as u64
        {
            metrics.record_shed();
            Some(
                Response::text(503, "ingestion shedding under load")
                    .with_header("Retry-After", "1"),
            )
        } else if router.consumes_body(&request) || body.finished() {
            None
        } else {
            match body.drain(MAX_BODY_BYTES) {
                Ok(_) => None,
                Err(BodyError::TooLarge { .. }) => {
                    Some(Response::text(413, "request body too large"))
                }
                Err(BodyError::Violation(violation)) => Some(Response::from(&violation)),
                Err(BodyError::Io(_)) => break,
            }
        };
        let rejected_before_routing = rejected.is_some();
        let response = match rejected {
            // Rejected requests never reach the router, but still carry
            // their minted id — the client can quote it either way.
            Some(response) => response.with_header("X-Request-Id", trace.id.clone()),
            None => {
                let _scope = obs::trace_scope(request_span, trace.trace_key);
                router.handle_traced(&request, &mut body, &mut trace)
            }
        };
        let mut keep_alive = request.keep_alive()
            && served < options.max_keep_alive_requests
            && !shutdown.load(Ordering::SeqCst)
            && !rejected_before_routing;
        // Whether unread body bytes remain when the response is written —
        // closing such a connection needs the lame-duck dance below.
        let mut body_pending = rejected_before_routing;
        if !body.finished() && !rejected_before_routing {
            // Only a consuming route (feed ingestion) leaves the body
            // unfinished here, and only by failing partway through it:
            // answer, then close — the unread body makes keep-alive
            // unsound. The peer may still be mid-upload: without the
            // lame-duck half-close below, closing now can RST the
            // connection and destroy the diagnostic before the client
            // reads it.
            keep_alive = false;
            body_pending = true;
        }
        let status = response.status();
        let write_started = Instant::now();
        let written = response.write_to(&mut stream, keep_alive, request.method == "HEAD");
        trace.write_us = micros_since(write_started);
        metrics.record_stage_us(Stage::Write, trace.write_us);
        // The server owns the full span — head transfer through response
        // write — so the route-class histogram includes parse and write
        // time the standalone-router path cannot see.
        let total_us = micros_since(request_started);
        metrics.record_route_us(trace.route, total_us);
        obs::record_request_span(
            request_span,
            trace.trace_key,
            trace.route.as_str(),
            request_start_us,
            total_us,
        );
        if let Some(log) = router.access_log() {
            let slow = total_us >= router.slow_request_us();
            let mut line = JsonLine::new();
            line.u64_field("ts", obs::unix_micros());
            line.str_field("event", if slow { "slow_request" } else { "request" });
            line.str_field("id", &trace.id);
            line.str_field("method", &request.method);
            line.str_field("path", &request.path);
            line.str_field("route", trace.route.as_str());
            line.u64_field("status", u64::from(status));
            line.u64_field("bytes", written.as_ref().map(|b| *b as u64).unwrap_or(0));
            line.u64_field("parse_us", trace.parse_us);
            line.u64_field("cache_us", trace.cache_us);
            line.u64_field("render_us", trace.render_us);
            line.u64_field("write_us", trace.write_us);
            line.u64_field("total_us", total_us);
            line.bool_field("cache_hit", trace.cache_hit);
            log.emit(&line.finish());
        }
        if !record_write(written) {
            break;
        }
        if body_pending {
            // Closing with unread bytes in the receive queue makes the OS
            // answer the peer's in-flight upload with a RST, which can
            // destroy the response before the client reads it. Half-close
            // the write side and drain (bounded) what the peer already
            // sent so the error diagnostic actually arrives.
            lame_duck_drain(&mut stream);
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            // This worker may have just handled POST /v1/shutdown: wake the
            // accept loop so the server can wind down.
            wake_accept_loop(addr);
            break;
        }
        if !keep_alive {
            break;
        }
    }
    metrics.connection_closed();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thread_count_is_clamped() {
        let threads = default_threads();
        assert!((2..=8).contains(&threads));
    }
}
