//! Connection- and request-level serving telemetry, exposed at
//! `GET /metrics` in the Prometheus text exposition format (no external
//! dependencies — plain `name value` lines plus histogram series).
//!
//! One [`ServeMetrics`] is shared by the [`Router`](crate::Router) (which
//! counts requests, render-cache traffic and per-stage latencies) and the
//! [`Server`](crate::Server) accept loop and workers (which count accepted
//! connections, bytes written, and whole-request latency per route
//! class). All counters are relaxed atomics and every histogram is an
//! [`osdiv_core::obs::LatencyHistogram`] — wait-free, allocation-free
//! recording; the numbers are operator telemetry, not synchronization.
//!
//! [`ServeMetrics`] also mints the `X-Request-Id` values: a per-process
//! random prefix plus a monotonic sequence number, unique across every
//! connection of one server for the life of the process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use osdiv_core::obs::LatencyHistogram;
use osdiv_core::FlightRecorder;

/// The route classes whole-request latency is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteClass {
    /// `GET /v1/healthz`.
    Healthz,
    /// `GET /v1/analyses` and `GET /v1/analyses/{id}`.
    Analyses,
    /// `GET /v1/report`.
    Report,
    /// Dataset reads: `GET /v1/datasets`, `GET`/`DELETE /v1/datasets/{name}`.
    DatasetsRead,
    /// Dataset ingestion: `PUT /v1/datasets/{name}`.
    Ingest,
    /// `GET /metrics`.
    Metrics,
    /// The gated introspection surface: `GET /v1/debug/*`.
    Debug,
    /// Everything else (shutdown, unknown paths, parse errors).
    Other,
}

impl RouteClass {
    /// Every class, in exposition order.
    pub const ALL: [RouteClass; 8] = [
        RouteClass::Healthz,
        RouteClass::Analyses,
        RouteClass::Report,
        RouteClass::DatasetsRead,
        RouteClass::Ingest,
        RouteClass::Metrics,
        RouteClass::Debug,
        RouteClass::Other,
    ];

    /// The `route` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            RouteClass::Healthz => "healthz",
            RouteClass::Analyses => "analyses",
            RouteClass::Report => "report",
            RouteClass::DatasetsRead => "datasets_read",
            RouteClass::Ingest => "ingest",
            RouteClass::Metrics => "metrics",
            RouteClass::Debug => "debug",
            RouteClass::Other => "other",
        }
    }

    /// Classifies a request by method and path (query already split off).
    pub fn classify(method: &str, path: &str) -> RouteClass {
        match path {
            "/v1/healthz" => RouteClass::Healthz,
            "/v1/report" => RouteClass::Report,
            "/metrics" => RouteClass::Metrics,
            "/v1/datasets" => RouteClass::DatasetsRead,
            _ if path == "/v1/debug" || path.starts_with("/v1/debug/") => RouteClass::Debug,
            _ if path == "/v1/analyses" || path.starts_with("/v1/analyses/") => {
                RouteClass::Analyses
            }
            _ if path.starts_with("/v1/datasets/") => {
                if method == "PUT" || method == "POST" {
                    RouteClass::Ingest
                } else {
                    RouteClass::DatasetsRead
                }
            }
            _ => RouteClass::Other,
        }
    }
}

/// The request-pipeline and ingestion stages latency is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading and parsing the request head (first byte to routed).
    Parse,
    /// Render-cache lookup on analysis routes.
    CacheLookup,
    /// Running the analysis and rendering the document (cache miss).
    Render,
    /// Writing the response head and body to the socket.
    Write,
    /// Ingestion: carving `<entry>` elements out of the feed stream.
    IngestCarve,
    /// Ingestion: parsing carved entries (pipelined wait included).
    IngestParse,
    /// Ingestion: inserting parsed entries into the store, in feed order.
    IngestInsert,
}

impl Stage {
    /// Every stage, in exposition order.
    pub const ALL: [Stage; 7] = [
        Stage::Parse,
        Stage::CacheLookup,
        Stage::Render,
        Stage::Write,
        Stage::IngestCarve,
        Stage::IngestParse,
        Stage::IngestInsert,
    ];

    /// The `stage` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::CacheLookup => "cache_lookup",
            Stage::Render => "render",
            Stage::Write => "write",
            Stage::IngestCarve => "ingest_carve",
            Stage::IngestParse => "ingest_parse",
            Stage::IngestInsert => "ingest_insert",
        }
    }
}

/// One latency histogram per route class.
#[derive(Debug, Default)]
struct RouteHistograms {
    healthz: LatencyHistogram,
    analyses: LatencyHistogram,
    report: LatencyHistogram,
    datasets_read: LatencyHistogram,
    ingest: LatencyHistogram,
    metrics: LatencyHistogram,
    debug: LatencyHistogram,
    other: LatencyHistogram,
}

impl RouteHistograms {
    fn of(&self, class: RouteClass) -> &LatencyHistogram {
        match class {
            RouteClass::Healthz => &self.healthz,
            RouteClass::Analyses => &self.analyses,
            RouteClass::Report => &self.report,
            RouteClass::DatasetsRead => &self.datasets_read,
            RouteClass::Ingest => &self.ingest,
            RouteClass::Metrics => &self.metrics,
            RouteClass::Debug => &self.debug,
            RouteClass::Other => &self.other,
        }
    }
}

/// One latency histogram per pipeline stage.
#[derive(Debug, Default)]
struct StageHistograms {
    parse: LatencyHistogram,
    cache_lookup: LatencyHistogram,
    render: LatencyHistogram,
    write: LatencyHistogram,
    ingest_carve: LatencyHistogram,
    ingest_parse: LatencyHistogram,
    ingest_insert: LatencyHistogram,
}

impl StageHistograms {
    fn of(&self, stage: Stage) -> &LatencyHistogram {
        match stage {
            Stage::Parse => &self.parse,
            Stage::CacheLookup => &self.cache_lookup,
            Stage::Render => &self.render,
            Stage::Write => &self.write,
            Stage::IngestCarve => &self.ingest_carve,
            Stage::IngestParse => &self.ingest_parse,
            Stage::IngestInsert => &self.ingest_insert,
        }
    }
}

/// Monotonic serving counters, latency histograms and the request-id
/// mint (see the module docs).
#[derive(Debug)]
pub struct ServeMetrics {
    /// TCP connections the accept loop handed to a worker.
    connections_accepted: AtomicU64,
    /// HTTP requests routed (including error responses and `/metrics`
    /// itself).
    requests_served: AtomicU64,
    /// Render-route responses served from the body LRU.
    cache_hits: AtomicU64,
    /// Render-route responses that had to render (and were then cached).
    cache_misses: AtomicU64,
    /// Response bytes written to sockets (head + body).
    bytes_out: AtomicU64,
    /// Worker threads in the pool (set once at server start; zero when the
    /// router runs standalone).
    workers_total: AtomicU64,
    /// Workers currently serving a connection.
    workers_busy: AtomicU64,
    /// Accepted connections handed to the dispatch queue and not yet
    /// picked up by a worker.
    dispatch_queue_depth: AtomicU64,
    /// Connections currently held open by a worker (keep-alive included).
    connections_active: AtomicU64,
    /// Connections or requests shed by admission control (503).
    shed_total: AtomicU64,
    /// Connections closed for exhausting the per-request I/O budget (408).
    io_timeouts_total: AtomicU64,
    /// Feed-ingestion pipeline entries submitted to parser workers and not
    /// yet harvested (shared with every in-flight [`FeedIngester`] via
    /// [`ServeMetrics::ingest_queue_depth`]).
    ingest_queue_depth: Arc<AtomicU64>,
    /// Whole-request latency per route class.
    routes: RouteHistograms,
    /// Per-stage latency across the request and ingestion pipelines.
    stages: StageHistograms,
    /// Per-process random prefix of every minted request id.
    id_seed: u64,
    /// Monotonic request-id sequence.
    next_request_id: AtomicU64,
    /// Process start, for `osdiv_uptime_seconds`.
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero counters; the request-id prefix is seeded from the
    /// wall clock so two boots never share an id space.
    pub fn new() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // SplitMix64 finalizer: spreads the clock bits over the prefix.
        let mut seed = nanos.wrapping_add(0x9e37_79b9_7f4a_7c15);
        seed = (seed ^ (seed >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        seed = (seed ^ (seed >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ServeMetrics {
            connections_accepted: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            workers_total: AtomicU64::new(0),
            workers_busy: AtomicU64::new(0),
            dispatch_queue_depth: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            io_timeouts_total: AtomicU64::new(0),
            ingest_queue_depth: Arc::new(AtomicU64::new(0)),
            routes: RouteHistograms::default(),
            stages: StageHistograms::default(),
            id_seed: seed ^ (seed >> 33),
            next_request_id: AtomicU64::new(1),
            started: Instant::now(),
        }
    }

    /// Mints the next request id: `{process-prefix}-{sequence}`, echoed
    /// as `X-Request-Id` and keyed into the access log. Unique for the
    /// life of the process; the prefix disambiguates across restarts.
    pub fn mint_request_id(&self) -> String {
        self.mint_traced_request_id().0
    }

    /// Mints the next request id plus its numeric trace key: the same
    /// `prefix-sequence` pair packed into a `u64` (`prefix << 32 | seq`).
    /// The numeric form keys the flight recorder's span records, so a
    /// trace dumped from `/v1/debug/spans` joins back to the
    /// `X-Request-Id` the client saw
    /// (see [`osdiv_core::obs::format_trace_id`]).
    pub fn mint_traced_request_id(&self) -> (String, u64) {
        let seq = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let prefix = self.id_seed as u32;
        let trace = (u64::from(prefix) << 32) | u64::from(seq as u32);
        (format!("{prefix:08x}-{:08x}", seq as u32), trace)
    }

    /// Sets the worker-pool size gauge (once, at server start).
    pub fn set_workers_total(&self, workers: usize) {
        self.workers_total.store(workers as u64, Ordering::Relaxed);
    }

    /// Marks one worker busy (serving a connection).
    pub fn worker_busy(&self) {
        self.workers_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one worker idle again.
    pub fn worker_idle(&self) {
        let _ = self
            .workers_busy
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |held| {
                held.checked_sub(1)
            });
    }

    /// Counts a connection entering the dispatch queue.
    pub fn dispatch_enqueued(&self) {
        self.dispatch_queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection leaving the dispatch queue (picked up).
    pub fn dispatch_dequeued(&self) {
        let _ =
            self.dispatch_queue_depth
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |held| {
                    held.checked_sub(1)
                });
    }

    /// Counts a connection becoming active on a worker.
    pub fn connection_opened(&self) {
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an active connection closing.
    pub fn connection_closed(&self) {
        let _ =
            self.connections_active
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |held| {
                    held.checked_sub(1)
                });
    }

    /// The shared ingest-pipeline depth gauge, handed to every
    /// [`osdiv_registry::FeedIngester`] the router builds (via
    /// `FeedIngester::with_queue_gauge`).
    pub fn ingest_queue_depth(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ingest_queue_depth)
    }

    /// Worker threads in the pool.
    pub fn workers_total(&self) -> u64 {
        self.workers_total.load(Ordering::Relaxed)
    }

    /// Workers currently serving a connection.
    pub fn workers_busy(&self) -> u64 {
        self.workers_busy.load(Ordering::Relaxed)
    }

    /// Accepted connections awaiting a worker.
    pub fn dispatch_queue_depth(&self) -> u64 {
        self.dispatch_queue_depth.load(Ordering::Relaxed)
    }

    /// Connections currently held open by workers.
    pub fn connections_active(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shed connection or request (admission control said no).
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection closed for exhausting its I/O budget.
    pub fn record_io_timeout(&self) {
        self.io_timeouts_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Sheds so far.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// I/O-budget closes so far.
    pub fn io_timeouts_total(&self) -> u64 {
        self.io_timeouts_total.load(Ordering::Relaxed)
    }

    /// Counts one routed request.
    pub fn record_request(&self) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one render-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one render-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts response bytes written to a socket.
    pub fn record_bytes_out(&self, bytes: usize) {
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one whole-request latency under its route class.
    pub fn record_route_us(&self, class: RouteClass, micros: u64) {
        self.routes.of(class).record_us(micros);
    }

    /// Records one pipeline-stage latency.
    pub fn record_stage_us(&self, stage: Stage, micros: u64) {
        self.stages.of(stage).record_us(micros);
    }

    /// Connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// Requests routed so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Render-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Render-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Response bytes written so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Observations recorded under a route class (test hook).
    pub fn route_observations(&self, class: RouteClass) -> u64 {
        self.routes.of(class).total()
    }

    /// Observations recorded under a stage (test hook).
    pub fn stage_observations(&self, stage: Stage) -> u64 {
        self.stages.of(stage).total()
    }

    /// The `GET /metrics` body: the counters, build/uptime gauges, and
    /// the per-route / per-stage latency histograms, Prometheus text
    /// exposition format.
    pub fn render(&self) -> String {
        let mut body = String::with_capacity(16 * 1024);
        let counters = [
            (
                "osdiv_connections_accepted",
                "TCP connections accepted by the server",
                self.connections_accepted(),
            ),
            (
                "osdiv_requests_served",
                "HTTP requests routed",
                self.requests_served(),
            ),
            (
                "osdiv_cache_hits",
                "render responses served from the body cache",
                self.cache_hits(),
            ),
            (
                "osdiv_cache_misses",
                "render responses that had to render",
                self.cache_misses(),
            ),
            (
                "osdiv_bytes_out",
                "response bytes written to sockets",
                self.bytes_out(),
            ),
            (
                "osdiv_shed_total",
                "connections or requests shed by admission control",
                self.shed_total(),
            ),
            (
                "osdiv_io_timeouts_total",
                "connections closed for exhausting the per-request I/O budget",
                self.io_timeouts_total(),
            ),
            (
                "osdiv_faults_injected_total",
                "faults injected at armed failpoint sites",
                osdiv_core::fault::injected_total(),
            ),
        ];
        for (name, help, value) in counters {
            body.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        let gauges = [
            (
                "osdiv_workers_total",
                "worker threads in the serving pool",
                self.workers_total(),
            ),
            (
                "osdiv_workers_busy",
                "workers currently serving a connection",
                self.workers_busy(),
            ),
            (
                "osdiv_dispatch_queue_depth",
                "accepted connections waiting for a worker",
                self.dispatch_queue_depth(),
            ),
            (
                "osdiv_connections_active",
                "connections currently held open by workers",
                self.connections_active(),
            ),
            (
                "osdiv_ingest_queue_depth",
                "feed entries submitted to parser workers and not yet harvested",
                self.ingest_queue_depth.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in gauges {
            body.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }

        let recorder = FlightRecorder::global();
        let trace_counters = [
            (
                "osdiv_trace_spans_recorded_total",
                "spans written to the flight-recorder ring",
                recorder.recorded_total(),
            ),
            (
                "osdiv_trace_spans_dropped_total",
                "spans overwritten after the ring wrapped",
                recorder.dropped(),
            ),
        ];
        for (name, help, value) in trace_counters {
            body.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        body.push_str(&format!(
            "# HELP osdiv_build_info build metadata (constant 1)\n\
             # TYPE osdiv_build_info gauge\n\
             osdiv_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        ));
        body.push_str(&format!(
            "# HELP osdiv_uptime_seconds seconds since the process started\n\
             # TYPE osdiv_uptime_seconds gauge\n\
             osdiv_uptime_seconds {}\n",
            self.started.elapsed().as_secs()
        ));

        body.push_str(
            "# HELP osdiv_request_duration_seconds whole-request latency by route class\n\
             # TYPE osdiv_request_duration_seconds histogram\n",
        );
        for class in RouteClass::ALL {
            let snap = self.routes.of(class).snapshot();
            if snap.is_empty() {
                continue;
            }
            snap.render_prometheus(
                "osdiv_request_duration_seconds",
                &format!("route=\"{}\"", class.as_str()),
                &mut body,
            );
        }

        body.push_str(
            "# HELP osdiv_stage_duration_seconds pipeline-stage latency (request and ingestion stages)\n\
             # TYPE osdiv_stage_duration_seconds histogram\n",
        );
        for stage in Stage::ALL {
            let snap = self.stages.of(stage).snapshot();
            if snap.is_empty() {
                continue;
            }
            snap.render_prometheus(
                "osdiv_stage_duration_seconds",
                &format!("stage=\"{}\"", stage.as_str()),
                &mut body,
            );
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let metrics = ServeMetrics::new();
        metrics.record_connection();
        metrics.record_request();
        metrics.record_request();
        metrics.record_cache_hit();
        metrics.record_cache_miss();
        metrics.record_bytes_out(1500);
        metrics.record_bytes_out(500);
        assert_eq!(metrics.connections_accepted(), 1);
        assert_eq!(metrics.requests_served(), 2);
        assert_eq!(metrics.cache_hits(), 1);
        assert_eq!(metrics.cache_misses(), 1);
        assert_eq!(metrics.bytes_out(), 2000);
        let body = metrics.render();
        assert!(body.contains("osdiv_requests_served 2\n"));
        assert!(body.contains("osdiv_bytes_out 2000\n"));
        assert!(body.contains("# TYPE osdiv_connections_accepted counter\n"));
    }

    #[test]
    fn build_info_and_uptime_are_always_present() {
        let body = ServeMetrics::new().render();
        assert!(body.contains(&format!(
            "osdiv_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(body.contains("# TYPE osdiv_uptime_seconds gauge\n"));
        assert!(body.contains("osdiv_uptime_seconds 0\n"));
    }

    #[test]
    fn histograms_render_per_route_and_stage_once_recorded() {
        let metrics = ServeMetrics::new();
        // Untouched histograms stay out of the exposition…
        let body = metrics.render();
        assert!(!body.contains("route=\"report\""));
        assert!(body.contains("# TYPE osdiv_request_duration_seconds histogram\n"));
        // …and recorded ones appear with cumulative buckets.
        metrics.record_route_us(RouteClass::Report, 17);
        metrics.record_route_us(RouteClass::Report, 1_700);
        metrics.record_stage_us(Stage::Render, 2_600);
        let body = metrics.render();
        assert!(body
            .contains("osdiv_request_duration_seconds_bucket{route=\"report\",le=\"0.000025\"} 1"));
        assert!(body.contains("osdiv_request_duration_seconds_count{route=\"report\"} 2"));
        assert!(body.contains("osdiv_stage_duration_seconds_count{stage=\"render\"} 1"));
        assert!(
            body.contains("osdiv_stage_duration_seconds_bucket{stage=\"render\",le=\"+Inf\"} 1")
        );
    }

    #[test]
    fn saturation_gauges_track_and_render() {
        let metrics = ServeMetrics::new();
        metrics.set_workers_total(4);
        metrics.worker_busy();
        metrics.worker_busy();
        metrics.worker_idle();
        metrics.dispatch_enqueued();
        metrics.dispatch_enqueued();
        metrics.dispatch_dequeued();
        metrics.connection_opened();
        metrics.ingest_queue_depth().store(7, Ordering::Relaxed);
        assert_eq!(metrics.workers_total(), 4);
        assert_eq!(metrics.workers_busy(), 1);
        assert_eq!(metrics.dispatch_queue_depth(), 1);
        assert_eq!(metrics.connections_active(), 1);
        let body = metrics.render();
        assert!(body.contains("# TYPE osdiv_workers_total gauge\nosdiv_workers_total 4\n"));
        assert!(body.contains("osdiv_workers_busy 1\n"));
        assert!(body.contains("osdiv_dispatch_queue_depth 1\n"));
        assert!(body.contains("osdiv_connections_active 1\n"));
        assert!(body.contains("osdiv_ingest_queue_depth 7\n"));
        assert!(body.contains("# TYPE osdiv_trace_spans_recorded_total counter\n"));
        assert!(body.contains("# TYPE osdiv_trace_spans_dropped_total counter\n"));
        // Decrements saturate at zero instead of wrapping to u64::MAX.
        metrics.connection_closed();
        metrics.connection_closed();
        assert_eq!(metrics.connections_active(), 0);
        metrics.worker_idle();
        metrics.worker_idle();
        assert_eq!(metrics.workers_busy(), 0);
    }

    #[test]
    fn traced_request_ids_join_string_and_numeric_forms() {
        let metrics = ServeMetrics::new();
        let (id, trace) = metrics.mint_traced_request_id();
        assert_eq!(osdiv_core::obs::format_trace_id(trace), id);
    }

    #[test]
    fn request_ids_are_unique_and_prefixed() {
        let metrics = ServeMetrics::new();
        let a = metrics.mint_request_id();
        let b = metrics.mint_request_id();
        assert_ne!(a, b);
        let prefix = |id: &str| id.split('-').next().map(str::to_string);
        assert_eq!(prefix(&a), prefix(&b));
        assert!(a.split('-').count() == 2);
    }

    #[test]
    fn route_classification_matches_the_route_table() {
        use RouteClass as R;
        for (method, path, class) in [
            ("GET", "/v1/healthz", R::Healthz),
            ("GET", "/v1/report", R::Report),
            ("GET", "/v1/analyses", R::Analyses),
            ("GET", "/v1/analyses/pairwise", R::Analyses),
            ("GET", "/v1/datasets", R::DatasetsRead),
            ("GET", "/v1/datasets/smoke", R::DatasetsRead),
            ("DELETE", "/v1/datasets/smoke", R::DatasetsRead),
            ("PUT", "/v1/datasets/smoke", R::Ingest),
            ("GET", "/metrics", R::Metrics),
            ("GET", "/v1/debug/spans", R::Debug),
            ("GET", "/v1/debug/registry", R::Debug),
            ("GET", "/v1/debug", R::Debug),
            ("POST", "/v1/shutdown", R::Other),
            ("GET", "/nope", R::Other),
        ] {
            assert_eq!(RouteClass::classify(method, path), class, "{method} {path}");
        }
    }
}
