//! Connection- and request-level serving counters, exposed at
//! `GET /metrics` in the Prometheus text exposition format (no external
//! dependencies — plain `name value` lines).
//!
//! One [`ServeMetrics`] is shared by the [`Router`](crate::Router) (which
//! counts requests and render-cache traffic) and the
//! [`Server`](crate::Server) accept loop and workers (which count accepted
//! connections and bytes written). All counters are relaxed atomics: the
//! numbers are operator telemetry, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic serving counters (see the module docs).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// TCP connections the accept loop handed to a worker.
    connections_accepted: AtomicU64,
    /// HTTP requests routed (including error responses and `/metrics`
    /// itself).
    requests_served: AtomicU64,
    /// Render-route responses served from the body LRU.
    cache_hits: AtomicU64,
    /// Render-route responses that had to render (and were then cached).
    cache_misses: AtomicU64,
    /// Response bytes written to sockets (head + body).
    bytes_out: AtomicU64,
}

impl ServeMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one routed request.
    pub fn record_request(&self) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one render-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one render-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts response bytes written to a socket.
    pub fn record_bytes_out(&self, bytes: usize) {
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// Requests routed so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Render-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Render-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Response bytes written so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// The `GET /metrics` body: one `# TYPE` line and one sample per
    /// counter, Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut body = String::with_capacity(512);
        let counters = [
            (
                "osdiv_connections_accepted",
                "TCP connections accepted by the server",
                self.connections_accepted(),
            ),
            (
                "osdiv_requests_served",
                "HTTP requests routed",
                self.requests_served(),
            ),
            (
                "osdiv_cache_hits",
                "render responses served from the body cache",
                self.cache_hits(),
            ),
            (
                "osdiv_cache_misses",
                "render responses that had to render",
                self.cache_misses(),
            ),
            (
                "osdiv_bytes_out",
                "response bytes written to sockets",
                self.bytes_out(),
            ),
        ];
        for (name, help, value) in counters {
            body.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let metrics = ServeMetrics::new();
        metrics.record_connection();
        metrics.record_request();
        metrics.record_request();
        metrics.record_cache_hit();
        metrics.record_cache_miss();
        metrics.record_bytes_out(1500);
        metrics.record_bytes_out(500);
        assert_eq!(metrics.connections_accepted(), 1);
        assert_eq!(metrics.requests_served(), 2);
        assert_eq!(metrics.cache_hits(), 1);
        assert_eq!(metrics.cache_misses(), 1);
        assert_eq!(metrics.bytes_out(), 2000);
        let body = metrics.render();
        assert!(body.contains("osdiv_requests_served 2\n"));
        assert!(body.contains("osdiv_bytes_out 2000\n"));
        assert!(body.contains("# TYPE osdiv_connections_accepted counter\n"));
    }
}
