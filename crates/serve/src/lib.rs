//! `osdiv-serve` — a dependency-free HTTP/1.1 serving layer that turns the
//! memoized [`Study`](osdiv_core::Study) session into a long-running,
//! queryable diversity API.
//!
//! The repo's batch pipeline recomputes everything per invocation; this
//! crate keeps one pre-warmed session resident and serves it over plain
//! `std::net` (no external dependencies, matching the workspace
//! constraint):
//!
//! * [`http`] — an incremental request parser (keep-alive, pipelining,
//!   torn-read safe; malformed or oversized input answers 400/431, never
//!   panics), streamed request bodies ([`http::Body`]) with both
//!   `Content-Length` and `Transfer-Encoding: chunked` framing
//!   ([`http::ChunkedDecoder`]), and a response writer;
//! * [`router`] — registry-driven routes (`/v1/healthz`, `/v1/analyses`,
//!   `/v1/analyses/{id}`, `/v1/report`, the `/v1/datasets` tenancy
//!   routes, `POST /v1/shutdown`) over a shared
//!   [`osdiv_registry::StudyRegistry`]: every analysis route takes
//!   `?dataset={name}`, feed bodies stream through
//!   [`osdiv_registry::FeedIngester`] into new queryable datasets, and
//!   rendered bodies live in a bounded LRU **with their precomputed
//!   ETag** (dataset+seed+hash keyed, `If-None-Match` → 304);
//! * [`server`] — a `TcpListener` accept loop feeding a fixed worker
//!   thread pool, with graceful shutdown from inside (the shutdown route)
//!   or outside ([`ServerHandle::shutdown`]);
//! * [`loadgen`] — a std-`TcpStream` client (GET/HEAD, bodies, chunked
//!   uploads), a multi-threaded closed-loop load generator and an
//!   open-loop Poisson-arrival harness ([`run_open_loop`]) whose p99s
//!   are immune to coordinated omission (used by the criterion serving
//!   bench and CI smoke test);
//! * [`metrics`] — per-route and per-stage latency histograms
//!   ([`osdiv_core::LatencyHistogram`]) exposed at `GET /metrics` in
//!   Prometheus exposition format, request-id minting, build info and
//!   uptime. Every response carries `X-Request-Id`; an optional
//!   JSON-lines access log ([`RouterOptions::access_log`]) records one
//!   structured line per request with per-stage timings;
//! * [`debug`] — the gated `GET /v1/debug/*` introspection surface
//!   (`--enable-debug` + the ingest bearer token): the flight-recorder
//!   ring as Chrome trace-event JSON (`/v1/debug/spans`, Perfetto-
//!   loadable, joined to responses by `X-Request-Id`), per-tenant
//!   lifecycle state (`/v1/debug/registry`) and worker-pool occupancy
//!   (`/v1/debug/pool`).
//!
//! `GET /v1/analyses/{id}` responses are byte-identical to
//! `osdiv {id} --format <f>` for the same seed, because both call
//! [`osdiv_core::analysis_sections`] and the same renderer.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! use datagen::CalibratedGenerator;
//! use osdiv_core::Study;
//! use osdiv_serve::{loadgen, Router, RouterOptions, Server, ServerOptions};
//!
//! // One shared session; `run_all` would pre-warm every analysis. It
//! // becomes the pinned "default" dataset of the router's registry —
//! // `Router::new` accepts a full multi-dataset `StudyRegistry` instead.
//! let dataset = CalibratedGenerator::new(1).generate();
//! let study = Arc::new(Study::from_entries(dataset.entries()));
//!
//! let router = Arc::new(Router::with_study(study, RouterOptions { seed: 1, ..Default::default() }));
//! let server = Server::bind("127.0.0.1:0", router, ServerOptions::default()).unwrap();
//! let handle = server.spawn();
//!
//! let health = loadgen::get(handle.addr(), "/v1/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! assert!(health.body_string().contains("\"status\":\"ok\""));
//!
//! let table1 = loadgen::get(handle.addr(), "/v1/analyses/validity?format=csv").unwrap();
//! assert!(table1.body_string().starts_with("OS,Valid"));
//!
//! handle.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod debug;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod server;

pub use http::{
    Body, BodyError, BodyFraming, BufferedBody, ChunkedDecoder, EmptyBody, Request, RequestParser,
    Response, StreamBody,
};
pub use loadgen::{
    run_loadgen, run_open_loop, ClientResponse, LoadReport, OpenLoopConfig, OpenLoopReport,
};
pub use metrics::{RouteClass, ServeMetrics, Stage};
pub use router::{RequestTrace, Router, RouterOptions, DEFAULT_SLOW_REQUEST_US};
pub use server::{default_threads, Server, ServerHandle, ServerOptions};
