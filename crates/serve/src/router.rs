//! Registry-driven routing over a shared, pre-warmed [`Study`].
//!
//! Routes:
//!
//! | Route | Serves |
//! |---|---|
//! | `GET /v1/healthz` | liveness + cache statistics (JSON) |
//! | `GET /v1/analyses` | the analysis registry |
//! | `GET /v1/analyses/{id}` | one analysis; query params select its config |
//! | `GET /v1/report` | the combined report |
//! | `POST /v1/shutdown` | graceful shutdown (when enabled) |
//!
//! The routes are driven by the core analysis registry, so a newly
//! registered analysis is immediately queryable without touching this
//! module. Output format negotiation follows `?format=` first, then the
//! `Accept` header, defaulting to the paper-style text rendering — the
//! same default as the `osdiv` CLI, and the rendered bytes are identical
//! to `osdiv <analysis> --format <f>` because both sides call
//! [`osdiv_core::analysis_sections`].
//!
//! Responses carry a strong `ETag` keyed on the dataset seed and the
//! requested configuration; `If-None-Match` revalidation answers 304
//! without re-rendering. Non-default configurations are rendered through
//! [`Study::get_with`] and kept in a bounded LRU cache.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use osdiv_core::{
    analysis_sections, registry_section, renderer, AnalysisError, AnalysisId, Format, Params, Study,
};
use parking_lot::Mutex;

use crate::http::{Request, Response};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// The seed the served dataset was generated from (keys the ETags and
    /// is reported by `/v1/healthz`).
    pub seed: u64,
    /// Capacity of the rendered-response LRU cache.
    pub cache_capacity: usize,
    /// Whether `POST /v1/shutdown` is honoured (403 otherwise).
    pub enable_shutdown: bool,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            seed: 2011,
            cache_capacity: 128,
            enable_shutdown: false,
        }
    }
}

/// A bounded LRU of rendered response bodies. Bounded twice: by entry
/// count *and* by total body bytes — query parameters are attacker-
/// controlled and some configurations (wide temporal year ranges) render
/// multi-megabyte documents, so an entry-count bound alone would let a
/// crafted request series pin unbounded memory.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    byte_budget: usize,
    bytes: usize,
    map: HashMap<String, Arc<Vec<u8>>>,
    order: VecDeque<String>,
}

impl LruCache {
    /// Total body bytes the cache may hold.
    const BYTE_BUDGET: usize = 32 * 1024 * 1024;

    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            byte_budget: Self::BYTE_BUDGET,
            bytes: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        let hit = self.map.get(key).cloned()?;
        if let Some(position) = self.order.iter().position(|k| k == key) {
            let key = self.order.remove(position).expect("position is in range");
            self.order.push_back(key);
        }
        Some(hit)
    }

    fn insert(&mut self, key: String, value: Arc<Vec<u8>>) {
        // A body that would monopolize the budget is served uncached.
        if self.capacity == 0 || value.len() > self.byte_budget / 4 {
            return;
        }
        if let Some(replaced) = self.map.insert(key.clone(), Arc::clone(&value)) {
            self.bytes = self.bytes - replaced.len() + value.len();
        } else {
            self.bytes += value.len();
            self.order.push_back(key);
        }
        while self.order.len() > self.capacity || self.bytes > self.byte_budget {
            let Some(evicted) = self.order.pop_front() else {
                break;
            };
            if let Some(body) = self.map.remove(&evicted) {
                self.bytes -= body.len();
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The request handler shared by every worker thread.
#[derive(Debug)]
pub struct Router {
    study: Arc<Study>,
    options: RouterOptions,
    cache: Mutex<LruCache>,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    shutdown: Arc<AtomicBool>,
}

impl Router {
    /// Wraps a (preferably pre-warmed, see [`Study::run_all`]) session.
    pub fn new(study: Arc<Study>, options: RouterOptions) -> Self {
        let cache = Mutex::new(LruCache::new(options.cache_capacity));
        Router {
            study,
            options,
            cache,
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The flag `POST /v1/shutdown` raises; the server's accept loop (and
    /// [`crate::server::ServerHandle::shutdown`]) watch the same flag.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Total requests handled.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Responses served straight from the rendered-body cache.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Routes one parsed request to a response. Never panics on client
    /// input; analysis configuration errors surface as 400s.
    pub fn handle(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let path = request.path.as_str();
        match path {
            "/v1/shutdown" => {
                if request.method != "POST" {
                    return method_not_allowed("POST");
                }
                if !self.options.enable_shutdown {
                    return Response::text(
                        403,
                        "shutdown over HTTP is disabled (start with --enable-shutdown)",
                    );
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Response::new(200).with_body(
                    tabular::mime::APPLICATION_JSON,
                    b"{\"status\":\"shutting down\"}\n".to_vec(),
                )
            }
            "/v1/healthz" => match self.check_get(request) {
                Err(response) => response,
                Ok(()) => self.healthz(),
            },
            "/v1/report" | "/v1/analyses" => match self.check_get(request) {
                Err(response) => response,
                Ok(()) => self.render_route(request),
            },
            _ => match path.strip_prefix("/v1/analyses/") {
                Some(name) if !name.is_empty() && !name.contains('/') => {
                    match self.check_get(request) {
                        Err(response) => response,
                        Ok(()) => match AnalysisId::from_name(name) {
                            Ok(_) => self.render_route(request),
                            Err(error) => Response::text(404, error.to_string()),
                        },
                    }
                }
                _ => Response::text(404, format!("no route for {path}")),
            },
        }
    }

    fn check_get(&self, request: &Request) -> Result<(), Response> {
        if request.method == "GET" || request.method == "HEAD" {
            Ok(())
        } else {
            Err(method_not_allowed("GET, HEAD"))
        }
    }

    fn healthz(&self) -> Response {
        let body = format!(
            "{{\"status\":\"ok\",\"seed\":{},\"analyses\":{},\"memoized\":{},\"cached_responses\":{},\"requests\":{},\"cache_hits\":{}}}\n",
            self.options.seed,
            AnalysisId::ALL.len(),
            self.study.cached_ids().len(),
            self.cache.lock().len(),
            self.request_count(),
            self.cache_hit_count(),
        );
        Response::new(200).with_body(tabular::mime::APPLICATION_JSON, body.into_bytes())
    }

    /// Serves `/v1/report`, `/v1/analyses` and `/v1/analyses/{id}` —
    /// everything that renders sections in a negotiated format with ETag
    /// revalidation and the LRU body cache.
    fn render_route(&self, request: &Request) -> Response {
        let (format, params) = match negotiate(request) {
            Ok(split) => split,
            Err(response) => return response,
        };
        let key = format!("{}?{}#{}", request.path, params.canonical(), format.name());
        let body = match self.cache.lock().get(&key) {
            Some(hit) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => None,
        };
        let body = match body {
            Some(body) => body,
            None => match self.build_body(&request.path, format, &params) {
                Ok(body) => {
                    let body = Arc::new(body);
                    self.cache.lock().insert(key, Arc::clone(&body));
                    body
                }
                Err(error) => return error_response(&error),
            },
        };
        let etag = format!("\"{:x}-{:016x}\"", self.options.seed, fnv1a(&body));
        if request
            .header("if-none-match")
            .map(|held| held == etag || held == "*")
            .unwrap_or(false)
        {
            return Response::new(304).with_header("ETag", etag);
        }
        Response::new(200)
            .with_body(format.content_type(), body.as_ref().clone())
            .with_header("ETag", etag)
            .with_header("Cache-Control", "no-cache")
    }

    fn build_body(
        &self,
        path: &str,
        format: Format,
        params: &Params,
    ) -> Result<Vec<u8>, AnalysisError> {
        let rendered = match path {
            "/v1/report" => {
                params.check_known(&[])?;
                self.study.report(format)?
            }
            "/v1/analyses" => {
                params.check_known(&[])?;
                renderer(format).document(&[registry_section()])
            }
            _ => {
                let name = path
                    .strip_prefix("/v1/analyses/")
                    .expect("render_route only sees analysis paths");
                let id = AnalysisId::from_name(name)?;
                let sections = analysis_sections(&self.study, id, params)?;
                renderer(format).document(&sections)
            }
        };
        Ok(rendered.into_bytes())
    }
}

fn method_not_allowed(allow: &str) -> Response {
    Response::text(405, format!("method not allowed (allow: {allow})")).with_header("Allow", allow)
}

fn error_response(error: &AnalysisError) -> Response {
    Response::text(400, format!("error: {error}"))
}

/// Splits a request into the negotiated output format and the analysis
/// parameters: `?format=` wins, then the `Accept` header, then the text
/// default. Every other query key is handed to the analysis configuration.
fn negotiate(request: &Request) -> Result<(Format, Params), Response> {
    let mut params = Params::new();
    let mut format_value: Option<&str> = None;
    for (key, value) in &request.query {
        if key == "format" {
            format_value = Some(value);
        } else {
            params.insert(key.clone(), value.clone());
        }
    }
    if let Some(raw) = format_value {
        return match raw.parse::<Format>() {
            Ok(format) => Ok((format, params)),
            Err(error) => Err(Response::text(400, format!("error: {error}"))),
        };
    }
    match request.header("accept") {
        None => Ok((Format::Text, params)),
        Some(accept) => match accepted_format(accept) {
            Some(format) => Ok((format, params)),
            None => Err(Response::text(
                406,
                format!(
                    "none of {accept:?} is supported (offered: text/plain, text/csv, application/json)"
                ),
            )),
        },
    }
}

/// Picks the supported media type with the highest quality value (ties:
/// first listed). An unparsable `q=` counts as 1.
fn accepted_format(accept: &str) -> Option<Format> {
    let mut best: Option<(Format, f64)> = None;
    for item in accept.split(',') {
        let mut pieces = item.split(';');
        let media_type = pieces.next().unwrap_or("").trim();
        let mut quality = 1.0_f64;
        for parameter in pieces {
            if let Some((name, value)) = parameter.split_once('=') {
                if name.trim().eq_ignore_ascii_case("q") {
                    quality = value.trim().parse().unwrap_or(1.0);
                }
            }
        }
        if quality <= 0.0 {
            continue;
        }
        if let Some(format) = Format::from_media_type(media_type) {
            if best.map(|(_, held)| quality > held).unwrap_or(true) {
                best = Some((format, quality));
            }
        }
    }
    best.map(|(format, _)| format)
}

/// FNV-1a over a byte slice (the ETag body hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::RequestParser;

    fn request(raw: &str) -> Request {
        RequestParser::new()
            .feed(raw.as_bytes())
            .unwrap()
            .expect("complete request")
    }

    fn test_router() -> Router {
        let dataset = datagen::CalibratedGenerator::new(1).generate();
        let study = Arc::new(Study::from_entries(dataset.entries()));
        Router::new(
            study,
            RouterOptions {
                seed: 1,
                cache_capacity: 4,
                enable_shutdown: true,
            },
        )
    }

    #[test]
    fn lru_evicts_the_least_recently_used_body() {
        let mut lru = LruCache::new(2);
        lru.insert("a".to_string(), Arc::new(vec![1]));
        lru.insert("b".to_string(), Arc::new(vec![2]));
        assert!(lru.get("a").is_some()); // refresh a
        lru.insert("c".to_string(), Arc::new(vec![3]));
        assert!(lru.get("a").is_some());
        assert!(lru.get("b").is_none(), "b was least recently used");
        assert!(lru.get("c").is_some());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_enforces_the_byte_budget() {
        let mut lru = LruCache::new(1000);
        lru.byte_budget = 100;
        // Oversized bodies (over a quarter of the budget) are never cached.
        lru.insert("huge".to_string(), Arc::new(vec![0; 26]));
        assert!(lru.get("huge").is_none());
        assert_eq!(lru.bytes, 0);
        // Within budget, old bodies are evicted to make room by bytes even
        // though the entry-count cap is far away.
        for i in 0..10 {
            lru.insert(format!("k{i}"), Arc::new(vec![0; 20]));
        }
        assert!(lru.bytes <= 100);
        assert_eq!(lru.len(), 5);
        assert!(lru.get("k0").is_none());
        assert!(lru.get("k9").is_some());
        // Replacing a key adjusts the byte account instead of leaking it.
        let before = lru.bytes;
        lru.insert("k9".to_string(), Arc::new(vec![0; 10]));
        assert_eq!(lru.bytes, before - 10);
    }

    #[test]
    fn accept_header_quality_values_pick_the_best_supported_type() {
        assert_eq!(accepted_format("application/json"), Some(Format::Json));
        assert_eq!(
            accepted_format("text/csv;q=0.5, application/json;q=0.9"),
            Some(Format::Json)
        );
        assert_eq!(
            accepted_format("image/png, text/csv;q=0.1"),
            Some(Format::Csv)
        );
        assert_eq!(accepted_format("*/*"), Some(Format::Text));
        assert_eq!(accepted_format("application/json;q=0"), None);
        assert_eq!(accepted_format("image/png"), None);
    }

    #[test]
    fn healthz_reports_ok_and_counters() {
        let router = test_router();
        let response = router.handle(&request("GET /v1/healthz HTTP/1.1\r\n\r\n"));
        assert_eq!(response.status(), 200);
        let body = String::from_utf8_lossy(response.body()).to_string();
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"seed\":1"));
        assert_eq!(router.request_count(), 1);
    }

    #[test]
    fn analysis_routes_render_and_revalidate() {
        let router = test_router();
        let first = router.handle(&request(
            "GET /v1/analyses/validity?format=json HTTP/1.1\r\n\r\n",
        ));
        assert_eq!(first.status(), 200);
        assert_eq!(
            first.header("content-type"),
            Some(tabular::mime::APPLICATION_JSON)
        );
        let etag = first.header("etag").unwrap().to_string();
        let revalidation = router.handle(&request(&format!(
            "GET /v1/analyses/validity?format=json HTTP/1.1\r\nIf-None-Match: {etag}\r\n\r\n"
        )));
        assert_eq!(revalidation.status(), 304);
        assert!(revalidation.body().is_empty());
        assert_eq!(revalidation.header("etag"), Some(etag.as_str()));
        assert_eq!(router.cache_hit_count(), 1);
    }

    #[test]
    fn unknown_routes_and_ids_are_404_and_bad_params_400() {
        let router = test_router();
        assert_eq!(
            router
                .handle(&request("GET /nope HTTP/1.1\r\n\r\n"))
                .status(),
            404
        );
        assert_eq!(
            router
                .handle(&request("GET /v1/analyses/nope HTTP/1.1\r\n\r\n"))
                .status(),
            404
        );
        assert_eq!(
            router
                .handle(&request("GET /v1/analyses/kway?k=3 HTTP/1.1\r\n\r\n"))
                .status(),
            400
        );
        assert_eq!(
            router
                .handle(&request("GET /v1/report?format=yaml HTTP/1.1\r\n\r\n"))
                .status(),
            400
        );
        assert_eq!(
            router
                .handle(&request("POST /v1/report HTTP/1.1\r\n\r\n"))
                .status(),
            405
        );
        assert_eq!(
            router
                .handle(&request(
                    "GET /v1/report HTTP/1.1\r\nAccept: image/png\r\n\r\n"
                ))
                .status(),
            406
        );
    }

    #[test]
    fn shutdown_route_raises_the_flag() {
        let router = test_router();
        assert!(!router.shutdown_flag().load(Ordering::SeqCst));
        assert_eq!(
            router
                .handle(&request("GET /v1/shutdown HTTP/1.1\r\n\r\n"))
                .status(),
            405
        );
        let response = router.handle(&request("POST /v1/shutdown HTTP/1.1\r\n\r\n"));
        assert_eq!(response.status(), 200);
        assert!(router.shutdown_flag().load(Ordering::SeqCst));
    }
}
