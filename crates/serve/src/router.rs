//! Registry-driven routing over a [`StudyRegistry`] of named datasets.
//!
//! Routes:
//!
//! | Route | Serves |
//! |---|---|
//! | `GET /v1/healthz` | liveness + registry/cache statistics (JSON) |
//! | `GET /v1/analyses` | the analysis registry |
//! | `GET /v1/analyses/{id}` | one analysis; query params select its config |
//! | `GET /v1/report` | the combined report |
//! | `GET /v1/datasets` | the dataset registry |
//! | `PUT/POST /v1/datasets/{name}` | ingest an NVD XML feed body, or register `?seed=N` |
//! | `DELETE /v1/datasets/{name}` | unregister a dataset (when enabled) |
//! | `POST /v1/shutdown` | graceful shutdown (when enabled) |
//!
//! Every analysis route accepts `?dataset={name}` to select which
//! registered dataset it queries; omitting it serves the pinned default
//! dataset, byte-for-byte identical to the single-dataset server of PR 3.
//! Feed bodies stream through [`FeedIngester`] — chunked transfer bodies
//! of any size are ingested without ever being buffered whole.
//!
//! Output format negotiation follows `?format=` first, then the `Accept`
//! header, defaulting to the paper-style text rendering — the same default
//! as the `osdiv` CLI, and the rendered bytes are identical to
//! `osdiv <analysis> --format <f>` because both sides call
//! [`osdiv_core::analysis_sections`].
//!
//! Responses carry a strong `ETag` keyed on the dataset **name**, the
//! served seed and the body hash; `If-None-Match` revalidation answers 304
//! without re-rendering. Rendered bodies live in a bounded LRU **with
//! their precomputed ETag**, so cache hits hash nothing.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use osdiv_core::obs::{self, SpanKind};
use osdiv_core::{
    analysis_sections, registry_section, renderer, AnalysisError, AnalysisId, EventLog, Format,
    JsonLine, Params, Section, Study,
};
use osdiv_registry::{
    DatasetSource, FeedIngester, IngestBudget, IngestError, RegistryError, RegistryOptions,
    StudyRegistry, DEFAULT_DATASET,
};
use parking_lot::Mutex;
use tabular::TextTable;

use crate::http::{Body, BodyError, EmptyBody, Request, Response};
use crate::metrics::{RouteClass, ServeMetrics, Stage};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// The seed the default dataset was generated from (keys the ETags and
    /// is reported by `/v1/healthz`).
    pub seed: u64,
    /// Capacity of the rendered-response LRU cache.
    pub cache_capacity: usize,
    /// Whether `POST /v1/shutdown` is honoured (403 otherwise).
    pub enable_shutdown: bool,
    /// Whether `DELETE /v1/datasets/{name}` is honoured (403 otherwise —
    /// gated like shutdown, since deletion is destructive).
    pub enable_dataset_delete: bool,
    /// Budget every feed ingestion runs under.
    pub ingest_budget: IngestBudget,
    /// Bearer token required on mutating dataset routes (`PUT`/`POST`/
    /// `DELETE /v1/datasets/{name}`). `None` (the default) leaves them
    /// open — the pre-0.7 behaviour. Checked before any body byte is
    /// consumed: an unauthorized upload is refused outright and its body
    /// discarded by the server's drain path.
    pub ingest_token: Option<String>,
    /// Structured JSON-lines sink for per-request access lines and
    /// dataset-lifecycle events (`--access-log`). `None` (the default):
    /// no event logging.
    pub access_log: Option<Arc<EventLog>>,
    /// Requests whose total handling time reaches this many microseconds
    /// are logged as `slow_request` instead of `request` events.
    pub slow_request_us: u64,
    /// Whether the `GET /v1/debug/*` introspection routes are honoured
    /// (403 otherwise — span labels and tenant provenance are operator
    /// data, gated like shutdown). When [`RouterOptions::ingest_token`] is
    /// set, the debug routes require the same bearer token.
    pub enable_debug: bool,
}

/// Default slow-request promotion threshold: 500ms.
pub const DEFAULT_SLOW_REQUEST_US: u64 = 500_000;

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            seed: 2011,
            cache_capacity: 128,
            enable_shutdown: false,
            enable_dataset_delete: false,
            ingest_budget: IngestBudget::default(),
            ingest_token: None,
            access_log: None,
            slow_request_us: DEFAULT_SLOW_REQUEST_US,
            enable_debug: false,
        }
    }
}

/// Per-request trace context: the id echoed as `X-Request-Id`, the
/// resolved route class and the per-stage timings the access log reports.
/// Minted by [`Router::begin_trace`]; the router fills the route and its
/// own stage spans, the server fills `parse_us`/`write_us` (spans only it
/// can see).
#[derive(Debug)]
pub struct RequestTrace {
    /// The request id, echoed to the client as `X-Request-Id`.
    pub id: String,
    /// The numeric form of the request id — the flight recorder's join
    /// key: every span recorded while this request is handled carries it,
    /// so a `/v1/debug/spans` dump joins back to `X-Request-Id` via
    /// [`osdiv_core::obs::format_trace_id`].
    pub trace_key: u64,
    /// The route class the request resolved to.
    pub route: RouteClass,
    /// Microseconds parsing the request head (set by the server).
    pub parse_us: u64,
    /// Microseconds in the rendered-body cache lookup.
    pub cache_us: u64,
    /// Microseconds running analyses and rendering the document.
    pub render_us: u64,
    /// Microseconds writing the response bytes (set by the server).
    pub write_us: u64,
    /// Whether the response body came from the rendered-body cache.
    pub cache_hit: bool,
}

/// Microseconds elapsed since `started`, saturating.
pub(crate) fn micros_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A rendered body plus its precomputed strong ETag. Hashing happens once,
/// at insert time — revalidations and cache hits reuse the stored tag
/// instead of re-hashing multi-megabyte documents per request.
#[derive(Debug)]
struct CachedBody {
    body: Vec<u8>,
    etag: String,
}

/// A bounded LRU of rendered response bodies. Bounded twice: by entry
/// count *and* by total body bytes — query parameters are attacker-
/// controlled and some configurations (wide temporal year ranges) render
/// multi-megabyte documents, so an entry-count bound alone would let a
/// crafted request series pin unbounded memory.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    byte_budget: usize,
    bytes: usize,
    map: HashMap<String, Arc<CachedBody>>,
    order: VecDeque<String>,
}

impl LruCache {
    /// Total body bytes the cache may hold.
    const BYTE_BUDGET: usize = 32 * 1024 * 1024;

    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            byte_budget: Self::BYTE_BUDGET,
            bytes: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<CachedBody>> {
        let hit = self.map.get(key).cloned()?;
        if let Some(position) = self.order.iter().position(|k| k == key) {
            let key = self.order.remove(position).expect("position is in range");
            self.order.push_back(key);
        }
        Some(hit)
    }

    fn insert(&mut self, key: String, value: Arc<CachedBody>) {
        // A body that would monopolize the budget is served uncached.
        if self.capacity == 0 || value.body.len() > self.byte_budget / 4 {
            return;
        }
        if let Some(replaced) = self.map.insert(key.clone(), Arc::clone(&value)) {
            self.bytes = self.bytes - replaced.body.len() + value.body.len();
        } else {
            self.bytes += value.body.len();
            self.order.push_back(key);
        }
        while self.order.len() > self.capacity || self.bytes > self.byte_budget {
            let Some(evicted) = self.order.pop_front() else {
                break;
            };
            if let Some(entry) = self.map.remove(&evicted) {
                self.bytes -= entry.body.len();
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The request handler shared by every worker thread.
#[derive(Debug)]
pub struct Router {
    registry: Arc<StudyRegistry>,
    options: RouterOptions,
    cache: Mutex<LruCache>,
    metrics: Arc<ServeMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl Router {
    /// Wraps a dataset registry (whose [`DEFAULT_DATASET`] should be
    /// registered and pre-warmed).
    pub fn new(registry: Arc<StudyRegistry>, options: RouterOptions) -> Self {
        let cache = Mutex::new(LruCache::new(options.cache_capacity));
        Router {
            registry,
            options,
            cache,
            metrics: Arc::new(ServeMetrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Convenience for the single-dataset shape of PR 3: wraps `study` in
    /// a fresh registry as the pinned default dataset (with default
    /// [`RegistryOptions`]).
    pub fn with_study(study: Arc<Study>, options: RouterOptions) -> Self {
        let registry = Arc::new(StudyRegistry::with_default(
            study,
            options.seed,
            RegistryOptions::default(),
        ));
        Router::new(registry, options)
    }

    /// The dataset registry the router serves.
    pub fn registry(&self) -> &Arc<StudyRegistry> {
        &self.registry
    }

    /// The flag `POST /v1/shutdown` raises; the server's accept loop (and
    /// [`crate::server::ServerHandle::shutdown`]) watch the same flag.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The serving counters, shared with the [`crate::Server`] accept
    /// loop and exposed at `GET /metrics`.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The configured structured event log, if any (shared with the
    /// server's per-request access logging).
    pub fn access_log(&self) -> Option<&Arc<EventLog>> {
        self.options.access_log.as_ref()
    }

    /// The slow-request promotion threshold in microseconds.
    pub fn slow_request_us(&self) -> u64 {
        self.options.slow_request_us
    }

    /// Total requests handled.
    pub fn request_count(&self) -> u64 {
        self.metrics.requests_served()
    }

    /// Responses served straight from the rendered-body cache.
    pub fn cache_hit_count(&self) -> u64 {
        self.metrics.cache_hits()
    }

    /// Routes a body-less request (see [`Router::handle_with_body`]).
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_with_body(request, &mut EmptyBody)
    }

    /// Whether this request's route streams the request body itself (feed
    /// ingestion). The server drains every other route's body *before*
    /// routing, so an oversized upload is rejected before any side effect
    /// runs.
    pub fn consumes_body(&self, request: &Request) -> bool {
        (request.method == "PUT" || request.method == "POST")
            && single_segment(&request.path, "/v1/datasets/").is_some()
            && !request.query.iter().any(|(key, _)| key == "seed")
            // An unauthorized upload never reaches the ingester: the
            // route does not consume the body, so the server's bounded
            // drain (and lame-duck close) disposes of it and the 401
            // goes out without reading a single feed byte.
            && self.ingest_authorized(request)
    }

    /// Whether the request may mutate datasets: no token configured, or a
    /// matching `Authorization: Bearer <token>` header presented.
    fn ingest_authorized(&self, request: &Request) -> bool {
        let Some(expected) = self.options.ingest_token.as_deref() else {
            return true;
        };
        request
            .header("authorization")
            .and_then(|value| value.strip_prefix("Bearer "))
            .map(str::trim)
            == Some(expected)
    }

    /// Routes one parsed request to a response, streaming the request body
    /// where the route consumes one (feed ingestion). Never panics on
    /// client input; analysis configuration errors surface as 400s.
    ///
    /// Mints a request trace, records the route-class latency histogram
    /// and echoes `X-Request-Id` — the standalone-router path. The server
    /// calls [`Router::handle_traced`] instead and records the route
    /// total itself, so parse and response-write time count too.
    pub fn handle_with_body(&self, request: &Request, body: &mut dyn Body) -> Response {
        let mut trace = self.begin_trace();
        let started = Instant::now();
        let response = self.handle_traced(request, body, &mut trace);
        self.metrics
            .record_route_us(trace.route, micros_since(started));
        response
    }

    /// A fresh trace with a minted request id (all timings zero).
    pub fn begin_trace(&self) -> RequestTrace {
        let (id, trace_key) = self.metrics.mint_traced_request_id();
        RequestTrace {
            id,
            trace_key,
            route: RouteClass::Other,
            parse_us: 0,
            cache_us: 0,
            render_us: 0,
            write_us: 0,
            cache_hit: false,
        }
    }

    /// Routes one request under an externally owned trace: resolves the
    /// route class, records the router-side stage histograms into the
    /// trace, and stamps `X-Request-Id` on the response. Does **not**
    /// record the route-class latency histogram — the caller owns the
    /// request's full timing span.
    pub fn handle_traced(
        &self,
        request: &Request,
        body: &mut dyn Body,
        trace: &mut RequestTrace,
    ) -> Response {
        trace.route = RouteClass::classify(&request.method, &request.path);
        let response = self.route_request(request, body, trace);
        response.with_header("X-Request-Id", trace.id.clone())
    }

    fn route_request(
        &self,
        request: &Request,
        body: &mut dyn Body,
        trace: &mut RequestTrace,
    ) -> Response {
        self.metrics.record_request();
        let path = request.path.as_str();
        match path {
            "/metrics" => match self.check_get(request) {
                Err(response) => response,
                Ok(()) => {
                    let mut body = self.metrics.render();
                    body.push_str(&self.saturation_metrics());
                    if let Some(store) = self.registry.persistence() {
                        body.push_str(&persistence_metrics(store.metrics()));
                    }
                    Response::new(200).with_body("text/plain; version=0.0.4", body.into_bytes())
                }
            },
            "/v1/debug/spans" | "/v1/debug/registry" | "/v1/debug/pool" => {
                match self.check_get(request) {
                    Err(response) => response,
                    Ok(()) => self.debug_route(path, request),
                }
            }
            "/v1/shutdown" => {
                if request.method != "POST" {
                    return method_not_allowed("POST");
                }
                if !self.options.enable_shutdown {
                    return Response::text(
                        403,
                        "shutdown over HTTP is disabled (start with --enable-shutdown)",
                    );
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Response::new(200).with_body(
                    tabular::mime::APPLICATION_JSON,
                    b"{\"status\":\"shutting down\"}\n".to_vec(),
                )
            }
            "/v1/healthz" => match self.check_get(request) {
                Err(response) => response,
                Ok(()) => self.healthz(),
            },
            "/v1/datasets" => match self.check_get(request) {
                Err(response) => response,
                Ok(()) => self.list_datasets(request),
            },
            "/v1/report" | "/v1/analyses" => match self.check_get(request) {
                Err(response) => response,
                Ok(()) => self.render_route(request, trace),
            },
            _ => {
                if let Some(name) = single_segment(path, "/v1/datasets/") {
                    return self.dataset_route(name, request, body);
                }
                match single_segment(path, "/v1/analyses/") {
                    Some(name) => match self.check_get(request) {
                        Err(response) => response,
                        Ok(()) => match AnalysisId::from_name(name) {
                            Ok(_) => self.render_route(request, trace),
                            Err(error) => Response::text(404, error.to_string()),
                        },
                    },
                    None => Response::text(404, format!("no route for {path}")),
                }
            }
        }
    }

    /// The `GET /v1/debug/*` surface: gated behind `--enable-debug` and,
    /// when an ingest token is configured, the same bearer token — span
    /// labels and tenant provenance are operator data. Every view answers
    /// in one pass over a bounded structure (see [`crate::debug`]).
    fn debug_route(&self, path: &str, request: &Request) -> Response {
        if !self.options.enable_debug {
            return Response::text(
                403,
                "debug introspection over HTTP is disabled (start with --enable-debug)",
            );
        }
        if !self.ingest_authorized(request) {
            return Response::text(401, "missing or invalid ingestion token")
                .with_header("WWW-Authenticate", "Bearer realm=\"osdiv-ingest\"");
        }
        let body = match path {
            "/v1/debug/spans" => crate::debug::spans_json(),
            "/v1/debug/registry" => crate::debug::registry_json(&self.registry),
            _ => crate::debug::pool_json(&self.metrics),
        };
        Response::new(200)
            .with_body(tabular::mime::APPLICATION_JSON, body.into_bytes())
            .with_header("Cache-Control", "no-cache")
    }

    /// The saturation gauges only the router can compute — body-cache
    /// occupancy versus its budgets and tenant lifecycle states —
    /// appended to `GET /metrics` after the [`ServeMetrics`] families.
    fn saturation_metrics(&self) -> String {
        let (cache_entries, cache_bytes, cache_byte_budget, cache_capacity) = {
            let cache = self.cache.lock();
            (
                cache.len() as u64,
                cache.bytes as u64,
                cache.byte_budget as u64,
                cache.capacity as u64,
            )
        };
        let infos = self.registry.list();
        let mut resident = 0u64;
        let mut spilled = 0u64;
        let mut lazy = 0u64;
        let mut evicted = 0u64;
        for info in &infos {
            if info.resident {
                resident += 1;
            } else if info.spilled {
                spilled += 1;
            } else if info.evicted {
                evicted += 1;
            } else {
                lazy += 1;
            }
        }
        let gauges = [
            (
                "osdiv_body_cache_entries",
                "rendered bodies held by the response LRU",
                cache_entries,
            ),
            (
                "osdiv_body_cache_bytes",
                "bytes held by the response LRU",
                cache_bytes,
            ),
            (
                "osdiv_body_cache_byte_budget",
                "byte budget of the response LRU",
                cache_byte_budget,
            ),
            (
                "osdiv_body_cache_capacity",
                "entry capacity of the response LRU",
                cache_capacity,
            ),
            (
                "osdiv_datasets_total",
                "datasets registered (every lifecycle state)",
                infos.len() as u64,
            ),
            (
                "osdiv_datasets_resident",
                "datasets with a built session in memory",
                resident,
            ),
            (
                "osdiv_datasets_spilled",
                "datasets evicted to their durable snapshot",
                spilled,
            ),
            (
                "osdiv_datasets_lazy",
                "datasets that rebuild on demand (unbuilt specs)",
                lazy,
            ),
            (
                "osdiv_datasets_evicted",
                "datasets evicted beyond recovery (reads answer 410)",
                evicted,
            ),
            (
                "osdiv_datasets_resident_bytes",
                "estimated bytes of every resident session",
                self.registry.resident_bytes() as u64,
            ),
            (
                "osdiv_datasets_byte_budget",
                "resident-byte budget that triggers eviction",
                self.registry.options().max_total_bytes as u64,
            ),
        ];
        let mut body = String::with_capacity(2048);
        for (name, help, value) in gauges {
            body.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        body
    }

    /// Emits one structured event line when an access log is configured
    /// (`build` fills in the fields after the `ts`/`event` tags).
    fn emit_event(&self, event: &str, build: impl FnOnce(&mut JsonLine)) {
        if let Some(log) = &self.options.access_log {
            let mut line = JsonLine::new();
            line.u64_field("ts", obs::unix_micros());
            line.str_field("event", event);
            build(&mut line);
            log.emit(&line.finish());
        }
    }

    fn check_get(&self, request: &Request) -> Result<(), Response> {
        if request.method == "GET" || request.method == "HEAD" {
            Ok(())
        } else {
            Err(method_not_allowed("GET, HEAD"))
        }
    }

    fn healthz(&self) -> Response {
        let memoized = self
            .registry
            .resident(DEFAULT_DATASET)
            .map(|study| study.cached_ids().len())
            .unwrap_or(0);
        let body = format!(
            "{{\"status\":\"ok\",\"seed\":{},\"analyses\":{},\"memoized\":{},\"datasets\":{},\"dataset_bytes\":{},\"cached_responses\":{},\"requests\":{},\"cache_hits\":{}}}\n",
            self.options.seed,
            AnalysisId::ALL.len(),
            memoized,
            self.registry.len(),
            self.registry.resident_bytes(),
            self.cache.lock().len(),
            self.request_count(),
            self.cache_hit_count(),
        );
        Response::new(200).with_body(tabular::mime::APPLICATION_JSON, body.into_bytes())
    }

    /// `GET /v1/datasets`: the dataset registry as a negotiated document
    /// (uncached: the listing is tiny and changes with every mutation).
    fn list_datasets(&self, request: &Request) -> Response {
        let (format, _, params) = match negotiate(request) {
            Ok(split) => split,
            Err(response) => return response,
        };
        if let Err(error) = params.check_known(&[]) {
            return error_response(&error);
        }
        let mut table = TextTable::new(["Dataset", "Kind", "Detail", "Resident bytes", "Pinned"]);
        for info in self.registry.list() {
            let detail = match &info.source {
                DatasetSource::Synthetic { seed } => format!("seed={seed}"),
                DatasetSource::Ingested {
                    entries,
                    skipped,
                    feed_bytes,
                } => format!("entries={entries} skipped={skipped} feed_bytes={feed_bytes}"),
            };
            let kind = match (&info.source, info.resident) {
                (_, true) => info.source.kind().to_string(),
                // A non-resident synthetic spec rebuilds on demand; a
                // non-resident ingested dataset reloads from its snapshot
                // when one exists (spilled) and is irrecoverably gone
                // otherwise (evicted).
                (DatasetSource::Synthetic { .. }, false) => {
                    format!("{} (lazy)", info.source.kind())
                }
                (DatasetSource::Ingested { .. }, false) if info.spilled => {
                    format!("{} (spilled)", info.source.kind())
                }
                (DatasetSource::Ingested { .. }, false) => {
                    format!("{} (evicted)", info.source.kind())
                }
            };
            table.push_row([
                info.name.clone(),
                kind,
                detail,
                info.resident_bytes.to_string(),
                if info.pinned { "yes" } else { "no" }.to_string(),
            ]);
        }
        let document = renderer(format).document(&[Section::table("Datasets", table)]);
        Response::new(200)
            .with_body(format.content_type(), document.into_bytes())
            .with_header("Cache-Control", "no-cache")
    }

    /// `PUT`/`POST`/`DELETE`/`GET /v1/datasets/{name}`.
    fn dataset_route(&self, name: &str, request: &Request, body: &mut dyn Body) -> Response {
        let mutating = matches!(request.method.as_str(), "PUT" | "POST" | "DELETE");
        if mutating && !self.ingest_authorized(request) {
            return Response::text(401, "missing or invalid ingestion token")
                .with_header("WWW-Authenticate", "Bearer realm=\"osdiv-ingest\"");
        }
        match request.method.as_str() {
            "PUT" | "POST" => self.create_dataset(name, request, body),
            "DELETE" => self.delete_dataset(name),
            "GET" | "HEAD" => self.dataset_info(name),
            _ => method_not_allowed("GET, HEAD, PUT, POST, DELETE"),
        }
    }

    /// Registers a dataset: `?seed=N` registers a lazily built synthetic
    /// dataset; otherwise the request body is streamed through the feed
    /// ingester. 201 on success.
    fn create_dataset(&self, name: &str, request: &Request, body: &mut dyn Body) -> Response {
        if let Err(error) = osdiv_registry::validate_name(name) {
            return registry_error_response(&error);
        }
        let mut params = Params::new();
        for (key, value) in &request.query {
            params.insert(key.clone(), value.clone());
        }
        let seed = match params.take("seed") {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(seed) => Some(seed),
                Err(_) => return Response::text(400, format!("error: invalid seed {raw:?}")),
            },
        };
        if let Err(error) = params.check_known(&["seed"]) {
            return error_response(&error);
        }

        if let Some(seed) = seed {
            if let Err(error) = self.registry.register_synthetic(name, seed) {
                return registry_error_response(&error);
            }
            self.emit_event("dataset_registered", |line| {
                line.str_field("dataset", name);
                line.u64_field("seed", seed);
            });
            return Response::new(201).with_body(
                tabular::mime::APPLICATION_JSON,
                format!("{{\"dataset\":{name:?},\"source\":\"synthetic\",\"seed\":{seed}}}\n")
                    .into_bytes(),
            );
        }

        // Reject a taken name before streaming: ingesting a multi-megabyte
        // feed only to discover the 409 at the final insert would be a
        // free CPU-amplification vector. The insert below still settles
        // the race against a concurrent registration.
        if self.registry.occupied(name) {
            return registry_error_response(&RegistryError::AlreadyExists {
                name: name.to_string(),
            });
        }

        // Journal the raw feed chunks as they stream: a crash anywhere
        // between here and the durable snapshot leaves a replayable
        // record of the upload instead of nothing. The journal is
        // deleted once the snapshot is on disk (or the ingestion fails).
        let mut journal = match self.registry.persistence() {
            Some(store) if !store.read_only() => match store.journal(name) {
                Ok(journal) => Some(journal),
                Err(error) => {
                    return registry_error_response(&RegistryError::Persistence {
                        name: name.to_string(),
                        detail: error.to_string(),
                    })
                }
            },
            _ => None,
        };
        let retire_journal = |journal: &mut Option<osdiv_registry::JournalWriter>| {
            if let Some(journal) = journal.take() {
                let _ = journal.finish();
            }
        };

        // Stream the feed body through the ingester, chunk by chunk. The
        // journal appends aggregate into one flight-recorder span (per-
        // chunk spans would flood the ring on large uploads).
        let mut journal_first_us: Option<u64> = None;
        let mut journal_spent_us: u64 = 0;
        let streamed = (|| -> Result<_, Response> {
            let mut ingester = FeedIngester::new(self.options.ingest_budget.clone())
                .with_queue_gauge(self.metrics.ingest_queue_depth());
            let mut chunk = Vec::new();
            loop {
                match body.next_chunk(&mut chunk) {
                    Ok(true) => {
                        if let Some(journal) = journal.as_mut() {
                            if journal_first_us.is_none() {
                                journal_first_us = Some(obs::monotonic_us());
                            }
                            let append_started = Instant::now();
                            let appended = journal.append(&chunk);
                            let spent_us = micros_since(append_started);
                            journal_spent_us = journal_spent_us.saturating_add(spent_us);
                            if let Some(store) = self.registry.persistence() {
                                store.metrics().record_journal_append_us(spent_us);
                            }
                            if let Err(error) = appended {
                                return Err(registry_error_response(&RegistryError::Persistence {
                                    name: name.to_string(),
                                    detail: format!("journal write failed: {error}"),
                                }));
                            }
                        }
                        if let Err(error) = ingester.push(&chunk) {
                            return Err(ingest_error_response(&error));
                        }
                    }
                    Ok(false) => break,
                    Err(BodyError::Violation(violation)) => return Err(Response::from(&violation)),
                    Err(BodyError::TooLarge { limit }) => {
                        return Err(Response::text(
                            413,
                            format!("request body exceeds {limit} bytes"),
                        ))
                    }
                    Err(BodyError::Io(_)) => {
                        return Err(Response::text(400, "request body ended prematurely"))
                    }
                }
            }
            ingester
                .finish()
                .map_err(|error| ingest_error_response(&error))
        })();
        let outcome = match streamed {
            Ok(outcome) => outcome,
            Err(response) => {
                // A failed ingestion holds nothing a replay should trust.
                retire_journal(&mut journal);
                return response;
            }
        };
        if let Some(started_us) = journal_first_us {
            obs::record_span(SpanKind::JournalAppend, name, started_us, journal_spent_us);
        }
        let (entries, skipped, feed_bytes) = (outcome.entries, outcome.skipped, outcome.feed_bytes);
        let stages = outcome.stages;
        self.metrics
            .record_stage_us(Stage::IngestCarve, stages.carve_us);
        self.metrics
            .record_stage_us(Stage::IngestParse, stages.parse_us);
        self.metrics
            .record_stage_us(Stage::IngestInsert, stages.insert_us);
        let study = Arc::new(outcome.into_study());
        let estimated_bytes = study.estimated_bytes();
        let source = DatasetSource::Ingested {
            entries,
            skipped,
            feed_bytes,
        };
        if let Err(error) = self.registry.insert(name, study, source) {
            retire_journal(&mut journal);
            return registry_error_response(&error);
        }
        // insert() wrote the durable snapshot; the journal is redundant.
        retire_journal(&mut journal);
        self.emit_event("dataset_ingested", |line| {
            line.str_field("dataset", name);
            line.u64_field("entries", entries as u64);
            line.u64_field("skipped", skipped as u64);
            line.u64_field("feed_bytes", feed_bytes as u64);
            line.u64_field("carve_us", stages.carve_us);
            line.u64_field("parse_us", stages.parse_us);
            line.u64_field("insert_us", stages.insert_us);
        });
        Response::new(201).with_body(
            tabular::mime::APPLICATION_JSON,
            format!(
                "{{\"dataset\":{name:?},\"source\":\"ingested\",\"entries\":{entries},\"skipped\":{skipped},\"feed_bytes\":{feed_bytes},\"estimated_bytes\":{estimated_bytes}}}\n"
            )
            .into_bytes(),
        )
    }

    fn delete_dataset(&self, name: &str) -> Response {
        if !self.options.enable_dataset_delete {
            return Response::text(
                403,
                "dataset deletion over HTTP is disabled (start with --enable-dataset-delete)",
            );
        }
        if name == DEFAULT_DATASET {
            return Response::text(403, "the default dataset cannot be deleted");
        }
        match self.registry.remove(name) {
            Ok(()) => {
                self.emit_event("dataset_deleted", |line| {
                    line.str_field("dataset", name);
                });
                Response::new(200).with_body(
                    tabular::mime::APPLICATION_JSON,
                    format!("{{\"dataset\":{name:?},\"status\":\"deleted\"}}\n").into_bytes(),
                )
            }
            Err(error) => registry_error_response(&error),
        }
    }

    fn dataset_info(&self, name: &str) -> Response {
        match self.registry.list().into_iter().find(|i| i.name == name) {
            None => registry_error_response(&RegistryError::NotFound {
                name: name.to_string(),
            }),
            Some(info) => {
                let detail = match &info.source {
                    DatasetSource::Synthetic { seed } => format!("\"seed\":{seed}"),
                    DatasetSource::Ingested {
                        entries,
                        skipped,
                        feed_bytes,
                    } => format!(
                        "\"entries\":{entries},\"skipped\":{skipped},\"feed_bytes\":{feed_bytes}"
                    ),
                };
                Response::new(200).with_body(
                    tabular::mime::APPLICATION_JSON,
                    format!(
                        "{{\"dataset\":{:?},\"source\":{:?},{detail},\"resident\":{},\"resident_bytes\":{},\"pinned\":{},\"spilled\":{}}}\n",
                        info.name,
                        info.source.kind(),
                        info.resident,
                        info.resident_bytes,
                        info.pinned,
                        info.spilled,
                    )
                    .into_bytes(),
                )
            }
        }
    }

    /// Serves `/v1/report`, `/v1/analyses` and `/v1/analyses/{id}` —
    /// everything that renders sections in a negotiated format with ETag
    /// revalidation and the LRU body cache. `?dataset=` selects the
    /// queried dataset (default: the pinned boot dataset).
    fn render_route(&self, request: &Request, trace: &mut RequestTrace) -> Response {
        let (format, dataset, params) = match negotiate(request) {
            Ok(split) => split,
            Err(response) => return response,
        };
        // Resolve the dataset *before* consulting the cache: a deleted,
        // evicted or re-registered name must answer its registry status
        // (404/410) or fresh bytes — never a previous tenant's cached
        // body. The registration generation in the key makes reused names
        // miss stale entries, which then age out of the LRU.
        let (study, generation) = match self.registry.get_tagged(&dataset) {
            Ok(tagged) => tagged,
            Err(error) => return registry_error_response(&error),
        };
        let key = format!(
            "{}\u{1}{}\u{1}{}?{}#{}",
            dataset,
            generation,
            request.path,
            params.canonical(),
            format.name()
        );
        let lookup_started = Instant::now();
        let lookup_started_us = obs::monotonic_us();
        let cached = match self.cache.lock().get(&key) {
            Some(hit) => {
                self.metrics.record_cache_hit();
                Some(hit)
            }
            None => {
                self.metrics.record_cache_miss();
                None
            }
        };
        trace.cache_us = micros_since(lookup_started);
        trace.cache_hit = cached.is_some();
        self.metrics
            .record_stage_us(Stage::CacheLookup, trace.cache_us);
        obs::record_span(
            SpanKind::CacheLookup,
            &dataset,
            lookup_started_us,
            trace.cache_us,
        );
        let cached = match cached {
            Some(cached) => cached,
            None => {
                let render_started = Instant::now();
                let render_started_us = obs::monotonic_us();
                let rendered = self.build_body(&study, &request.path, format, &params);
                trace.render_us = micros_since(render_started);
                self.metrics.record_stage_us(Stage::Render, trace.render_us);
                obs::record_span(
                    SpanKind::Render,
                    &dataset,
                    render_started_us,
                    trace.render_us,
                );
                match rendered {
                    Ok(body) => {
                        let etag = format!(
                            "\"{:x}-{}-{:016x}\"",
                            self.options.seed,
                            dataset,
                            fnv1a(&body)
                        );
                        let cached = Arc::new(CachedBody { body, etag });
                        self.cache.lock().insert(key, Arc::clone(&cached));
                        cached
                    }
                    Err(error) => return error_response(&error),
                }
            }
        };
        if request
            .header("if-none-match")
            .map(|held| held == cached.etag || held == "*")
            .unwrap_or(false)
        {
            return Response::new(304).with_header("ETag", cached.etag.clone());
        }
        Response::new(200)
            .with_body(format.content_type(), cached.body.clone())
            .with_header("ETag", cached.etag.clone())
            .with_header("Cache-Control", "no-cache")
    }

    fn build_body(
        &self,
        study: &Study,
        path: &str,
        format: Format,
        params: &Params,
    ) -> Result<Vec<u8>, AnalysisError> {
        let rendered = match path {
            "/v1/report" => {
                params.check_known(&[])?;
                study.report(format)?
            }
            "/v1/analyses" => {
                params.check_known(&[])?;
                renderer(format).document(&[registry_section()])
            }
            _ => {
                let name = path
                    .strip_prefix("/v1/analyses/")
                    .expect("render_route only sees analysis paths");
                let id = AnalysisId::from_name(name)?;
                let sections = analysis_sections(study, id, params)?;
                renderer(format).document(&sections)
            }
        };
        Ok(rendered.into_bytes())
    }
}

/// The single path segment after `prefix` (`None` for empty or nested).
fn single_segment<'a>(path: &'a str, prefix: &str) -> Option<&'a str> {
    let name = path.strip_prefix(prefix)?;
    (!name.is_empty() && !name.contains('/')).then_some(name)
}

fn method_not_allowed(allow: &str) -> Response {
    Response::text(405, format!("method not allowed (allow: {allow})")).with_header("Allow", allow)
}

fn error_response(error: &AnalysisError) -> Response {
    Response::text(400, format!("error: {error}"))
}

/// Maps a registry failure to its HTTP status: 404 unknown, 409 taken,
/// 410 evicted, 507 over capacity, 400 invalid name, 500 persistence.
fn registry_error_response(error: &RegistryError) -> Response {
    let status = match error {
        RegistryError::NotFound { .. } => 404,
        RegistryError::AlreadyExists { .. } => 409,
        RegistryError::Evicted { .. } => 410,
        RegistryError::CapacityExceeded { .. } => 507,
        RegistryError::InvalidName { .. } => 400,
        RegistryError::Persistence { .. } => 500,
    };
    Response::text(status, format!("error: {error}"))
}

/// The persistence counters appended to `GET /metrics` when the registry
/// has durable storage attached (same exposition format as
/// [`ServeMetrics::render`]).
fn persistence_metrics(metrics: &osdiv_registry::PersistMetrics) -> String {
    let counters = [
        (
            "osdiv_snapshot_writes",
            "tenant snapshots written to the data directory",
            metrics.snapshot_writes(),
        ),
        (
            "osdiv_snapshot_loads",
            "tenant snapshots read back into live sessions",
            metrics.snapshot_loads(),
        ),
        (
            "osdiv_spills",
            "evictions that kept the snapshot and dropped only memory",
            metrics.spills(),
        ),
        (
            "osdiv_journal_replays",
            "orphaned ingestion journals replayed at boot",
            metrics.journal_replays(),
        ),
        (
            "osdiv_journal_truncations",
            "journal replays that truncated a torn tail",
            metrics.journal_truncations(),
        ),
    ];
    let mut body = String::with_capacity(512);
    for (name, help, value) in counters {
        body.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }
    let latencies = [
        (
            "osdiv_snapshot_write_duration_seconds",
            "latency of durable snapshot writes (temp file + rename)",
            metrics.snapshot_write_latency().snapshot(),
        ),
        (
            "osdiv_journal_append_duration_seconds",
            "latency of ingestion-journal record appends",
            metrics.journal_append_latency().snapshot(),
        ),
    ];
    for (name, help, snapshot) in latencies {
        if snapshot.is_empty() {
            continue;
        }
        body.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        snapshot.render_prometheus(name, "", &mut body);
    }
    body
}

/// Maps an ingestion failure: budget violations are 413, malformed feeds
/// 400 (see [`IngestError::http_status`]).
fn ingest_error_response(error: &IngestError) -> Response {
    Response::text(error.http_status(), format!("error: {error}"))
}

/// Splits a request into the negotiated output format, the selected
/// dataset and the analysis parameters: `?format=` wins over the `Accept`
/// header, `?dataset=` defaults to [`DEFAULT_DATASET`]. Every other query
/// key is handed to the analysis configuration.
fn negotiate(request: &Request) -> Result<(Format, String, Params), Response> {
    let mut params = Params::new();
    for (key, value) in &request.query {
        params.insert(key.clone(), value.clone());
    }
    let dataset = params
        .take("dataset")
        .unwrap_or_else(|| DEFAULT_DATASET.to_string());
    let format_value = params.take("format");
    if let Some(raw) = format_value {
        return match raw.parse::<Format>() {
            Ok(format) => Ok((format, dataset, params)),
            Err(error) => Err(Response::text(400, format!("error: {error}"))),
        };
    }
    match request.header("accept") {
        None => Ok((Format::Text, dataset, params)),
        Some(accept) => match accepted_format(accept) {
            Some(format) => Ok((format, dataset, params)),
            None => Err(Response::text(
                406,
                format!(
                    "none of {accept:?} is supported (offered: text/plain, text/csv, application/json)"
                ),
            )),
        },
    }
}

/// Picks the supported media type with the highest quality value (ties:
/// first listed). An unparsable `q=` counts as 1.
fn accepted_format(accept: &str) -> Option<Format> {
    let mut best: Option<(Format, f64)> = None;
    for item in accept.split(',') {
        let mut pieces = item.split(';');
        let media_type = pieces.next().unwrap_or("").trim();
        let mut quality = 1.0_f64;
        for parameter in pieces {
            if let Some((name, value)) = parameter.split_once('=') {
                if name.trim().eq_ignore_ascii_case("q") {
                    quality = value.trim().parse().unwrap_or(1.0);
                }
            }
        }
        if quality <= 0.0 {
            continue;
        }
        if let Some(format) = Format::from_media_type(media_type) {
            if best.map(|(_, held)| quality > held).unwrap_or(true) {
                best = Some((format, quality));
            }
        }
    }
    best.map(|(format, _)| format)
}

/// FNV-1a over a byte slice (the ETag body hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{BufferedBody, RequestParser};
    use nvd_feed::FeedWriter;
    use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};

    fn request(raw: &str) -> Request {
        RequestParser::new()
            .feed(raw.as_bytes())
            .unwrap()
            .expect("complete request")
    }

    fn test_router() -> Router {
        let dataset = datagen::CalibratedGenerator::new(1).generate();
        let study = Arc::new(Study::from_entries(dataset.entries()));
        Router::with_study(
            study,
            RouterOptions {
                seed: 1,
                cache_capacity: 4,
                enable_shutdown: true,
                enable_dataset_delete: true,
                ..RouterOptions::default()
            },
        )
    }

    fn small_feed() -> Vec<u8> {
        let entries: Vec<_> = (0..6u32)
            .map(|i| {
                VulnerabilityEntry::builder(CveId::new(2006, i + 1))
                    .summary(format!("Buffer overflow number {i} in the TCP/IP stack"))
                    .affects_os(OsDistribution::Debian)
                    .affects_os(OsDistribution::OpenBsd)
                    .build()
                    .unwrap()
            })
            .collect();
        FeedWriter::new()
            .write_to_string(&entries)
            .unwrap()
            .into_bytes()
    }

    #[test]
    fn lru_evicts_the_least_recently_used_body() {
        let entry = |data: Vec<u8>| {
            Arc::new(CachedBody {
                etag: "\"x\"".to_string(),
                body: data,
            })
        };
        let mut lru = LruCache::new(2);
        lru.insert("a".to_string(), entry(vec![1]));
        lru.insert("b".to_string(), entry(vec![2]));
        assert!(lru.get("a").is_some()); // refresh a
        lru.insert("c".to_string(), entry(vec![3]));
        assert!(lru.get("a").is_some());
        assert!(lru.get("b").is_none(), "b was least recently used");
        assert!(lru.get("c").is_some());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_enforces_the_byte_budget() {
        let entry = |data: Vec<u8>| {
            Arc::new(CachedBody {
                etag: "\"x\"".to_string(),
                body: data,
            })
        };
        let mut lru = LruCache::new(1000);
        lru.byte_budget = 100;
        // Oversized bodies (over a quarter of the budget) are never cached.
        lru.insert("huge".to_string(), entry(vec![0; 26]));
        assert!(lru.get("huge").is_none());
        assert_eq!(lru.bytes, 0);
        // Within budget, old bodies are evicted to make room by bytes even
        // though the entry-count cap is far away.
        for i in 0..10 {
            lru.insert(format!("k{i}"), entry(vec![0; 20]));
        }
        assert!(lru.bytes <= 100);
        assert_eq!(lru.len(), 5);
        assert!(lru.get("k0").is_none());
        assert!(lru.get("k9").is_some());
        // Replacing a key adjusts the byte account instead of leaking it.
        let before = lru.bytes;
        lru.insert("k9".to_string(), entry(vec![0; 10]));
        assert_eq!(lru.bytes, before - 10);
    }

    #[test]
    fn accept_header_quality_values_pick_the_best_supported_type() {
        assert_eq!(accepted_format("application/json"), Some(Format::Json));
        assert_eq!(
            accepted_format("text/csv;q=0.5, application/json;q=0.9"),
            Some(Format::Json)
        );
        assert_eq!(
            accepted_format("image/png, text/csv;q=0.1"),
            Some(Format::Csv)
        );
        assert_eq!(accepted_format("*/*"), Some(Format::Text));
        assert_eq!(accepted_format("application/json;q=0"), None);
        assert_eq!(accepted_format("image/png"), None);
    }

    #[test]
    fn healthz_reports_ok_and_counters() {
        let router = test_router();
        let response = router.handle(&request("GET /v1/healthz HTTP/1.1\r\n\r\n"));
        assert_eq!(response.status(), 200);
        let body = String::from_utf8_lossy(response.body()).to_string();
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"seed\":1"));
        assert!(body.contains("\"datasets\":1"));
        assert_eq!(router.request_count(), 1);
    }

    #[test]
    fn analysis_routes_render_and_revalidate() {
        let router = test_router();
        let first = router.handle(&request(
            "GET /v1/analyses/validity?format=json HTTP/1.1\r\n\r\n",
        ));
        assert_eq!(first.status(), 200);
        assert_eq!(
            first.header("content-type"),
            Some(tabular::mime::APPLICATION_JSON)
        );
        let etag = first.header("etag").unwrap().to_string();
        let revalidation = router.handle(&request(&format!(
            "GET /v1/analyses/validity?format=json HTTP/1.1\r\nIf-None-Match: {etag}\r\n\r\n"
        )));
        assert_eq!(revalidation.status(), 304);
        assert!(revalidation.body().is_empty());
        assert_eq!(revalidation.header("etag"), Some(etag.as_str()));
        assert_eq!(router.cache_hit_count(), 1);
    }

    #[test]
    fn explicit_default_dataset_is_byte_identical_and_shares_the_etag() {
        let router = test_router();
        let implicit = router.handle(&request("GET /v1/report?format=csv HTTP/1.1\r\n\r\n"));
        let explicit = router.handle(&request(
            "GET /v1/report?format=csv&dataset=default HTTP/1.1\r\n\r\n",
        ));
        assert_eq!(implicit.body(), explicit.body());
        assert_eq!(implicit.header("etag"), explicit.header("etag"));
        // …and the second request was a cache hit on the same key.
        assert_eq!(router.cache_hit_count(), 1);
    }

    #[test]
    fn feed_bodies_ingest_into_queryable_datasets() {
        let router = test_router();
        let created = router.handle_with_body(
            &request("PUT /v1/datasets/feed HTTP/1.1\r\n\r\n"),
            &mut BufferedBody::new(small_feed()),
        );
        assert_eq!(
            created.status(),
            201,
            "{}",
            String::from_utf8_lossy(created.body())
        );
        assert!(String::from_utf8_lossy(created.body()).contains("\"entries\":6"));

        // Queryable through the analysis routes…
        let table = router.handle(&request(
            "GET /v1/analyses/validity?dataset=feed&format=csv HTTP/1.1\r\n\r\n",
        ));
        assert_eq!(table.status(), 200);
        // …with an ETag distinct from the default dataset's.
        let default_table = router.handle(&request(
            "GET /v1/analyses/validity?format=csv HTTP/1.1\r\n\r\n",
        ));
        assert_ne!(table.header("etag"), default_table.header("etag"));

        // Listed, inspectable, deletable, then cleanly gone.
        let list = router.handle(&request("GET /v1/datasets?format=csv HTTP/1.1\r\n\r\n"));
        assert!(String::from_utf8_lossy(list.body()).contains("feed"));
        let info = router.handle(&request("GET /v1/datasets/feed HTTP/1.1\r\n\r\n"));
        assert_eq!(info.status(), 200);
        assert!(String::from_utf8_lossy(info.body()).contains("\"resident\":true"));
        let deleted = router.handle(&request("DELETE /v1/datasets/feed HTTP/1.1\r\n\r\n"));
        assert_eq!(deleted.status(), 200);
        assert_eq!(
            router
                .handle(&request(
                    "GET /v1/analyses/validity?dataset=feed HTTP/1.1\r\n\r\n"
                ))
                .status(),
            404
        );
    }

    #[test]
    fn cached_bodies_die_with_their_dataset_registration() {
        let router = test_router();
        // Same URL before/after delete: the exact cache key must not
        // resurrect the deleted dataset's body.
        let path = "GET /v1/analyses/validity?dataset=feed&format=csv HTTP/1.1\r\n\r\n";
        router.handle_with_body(
            &request("PUT /v1/datasets/feed HTTP/1.1\r\n\r\n"),
            &mut BufferedBody::new(small_feed()),
        );
        let first = router.handle(&request(path));
        assert_eq!(first.status(), 200);
        let again = router.handle(&request(path));
        assert_eq!(again.body(), first.body(), "second hit is served (cached)");
        router.handle(&request("DELETE /v1/datasets/feed HTTP/1.1\r\n\r\n"));
        assert_eq!(
            router.handle(&request(path)).status(),
            404,
            "a deleted dataset's cached body must not be served"
        );

        // Re-registering the name serves the NEW data, not the old cache
        // entry: same URL, different registration generation.
        let created = router.handle(&request("PUT /v1/datasets/feed?seed=3 HTTP/1.1\r\n\r\n"));
        assert_eq!(created.status(), 201);
        let rebuilt = router.handle(&request(path));
        assert_eq!(rebuilt.status(), 200);
        assert_ne!(
            rebuilt.header("etag"),
            first.header("etag"),
            "the new registration renders fresh bytes with a fresh tag"
        );
    }

    #[test]
    fn synthetic_datasets_register_by_seed() {
        let router = test_router();
        let created = router.handle(&request("PUT /v1/datasets/alt?seed=5 HTTP/1.1\r\n\r\n"));
        assert_eq!(created.status(), 201);
        let body = router.handle(&request(
            "GET /v1/analyses/validity?dataset=alt&format=csv HTTP/1.1\r\n\r\n",
        ));
        assert_eq!(body.status(), 200);
        let default_body = router.handle(&request(
            "GET /v1/analyses/validity?format=csv HTTP/1.1\r\n\r\n",
        ));
        // The calibrated generator reproduces the paper's Table I exactly
        // for any seed, so the *bytes* agree — but the cache entries and
        // ETags are keyed per dataset.
        assert_ne!(body.header("etag"), default_body.header("etag"));
        // Registering the same name again conflicts.
        assert_eq!(
            router
                .handle(&request("PUT /v1/datasets/alt?seed=9 HTTP/1.1\r\n\r\n"))
                .status(),
            409
        );
        // Bad names and bad seeds are 400s.
        assert_eq!(
            router
                .handle(&request("PUT /v1/datasets/BAD?seed=5 HTTP/1.1\r\n\r\n"))
                .status(),
            400
        );
        assert_eq!(
            router
                .handle(&request("PUT /v1/datasets/ok?seed=nope HTTP/1.1\r\n\r\n"))
                .status(),
            400
        );
    }

    #[test]
    fn dataset_deletion_is_gated_and_protects_the_default() {
        let dataset = datagen::CalibratedGenerator::new(1).generate();
        let study = Arc::new(Study::from_entries(dataset.entries()));
        let locked = Router::with_study(
            study,
            RouterOptions {
                seed: 1,
                ..RouterOptions::default()
            },
        );
        assert_eq!(
            locked
                .handle(&request("DELETE /v1/datasets/x HTTP/1.1\r\n\r\n"))
                .status(),
            403
        );
        let router = test_router();
        assert_eq!(
            router
                .handle(&request("DELETE /v1/datasets/default HTTP/1.1\r\n\r\n"))
                .status(),
            403
        );
        assert_eq!(
            router
                .handle(&request("DELETE /v1/datasets/missing HTTP/1.1\r\n\r\n"))
                .status(),
            404
        );
    }

    #[test]
    fn malformed_feeds_and_unknown_datasets_are_client_errors() {
        let router = test_router();
        let bad = router.handle_with_body(
            &request("PUT /v1/datasets/bad HTTP/1.1\r\n\r\n"),
            &mut BufferedBody::new(b"this is not xml at all".to_vec()),
        );
        assert_eq!(bad.status(), 400, "no entry element");
        assert_eq!(
            router
                .handle(&request("GET /v1/report?dataset=nope HTTP/1.1\r\n\r\n"))
                .status(),
            404
        );
    }

    #[test]
    fn unknown_routes_and_ids_are_404_and_bad_params_400() {
        let router = test_router();
        assert_eq!(
            router
                .handle(&request("GET /nope HTTP/1.1\r\n\r\n"))
                .status(),
            404
        );
        assert_eq!(
            router
                .handle(&request("GET /v1/analyses/nope HTTP/1.1\r\n\r\n"))
                .status(),
            404
        );
        assert_eq!(
            router
                .handle(&request("GET /v1/analyses/kway?k=3 HTTP/1.1\r\n\r\n"))
                .status(),
            400
        );
        assert_eq!(
            router
                .handle(&request("GET /v1/report?format=yaml HTTP/1.1\r\n\r\n"))
                .status(),
            400
        );
        assert_eq!(
            router
                .handle(&request("POST /v1/report HTTP/1.1\r\n\r\n"))
                .status(),
            405
        );
        assert_eq!(
            router
                .handle(&request(
                    "GET /v1/report HTTP/1.1\r\nAccept: image/png\r\n\r\n"
                ))
                .status(),
            406
        );
    }

    #[test]
    fn metrics_route_reports_counters_in_exposition_format() {
        let router = test_router();
        // Miss, then hit, on the render cache.
        router.handle(&request(
            "GET /v1/analyses/validity?format=json HTTP/1.1\r\n\r\n",
        ));
        router.handle(&request(
            "GET /v1/analyses/validity?format=json HTTP/1.1\r\n\r\n",
        ));
        let response = router.handle(&request("GET /metrics HTTP/1.1\r\n\r\n"));
        assert_eq!(response.status(), 200);
        assert!(response
            .header("content-type")
            .unwrap()
            .starts_with("text/plain"));
        let body = String::from_utf8_lossy(response.body()).to_string();
        // The /metrics request itself is the third routed request.
        assert!(body.contains("osdiv_requests_served 3\n"), "{body}");
        assert!(body.contains("osdiv_cache_hits 1\n"), "{body}");
        assert!(body.contains("osdiv_cache_misses 1\n"), "{body}");
        assert!(body.contains("# TYPE osdiv_bytes_out counter\n"), "{body}");
        // Bytes out and connections are server-side counters — zero when
        // the router is driven directly.
        assert!(body.contains("osdiv_connections_accepted 0\n"), "{body}");
        assert_eq!(
            router
                .handle(&request("POST /metrics HTTP/1.1\r\n\r\n"))
                .status(),
            405
        );
    }

    #[test]
    fn responses_carry_unique_request_ids_and_routes_record_histograms() {
        let router = test_router();
        let first = router.handle(&request("GET /v1/healthz HTTP/1.1\r\n\r\n"));
        let second = router.handle(&request("GET /v1/report?format=json HTTP/1.1\r\n\r\n"));
        let first_id = first.header("x-request-id").expect("id on healthz");
        let second_id = second.header("x-request-id").expect("id on report");
        assert_ne!(first_id, second_id, "request ids must be unique");
        // Both ids share the per-process prefix and are well-formed.
        let (prefix_a, _) = first_id.split_once('-').unwrap();
        let (prefix_b, _) = second_id.split_once('-').unwrap();
        assert_eq!(prefix_a, prefix_b);

        // The standalone-router path records route-class histograms.
        use crate::metrics::RouteClass;
        assert_eq!(router.metrics().route_observations(RouteClass::Healthz), 1);
        assert_eq!(router.metrics().route_observations(RouteClass::Report), 1);
        let exposition = router.handle(&request("GET /metrics HTTP/1.1\r\n\r\n"));
        let body = String::from_utf8_lossy(exposition.body()).to_string();
        assert!(
            body.contains("osdiv_request_duration_seconds_count{route=\"report\"} 1\n"),
            "{body}"
        );
        assert!(
            body.contains("osdiv_stage_duration_seconds_count{stage=\"render\"} 1\n"),
            "{body}"
        );
    }

    #[test]
    fn access_log_reports_dataset_lifecycle_events() {
        use std::sync::Mutex as StdMutex;

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<StdMutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = SharedBuf::default();
        let log = Arc::new(EventLog::to_writer(Box::new(sink.clone())));
        let dataset = datagen::CalibratedGenerator::new(1).generate();
        let study = Arc::new(Study::from_entries(dataset.entries()));
        let router = Router::with_study(
            study,
            RouterOptions {
                seed: 1,
                enable_dataset_delete: true,
                access_log: Some(Arc::clone(&log)),
                ..RouterOptions::default()
            },
        );
        router.handle(&request("PUT /v1/datasets/alt?seed=5 HTTP/1.1\r\n\r\n"));
        router.handle_with_body(
            &request("PUT /v1/datasets/feed HTTP/1.1\r\n\r\n"),
            &mut BufferedBody::new(small_feed()),
        );
        router.handle(&request("DELETE /v1/datasets/feed HTTP/1.1\r\n\r\n"));
        log.flush();
        let logged = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = logged.lines().collect();
        assert_eq!(lines.len(), 3, "{logged}");
        assert!(
            lines[0].contains("\"event\":\"dataset_registered\""),
            "{logged}"
        );
        assert!(lines[0].contains("\"dataset\":\"alt\""), "{logged}");
        assert!(
            lines[1].contains("\"event\":\"dataset_ingested\""),
            "{logged}"
        );
        assert!(lines[1].contains("\"entries\":6"), "{logged}");
        assert!(lines[1].contains("\"parse_us\":"), "{logged}");
        assert!(
            lines[2].contains("\"event\":\"dataset_deleted\""),
            "{logged}"
        );
    }

    #[test]
    fn shutdown_route_raises_the_flag() {
        let router = test_router();
        assert!(!router.shutdown_flag().load(Ordering::SeqCst));
        assert_eq!(
            router
                .handle(&request("GET /v1/shutdown HTTP/1.1\r\n\r\n"))
                .status(),
            405
        );
        let response = router.handle(&request("POST /v1/shutdown HTTP/1.1\r\n\r\n"));
        assert_eq!(response.status(), 200);
        assert!(router.shutdown_flag().load(Ordering::SeqCst));
    }
}
