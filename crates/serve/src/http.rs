//! A from-scratch, incremental HTTP/1.1 message layer over `std` only.
//!
//! The [`RequestParser`] accumulates bytes as they arrive from the socket
//! and yields a [`Request`] once a complete head (`…\r\n\r\n`) is
//! buffered, so torn reads of any granularity — one byte at a time, split
//! inside the request line, split inside a header value — parse exactly
//! like a single contiguous read. Pipelined requests are supported: bytes
//! past the first head stay buffered for the next `try_parse`.
//!
//! Malformed input never panics. Every violation maps to a client error:
//! a broken request line, header or percent-encoding is a
//! [`HttpViolation::BadRequest`] (400) and an oversized request line or
//! header block is a [`HttpViolation::HeadTooLarge`] (431).

use std::fmt;
use std::io::{self, Write};

/// Cap on the whole request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on the request line alone.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Cap on a request body the server is willing to drain.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A protocol violation detected while parsing a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpViolation {
    /// Malformed request line, header or encoding — answered with 400.
    BadRequest(String),
    /// Request line or header block over the configured caps — answered
    /// with 431 (Request Header Fields Too Large).
    HeadTooLarge,
}

impl HttpViolation {
    /// The status code the violation is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpViolation::BadRequest(_) => 400,
            HttpViolation::HeadTooLarge => 431,
        }
    }
}

impl fmt::Display for HttpViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpViolation::BadRequest(reason) => write!(f, "bad request: {reason}"),
            HttpViolation::HeadTooLarge => f.write_str("request head too large"),
        }
    }
}

impl std::error::Error for HttpViolation {}

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, as sent (e.g. `GET`).
    pub method: String,
    /// The percent-decoded path component of the target.
    pub path: String,
    /// The percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Whether the request is HTTP/1.1 (`false` = HTTP/1.0).
    pub http11: bool,
    /// The header fields, in order of appearance (names lower-cased).
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The last value of a header (case-insensitive name lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should be kept alive after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) if value.eq_ignore_ascii_case("close") => false,
            Some(value) if value.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The declared body length (0 when absent). A malformed
    /// `Content-Length` is a 400.
    pub fn content_length(&self) -> Result<usize, HttpViolation> {
        match self.header("content-length") {
            None => Ok(0),
            Some(raw) => raw
                .trim()
                .parse()
                .map_err(|_| HttpViolation::BadRequest(format!("invalid Content-Length {raw:?}"))),
        }
    }
}

/// Incremental request-head parser (see the module docs).
#[derive(Debug, Default)]
pub struct RequestParser {
    buffer: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Appends a chunk and attempts to parse one request head.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Option<Request>, HttpViolation> {
        self.buffer.extend_from_slice(chunk);
        self.try_parse()
    }

    /// Attempts to parse one request head from the buffered bytes. Returns
    /// `Ok(None)` while the head is still incomplete; consumed bytes are
    /// removed from the buffer (pipelined data stays).
    pub fn try_parse(&mut self) -> Result<Option<Request>, HttpViolation> {
        match find(&self.buffer, b"\r\n\r\n") {
            Some(end) => {
                if end > MAX_HEAD_BYTES {
                    return Err(HttpViolation::HeadTooLarge);
                }
                let request = parse_head(&self.buffer[..end])?;
                self.buffer.drain(..end + 4);
                Ok(Some(request))
            }
            None => {
                if self.buffer.len() > MAX_HEAD_BYTES {
                    return Err(HttpViolation::HeadTooLarge);
                }
                // No complete request line either: a line longer than the
                // cap can never become valid.
                if find(&self.buffer, b"\r\n").is_none()
                    && self.buffer.len() > MAX_REQUEST_LINE_BYTES
                {
                    return Err(HttpViolation::HeadTooLarge);
                }
                Ok(None)
            }
        }
    }

    /// Drains up to `n` already-buffered body bytes (after a parsed head),
    /// returning how many were removed. The caller reads any remainder
    /// straight off the socket.
    pub fn drain_body(&mut self, n: usize) -> usize {
        let take = n.min(self.buffer.len());
        self.buffer.drain(..take);
        take
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn is_token_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || "!#$%&'*+-.^_`|~".contains(c)
}

fn parse_head(head: &[u8]) -> Result<Request, HttpViolation> {
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpViolation::BadRequest("head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE_BYTES {
        return Err(HttpViolation::HeadTooLarge);
    }
    let (method, target, version) = {
        let mut parts = request_line.split(' ');
        let method = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("");
        let version = parts.next().unwrap_or("");
        if parts.next().is_some() || method.is_empty() || target.is_empty() || version.is_empty() {
            return Err(HttpViolation::BadRequest(format!(
                "malformed request line {request_line:?}"
            )));
        }
        (method, target, version)
    };
    if !method.chars().all(is_token_char) {
        return Err(HttpViolation::BadRequest(format!(
            "invalid method {method:?}"
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpViolation::BadRequest(format!(
                "unsupported version {other:?}"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(HttpViolation::BadRequest(format!(
            "target {target:?} is not an absolute path"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let query = match raw_query {
        None => Vec::new(),
        Some(raw) => parse_query(raw)?,
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            return Err(HttpViolation::BadRequest("empty header line".to_string()));
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpViolation::BadRequest(
                "obsolete header folding is not supported".to_string(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpViolation::BadRequest(format!(
                "header line {line:?} has no colon"
            )));
        };
        if name.is_empty() || !name.chars().all(is_token_char) {
            return Err(HttpViolation::BadRequest(format!(
                "invalid header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        http11,
        headers,
    })
}

fn parse_query(raw: &str) -> Result<Vec<(String, String)>, HttpViolation> {
    let mut pairs = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (key, value) = match piece.split_once('=') {
            Some((key, value)) => (key, value),
            None => (piece, ""),
        };
        let key = percent_decode(key, true)?;
        if key.is_empty() {
            return Err(HttpViolation::BadRequest(format!(
                "query piece {piece:?} has an empty key"
            )));
        }
        pairs.push((key, percent_decode(value, true)?));
    }
    Ok(pairs)
}

/// Percent-decodes a path or query component. In query components `+`
/// decodes to a space.
fn percent_decode(raw: &str, query: bool) -> Result<String, HttpViolation> {
    let invalid = || HttpViolation::BadRequest(format!("invalid percent-encoding in {raw:?}"));
    let mut bytes = Vec::with_capacity(raw.len());
    let mut iter = raw.bytes();
    while let Some(byte) = iter.next() {
        match byte {
            b'%' => {
                let hi = iter.next().ok_or_else(invalid)?;
                let lo = iter.next().ok_or_else(invalid)?;
                let hex = |b: u8| (b as char).to_digit(16).ok_or_else(invalid);
                bytes.push((hex(hi)? * 16 + hex(lo)?) as u8);
            }
            b'+' if query => bytes.push(b' '),
            other => bytes.push(other),
        }
    }
    String::from_utf8(bytes)
        .map_err(|_| HttpViolation::BadRequest(format!("{raw:?} does not decode to UTF-8")))
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with a status code.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A plain-text response (errors, health messages).
    pub fn text(status: u16, message: impl Into<String>) -> Self {
        let mut message = message.into();
        if !message.ends_with('\n') {
            message.push('\n');
        }
        Response::new(status).with_body(tabular::mime::TEXT_PLAIN, message.into_bytes())
    }

    /// Sets the body and its `Content-Type`.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// Appends a header field.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The last value of a header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the response. `head_only` suppresses the body (HEAD
    /// requests) while keeping the `Content-Length` of the full
    /// representation; 304 responses never carry a body.
    pub fn write_to(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
        head_only: bool,
    ) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: osdiv-serve/{}\r\n",
            self.status,
            reason(self.status),
            env!("CARGO_PKG_VERSION"),
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        writer.write_all(head.as_bytes())?;
        if !head_only && self.status != 304 && !self.body.is_empty() {
            writer.write_all(&self.body)?;
        }
        writer.flush()
    }
}

impl From<&HttpViolation> for Response {
    fn from(violation: &HttpViolation) -> Self {
        Response::text(violation.status(), violation.to_string())
    }
}

/// The reason phrase of the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpViolation> {
        RequestParser::new().feed(bytes)
    }

    #[test]
    fn parses_a_simple_get() {
        let request = parse_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/healthz");
        assert!(request.query.is_empty());
        assert!(request.http11);
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert!(request.keep_alive());
        assert_eq!(request.content_length().unwrap(), 0);
    }

    #[test]
    fn byte_by_byte_feeding_matches_one_shot_parsing() {
        let raw = b"GET /v1/analyses/kway?profile=fat&max_k=5 HTTP/1.1\r\nAccept: text/csv\r\n\r\n";
        let oneshot = parse_all(raw).unwrap().unwrap();
        let mut parser = RequestParser::new();
        let mut torn = None;
        for byte in raw.iter() {
            torn = parser.feed(std::slice::from_ref(byte)).unwrap();
            if torn.is_some() {
                break;
            }
        }
        assert_eq!(torn.unwrap(), oneshot);
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut parser = RequestParser::new();
        let first = parser
            .feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(first.path, "/a");
        let second = parser.try_parse().unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(parser.try_parse().unwrap(), None);
    }

    #[test]
    fn query_decoding_handles_percent_and_plus() {
        let request = parse_all(b"GET /x?a=1%202&b=c+d&flag HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            request.query,
            vec![
                ("a".to_string(), "1 2".to_string()),
                ("b".to_string(), "c d".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn malformed_heads_are_400() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"G<T /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET /x?%zz= HTTP/1.1\r\n\r\n",
            b"GET /x%e0%80 HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "{:?} -> {err:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_heads_are_431() {
        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE_BYTES)
        );
        assert_eq!(
            parse_all(long_line.as_bytes()).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
        // Incomplete but already hopeless: no CRLF within the line cap.
        let mut parser = RequestParser::new();
        let partial = vec![b'a'; MAX_REQUEST_LINE_BYTES + 1];
        assert_eq!(
            parser.feed(&partial).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
        // A huge header block.
        let huge = format!(
            "GET / HTTP/1.1\r\nA: {}\r\n\r\n",
            "b".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(
            parse_all(huge.as_bytes()).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
    }

    #[test]
    fn keep_alive_follows_the_version_defaults() {
        let http10 = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!http10.keep_alive());
        let http10_ka = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(http10_ka.keep_alive());
        let http11_close = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!http11_close.keep_alive());
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let response = Response::new(200)
            .with_body(tabular::mime::APPLICATION_JSON, b"{}".to_vec())
            .with_header("ETag", "\"abc\"");
        let mut out = Vec::new();
        response.write_to(&mut out, true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("ETag: \"abc\"\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut head_only = Vec::new();
        response.write_to(&mut head_only, false, true).unwrap();
        let text = String::from_utf8(head_only).unwrap();
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn violations_convert_to_error_responses() {
        let bad = HttpViolation::BadRequest("nope".to_string());
        let response = Response::from(&bad);
        assert_eq!(response.status(), 400);
        assert!(String::from_utf8_lossy(response.body()).contains("nope"));
        assert_eq!(Response::from(&HttpViolation::HeadTooLarge).status(), 431);
    }
}
