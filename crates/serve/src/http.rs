//! A from-scratch, incremental HTTP/1.1 message layer over `std` only.
//!
//! The [`RequestParser`] accumulates bytes as they arrive from the socket
//! and yields a [`Request`] once a complete head (`…\r\n\r\n`) is
//! buffered, so torn reads of any granularity — one byte at a time, split
//! inside the request line, split inside a header value — parse exactly
//! like a single contiguous read. Pipelined requests are supported: bytes
//! past the first head stay buffered for the next `try_parse`.
//!
//! Request **bodies** are streamed, not slurped: [`Body`] yields decoded
//! chunks as they arrive, with both `Content-Length` and
//! `Transfer-Encoding: chunked` framing ([`ChunkedDecoder`]) — the
//! ingestion routes consume arbitrarily large feeds without the server
//! ever holding the whole payload.
//!
//! Malformed input never panics. Every violation maps to a client error:
//! a broken request line, header, percent-encoding, chunk-size line or
//! chunk delimiter is a [`HttpViolation::BadRequest`] (400) and an
//! oversized request line, header block or chunk-size/trailer line is a
//! [`HttpViolation::HeadTooLarge`] (431).

use std::fmt;
use std::io::{self, Read, Write};

/// Cap on the whole request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on the request line alone.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Cap on a request body the server is willing to drain on routes that do
/// not consume it (ingestion routes stream under their own budgets).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Cap on one chunk-size line (hex size + extensions) of a chunked body.
pub const MAX_CHUNK_LINE_BYTES: usize = 256;

/// Cap on the trailer section after the last chunk of a chunked body.
pub const MAX_TRAILER_BYTES: usize = 4 * 1024;

/// A protocol violation detected while parsing a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpViolation {
    /// Malformed request line, header or encoding — answered with 400.
    BadRequest(String),
    /// Request line or header block over the configured caps — answered
    /// with 431 (Request Header Fields Too Large).
    HeadTooLarge,
}

impl HttpViolation {
    /// The status code the violation is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpViolation::BadRequest(_) => 400,
            HttpViolation::HeadTooLarge => 431,
        }
    }
}

impl fmt::Display for HttpViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpViolation::BadRequest(reason) => write!(f, "bad request: {reason}"),
            HttpViolation::HeadTooLarge => f.write_str("request head too large"),
        }
    }
}

impl std::error::Error for HttpViolation {}

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, as sent (e.g. `GET`).
    pub method: String,
    /// The percent-decoded path component of the target.
    pub path: String,
    /// The percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Whether the request is HTTP/1.1 (`false` = HTTP/1.0).
    pub http11: bool,
    /// The header fields, in order of appearance (names lower-cased).
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The last value of a header (case-insensitive name lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should be kept alive after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) if value.eq_ignore_ascii_case("close") => false,
            Some(value) if value.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The declared body length (0 when absent). A malformed
    /// `Content-Length` is a 400.
    pub fn content_length(&self) -> Result<usize, HttpViolation> {
        match self.header("content-length") {
            None => Ok(0),
            Some(raw) => raw
                .trim()
                .parse()
                .map_err(|_| HttpViolation::BadRequest(format!("invalid Content-Length {raw:?}"))),
        }
    }

    /// The body framing the head declares: `Transfer-Encoding: chunked`
    /// wins over `Content-Length`; any other transfer coding is a 400
    /// (this server implements only chunked).
    pub fn body_framing(&self) -> Result<BodyFraming, HttpViolation> {
        match self.header("transfer-encoding") {
            Some(coding) if coding.trim().eq_ignore_ascii_case("chunked") => {
                Ok(BodyFraming::Chunked)
            }
            Some(coding) => Err(HttpViolation::BadRequest(format!(
                "unsupported transfer coding {coding:?} (only \"chunked\")"
            ))),
            None => Ok(BodyFraming::Length(self.content_length()?)),
        }
    }
}

/// How a request body is delimited on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// A `Content-Length` body of exactly this many bytes (0 = no body).
    Length(usize),
    /// A `Transfer-Encoding: chunked` body.
    Chunked,
}

/// Incremental request-head parser (see the module docs).
#[derive(Debug, Default)]
pub struct RequestParser {
    buffer: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Appends a chunk and attempts to parse one request head.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Option<Request>, HttpViolation> {
        self.buffer.extend_from_slice(chunk);
        self.try_parse()
    }

    /// Attempts to parse one request head from the buffered bytes. Returns
    /// `Ok(None)` while the head is still incomplete; consumed bytes are
    /// removed from the buffer (pipelined data stays).
    pub fn try_parse(&mut self) -> Result<Option<Request>, HttpViolation> {
        match find(&self.buffer, b"\r\n\r\n") {
            Some(end) => {
                if end > MAX_HEAD_BYTES {
                    return Err(HttpViolation::HeadTooLarge);
                }
                // `end` is the match offset `find` just returned; an empty
                // fallback would simply parse as a 400.
                let request = parse_head(self.buffer.get(..end).unwrap_or_default())?;
                self.buffer.drain(..end + 4);
                Ok(Some(request))
            }
            None => {
                if self.buffer.len() > MAX_HEAD_BYTES {
                    return Err(HttpViolation::HeadTooLarge);
                }
                // No complete request line either: a line longer than the
                // cap can never become valid.
                if find(&self.buffer, b"\r\n").is_none()
                    && self.buffer.len() > MAX_REQUEST_LINE_BYTES
                {
                    return Err(HttpViolation::HeadTooLarge);
                }
                Ok(None)
            }
        }
    }

    /// Drains up to `n` already-buffered body bytes (after a parsed head),
    /// returning how many were removed. The caller reads any remainder
    /// straight off the socket.
    pub fn drain_body(&mut self, n: usize) -> usize {
        let take = n.min(self.buffer.len());
        self.buffer.drain(..take);
        take
    }

    /// Appends raw bytes **without** attempting a head parse — how body
    /// readers push socket reads through the parser buffer so bytes beyond
    /// the body end stay queued for the next pipelined request.
    pub fn feed_raw(&mut self, chunk: &[u8]) {
        self.buffer.extend_from_slice(chunk);
    }

    /// The buffered, not-yet-consumed bytes.
    pub fn peek_buffered(&self) -> &[u8] {
        &self.buffer
    }

    /// Removes up to `n` buffered bytes and returns them.
    pub fn take_body(&mut self, n: usize) -> Vec<u8> {
        let take = n.min(self.buffer.len());
        self.buffer.drain(..take).collect()
    }
}

/// An error surfaced while reading a request body.
#[derive(Debug)]
pub enum BodyError {
    /// The body framing is malformed (answered with the violation status;
    /// the connection cannot be kept alive).
    Violation(HttpViolation),
    /// The peer closed or the socket failed before the body completed.
    Io(io::Error),
    /// The body exceeded the byte cap a draining route imposed (413).
    TooLarge {
        /// The cap that was crossed.
        limit: usize,
    },
}

impl fmt::Display for BodyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyError::Violation(violation) => violation.fmt(f),
            BodyError::Io(error) => write!(f, "i/o error reading the body: {error}"),
            BodyError::TooLarge { limit } => write!(f, "request body exceeds {limit} bytes"),
        }
    }
}

impl std::error::Error for BodyError {}

impl From<HttpViolation> for BodyError {
    fn from(violation: HttpViolation) -> Self {
        BodyError::Violation(violation)
    }
}

impl From<io::Error> for BodyError {
    fn from(error: io::Error) -> Self {
        BodyError::Io(error)
    }
}

/// A streamed request body: decoded chunks are pulled one at a time, so
/// consumers (feed ingestion) never hold the whole payload.
pub trait Body {
    /// Clears `out`, appends the next decoded chunk, and returns `true`;
    /// returns `false` once the body is complete. A returned chunk is
    /// never empty.
    fn next_chunk(&mut self, out: &mut Vec<u8>) -> Result<bool, BodyError>;

    /// Whether the body has been fully consumed.
    fn finished(&self) -> bool;

    /// Reads the body to its end, discarding the bytes, failing with
    /// [`BodyError::TooLarge`] once more than `cap` bytes have appeared.
    /// Returns the number of bytes drained.
    fn drain(&mut self, cap: usize) -> Result<usize, BodyError> {
        let mut total = 0usize;
        let mut chunk = Vec::new();
        while self.next_chunk(&mut chunk)? {
            total += chunk.len();
            if total > cap {
                return Err(BodyError::TooLarge { limit: cap });
            }
        }
        Ok(total)
    }
}

/// The body of a request that has none (and the stand-in used by
/// body-less entry points like [`crate::Router::handle`]).
#[derive(Debug, Default)]
pub struct EmptyBody;

impl Body for EmptyBody {
    fn next_chunk(&mut self, _out: &mut Vec<u8>) -> Result<bool, BodyError> {
        Ok(false)
    }

    fn finished(&self) -> bool {
        true
    }
}

/// A [`Body`] over a whole in-memory payload — one chunk, used by tests
/// and in-process callers.
#[derive(Debug)]
pub struct BufferedBody {
    payload: Vec<u8>,
    consumed: bool,
}

impl BufferedBody {
    /// Wraps a payload.
    pub fn new(payload: Vec<u8>) -> Self {
        BufferedBody {
            consumed: payload.is_empty(),
            payload,
        }
    }
}

impl Body for BufferedBody {
    fn next_chunk(&mut self, out: &mut Vec<u8>) -> Result<bool, BodyError> {
        out.clear();
        if self.consumed {
            return Ok(false);
        }
        out.append(&mut self.payload);
        self.consumed = true;
        Ok(true)
    }

    fn finished(&self) -> bool {
        self.consumed
    }
}

/// A [`Body`] streaming off a live connection: bytes already buffered by
/// the head parser are consumed first (pipelining), further bytes are read
/// from the socket **through** the parser buffer, so anything past the
/// body end stays queued for the next request.
pub struct StreamBody<'a, R: Read> {
    parser: &'a mut RequestParser,
    stream: &'a mut R,
    framing: FramingState,
}

#[derive(Debug)]
enum FramingState {
    Length { remaining: usize },
    Chunked { decoder: ChunkedDecoder },
}

impl<'a, R: Read> StreamBody<'a, R> {
    /// Wraps a connection positioned right after a parsed request head.
    pub fn new(parser: &'a mut RequestParser, stream: &'a mut R, framing: BodyFraming) -> Self {
        let framing = match framing {
            BodyFraming::Length(remaining) => FramingState::Length { remaining },
            BodyFraming::Chunked => FramingState::Chunked {
                decoder: ChunkedDecoder::new(),
            },
        };
        StreamBody {
            parser,
            stream,
            framing,
        }
    }

    /// Reads more bytes off the socket into the parser buffer.
    fn fill(&mut self) -> Result<(), BodyError> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(BodyError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside the request body",
            )));
        }
        self.parser.feed_raw(chunk.get(..n).unwrap_or(&chunk));
        Ok(())
    }
}

impl<R: Read> Body for StreamBody<'_, R> {
    fn next_chunk(&mut self, out: &mut Vec<u8>) -> Result<bool, BodyError> {
        out.clear();
        loop {
            if self.finished() {
                return Ok(false);
            }
            if self.parser.buffered() == 0 {
                self.fill()?;
            }
            match &mut self.framing {
                FramingState::Length { remaining } => {
                    let take = (*remaining).min(self.parser.buffered());
                    let taken = self.parser.take_body(take);
                    *remaining = remaining.saturating_sub(taken.len());
                    out.extend_from_slice(&taken);
                    return Ok(true);
                }
                FramingState::Chunked { decoder } => {
                    let consumed = decoder.decode(self.parser.peek_buffered(), out)?;
                    self.parser.drain_body(consumed);
                    if !out.is_empty() {
                        return Ok(true);
                    }
                    if decoder.is_done() {
                        return Ok(false);
                    }
                    // Only framing bytes were consumed; keep reading.
                }
            }
        }
    }

    fn finished(&self) -> bool {
        match &self.framing {
            FramingState::Length { remaining } => *remaining == 0,
            FramingState::Chunked { decoder } => decoder.is_done(),
        }
    }
}

/// Incremental decoder for `Transfer-Encoding: chunked` bodies.
///
/// Feed it whatever bytes are available with [`decode`](Self::decode); it
/// appends the decoded payload to the sink and reports how many input
/// bytes it consumed, leaving anything past the final terminator (the next
/// pipelined request) untouched. Malformed framing is a 400, an oversized
/// chunk-size or trailer line a 431 — never a panic.
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: ChunkState,
    /// Partial chunk-size or trailer line carried across feeds.
    line: Vec<u8>,
    trailer_bytes: usize,
    /// Bytes examined across all `decode` calls — a work counter for the
    /// complexity-guard tests. Decoding must stay linear in input size no
    /// matter how the input is split across feeds.
    work: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    /// Reading a chunk-size line.
    Size,
    /// Reading chunk payload (bytes remaining).
    Data(usize),
    /// Expecting the `\r` after a chunk's payload.
    DataCr,
    /// Expecting the `\n` after a chunk's payload.
    DataLf,
    /// Reading (and discarding) trailer lines after the last chunk.
    Trailer,
    /// The terminator has been consumed; the body is complete.
    Done,
}

impl Default for ChunkedDecoder {
    fn default() -> Self {
        ChunkedDecoder::new()
    }
}

impl ChunkedDecoder {
    /// A decoder positioned before the first chunk-size line.
    pub fn new() -> Self {
        ChunkedDecoder {
            state: ChunkState::Size,
            line: Vec::new(),
            trailer_bytes: 0,
            work: 0,
        }
    }

    /// Whether the final terminator has been consumed.
    pub fn is_done(&self) -> bool {
        self.state == ChunkState::Done
    }

    /// Total bytes examined so far (the complexity-guard work metric).
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Decodes as much of `input` as possible, appending payload bytes to
    /// `sink`. Returns the number of input bytes consumed; bytes past the
    /// body terminator are never consumed.
    pub fn decode(&mut self, input: &[u8], sink: &mut Vec<u8>) -> Result<usize, HttpViolation> {
        let mut pos = 0;
        while pos < input.len() {
            match self.state {
                ChunkState::Done => break,
                ChunkState::Size => {
                    let Some(line) = self.take_line(input, &mut pos, MAX_CHUNK_LINE_BYTES)? else {
                        break;
                    };
                    self.state = match parse_chunk_size(&line)? {
                        0 => ChunkState::Trailer,
                        size => ChunkState::Data(size),
                    };
                }
                ChunkState::Data(remaining) => {
                    let take = remaining.min(input.len().saturating_sub(pos));
                    let Some(payload) = pos.checked_add(take).and_then(|end| input.get(pos..end))
                    else {
                        break; // unreachable: take is clamped to the input
                    };
                    sink.extend_from_slice(payload);
                    pos += take;
                    self.work += take as u64;
                    self.state = match remaining.saturating_sub(take) {
                        0 => ChunkState::DataCr,
                        left => ChunkState::Data(left),
                    };
                }
                ChunkState::DataCr => {
                    if input.get(pos) != Some(&b'\r') {
                        return Err(HttpViolation::BadRequest(
                            "chunk payload is not terminated by CRLF".to_string(),
                        ));
                    }
                    pos += 1;
                    self.work += 1;
                    self.state = ChunkState::DataLf;
                }
                ChunkState::DataLf => {
                    if input.get(pos) != Some(&b'\n') {
                        return Err(HttpViolation::BadRequest(
                            "chunk payload is not terminated by CRLF".to_string(),
                        ));
                    }
                    pos += 1;
                    self.work += 1;
                    self.state = ChunkState::Size;
                }
                ChunkState::Trailer => {
                    let Some(line) = self.take_line(
                        input,
                        &mut pos,
                        MAX_TRAILER_BYTES.saturating_sub(self.trailer_bytes),
                    )?
                    else {
                        break;
                    };
                    self.trailer_bytes += line.len() + 2;
                    if line.is_empty() {
                        self.state = ChunkState::Done;
                    }
                    // Trailer fields themselves are ignored.
                }
            }
        }
        Ok(pos)
    }

    /// Accumulates bytes into `self.line` until a LF; returns the complete
    /// line (CR stripped) or `None` if the input ran out first. A line
    /// over `cap` bytes is a 431.
    fn take_line(
        &mut self,
        input: &[u8],
        pos: &mut usize,
        cap: usize,
    ) -> Result<Option<Vec<u8>>, HttpViolation> {
        while let Some(&byte) = input.get(*pos) {
            *pos += 1;
            self.work += 1;
            if byte == b'\n' {
                if self.line.last() != Some(&b'\r') {
                    return Err(HttpViolation::BadRequest(
                        "chunk framing line not terminated by CRLF".to_string(),
                    ));
                }
                self.line.pop();
                return Ok(Some(std::mem::take(&mut self.line)));
            }
            self.line.push(byte);
            if self.line.len() > cap {
                return Err(HttpViolation::HeadTooLarge);
            }
        }
        Ok(None)
    }
}

/// Parses a chunk-size line: hex digits, optionally followed by
/// `;extension` (ignored).
fn parse_chunk_size(line: &[u8]) -> Result<usize, HttpViolation> {
    let bad = || {
        HttpViolation::BadRequest(format!(
            "invalid chunk-size line {:?}",
            String::from_utf8_lossy(line)
        ))
    };
    let digits = match line.iter().position(|&b| b == b';') {
        Some(semi) => line.get(..semi).unwrap_or(line),
        None => line,
    };
    let digits = std::str::from_utf8(digits).map_err(|_| bad())?.trim();
    if digits.is_empty() || digits.len() > 15 || !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(bad());
    }
    usize::from_str_radix(digits, 16).map_err(|_| bad())
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn is_token_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || "!#$%&'*+-.^_`|~".contains(c)
}

fn parse_head(head: &[u8]) -> Result<Request, HttpViolation> {
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpViolation::BadRequest("head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE_BYTES {
        return Err(HttpViolation::HeadTooLarge);
    }
    let (method, target, version) = {
        let mut parts = request_line.split(' ');
        let method = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("");
        let version = parts.next().unwrap_or("");
        if parts.next().is_some() || method.is_empty() || target.is_empty() || version.is_empty() {
            return Err(HttpViolation::BadRequest(format!(
                "malformed request line {request_line:?}"
            )));
        }
        (method, target, version)
    };
    if !method.chars().all(is_token_char) {
        return Err(HttpViolation::BadRequest(format!(
            "invalid method {method:?}"
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpViolation::BadRequest(format!(
                "unsupported version {other:?}"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(HttpViolation::BadRequest(format!(
            "target {target:?} is not an absolute path"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let query = match raw_query {
        None => Vec::new(),
        Some(raw) => parse_query(raw)?,
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            return Err(HttpViolation::BadRequest("empty header line".to_string()));
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpViolation::BadRequest(
                "obsolete header folding is not supported".to_string(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpViolation::BadRequest(format!(
                "header line {line:?} has no colon"
            )));
        };
        if name.is_empty() || !name.chars().all(is_token_char) {
            return Err(HttpViolation::BadRequest(format!(
                "invalid header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        http11,
        headers,
    })
}

fn parse_query(raw: &str) -> Result<Vec<(String, String)>, HttpViolation> {
    let mut pairs = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (key, value) = match piece.split_once('=') {
            Some((key, value)) => (key, value),
            None => (piece, ""),
        };
        let key = percent_decode(key, true)?;
        if key.is_empty() {
            return Err(HttpViolation::BadRequest(format!(
                "query piece {piece:?} has an empty key"
            )));
        }
        pairs.push((key, percent_decode(value, true)?));
    }
    Ok(pairs)
}

/// Percent-decodes a path or query component. In query components `+`
/// decodes to a space.
fn percent_decode(raw: &str, query: bool) -> Result<String, HttpViolation> {
    let invalid = || HttpViolation::BadRequest(format!("invalid percent-encoding in {raw:?}"));
    let mut bytes = Vec::with_capacity(raw.len());
    let mut iter = raw.bytes();
    while let Some(byte) = iter.next() {
        match byte {
            b'%' => {
                let hi = iter.next().ok_or_else(invalid)?;
                let lo = iter.next().ok_or_else(invalid)?;
                let hex = |b: u8| (b as char).to_digit(16).ok_or_else(invalid);
                bytes.push((hex(hi)? * 16 + hex(lo)?) as u8);
            }
            b'+' if query => bytes.push(b' '),
            other => bytes.push(other),
        }
    }
    String::from_utf8(bytes)
        .map_err(|_| HttpViolation::BadRequest(format!("{raw:?} does not decode to UTF-8")))
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with a status code.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A plain-text response (errors, health messages).
    pub fn text(status: u16, message: impl Into<String>) -> Self {
        let mut message = message.into();
        if !message.ends_with('\n') {
            message.push('\n');
        }
        Response::new(status).with_body(tabular::mime::TEXT_PLAIN, message.into_bytes())
    }

    /// Sets the body and its `Content-Type`.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// Appends a header field.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The last value of a header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the response, returning the number of bytes written
    /// (head plus body — the unit of the `/metrics` byte counter).
    /// `head_only` suppresses the body (HEAD requests) while keeping the
    /// `Content-Length` of the full representation; 304 responses never
    /// carry a body.
    pub fn write_to(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
        head_only: bool,
    ) -> io::Result<usize> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: osdiv-serve/{}\r\n",
            self.status,
            reason(self.status),
            env!("CARGO_PKG_VERSION"),
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        writer.write_all(head.as_bytes())?;
        let mut written = head.len();
        if !head_only && self.status != 304 && !self.body.is_empty() {
            writer.write_all(&self.body)?;
            written += self.body.len();
        }
        writer.flush()?;
        Ok(written)
    }
}

impl From<&HttpViolation> for Response {
    fn from(violation: &HttpViolation) -> Self {
        Response::text(violation.status(), violation.to_string())
    }
}

/// The reason phrase of the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        304 => "Not Modified",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpViolation> {
        RequestParser::new().feed(bytes)
    }

    #[test]
    fn parses_a_simple_get() {
        let request = parse_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/healthz");
        assert!(request.query.is_empty());
        assert!(request.http11);
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert!(request.keep_alive());
        assert_eq!(request.content_length().unwrap(), 0);
    }

    #[test]
    fn byte_by_byte_feeding_matches_one_shot_parsing() {
        let raw = b"GET /v1/analyses/kway?profile=fat&max_k=5 HTTP/1.1\r\nAccept: text/csv\r\n\r\n";
        let oneshot = parse_all(raw).unwrap().unwrap();
        let mut parser = RequestParser::new();
        let mut torn = None;
        for byte in raw.iter() {
            torn = parser.feed(std::slice::from_ref(byte)).unwrap();
            if torn.is_some() {
                break;
            }
        }
        assert_eq!(torn.unwrap(), oneshot);
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut parser = RequestParser::new();
        let first = parser
            .feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(first.path, "/a");
        let second = parser.try_parse().unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(parser.try_parse().unwrap(), None);
    }

    #[test]
    fn query_decoding_handles_percent_and_plus() {
        let request = parse_all(b"GET /x?a=1%202&b=c+d&flag HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            request.query,
            vec![
                ("a".to_string(), "1 2".to_string()),
                ("b".to_string(), "c d".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn malformed_heads_are_400() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"G<T /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET /x?%zz= HTTP/1.1\r\n\r\n",
            b"GET /x%e0%80 HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "{:?} -> {err:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_heads_are_431() {
        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE_BYTES)
        );
        assert_eq!(
            parse_all(long_line.as_bytes()).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
        // Incomplete but already hopeless: no CRLF within the line cap.
        let mut parser = RequestParser::new();
        let partial = vec![b'a'; MAX_REQUEST_LINE_BYTES + 1];
        assert_eq!(
            parser.feed(&partial).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
        // A huge header block.
        let huge = format!(
            "GET / HTTP/1.1\r\nA: {}\r\n\r\n",
            "b".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(
            parse_all(huge.as_bytes()).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
    }

    #[test]
    fn keep_alive_follows_the_version_defaults() {
        let http10 = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!http10.keep_alive());
        let http10_ka = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(http10_ka.keep_alive());
        let http11_close = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!http11_close.keep_alive());
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let response = Response::new(200)
            .with_body(tabular::mime::APPLICATION_JSON, b"{}".to_vec())
            .with_header("ETag", "\"abc\"");
        let mut out = Vec::new();
        response.write_to(&mut out, true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("ETag: \"abc\"\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut head_only = Vec::new();
        response.write_to(&mut head_only, false, true).unwrap();
        let text = String::from_utf8(head_only).unwrap();
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    /// Encodes a payload as chunked framing with the given chunk sizes.
    fn encode_chunked(payload: &[u8], sizes: &[usize]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut rest = payload;
        let mut sizes = sizes.iter().copied().cycle();
        while !rest.is_empty() {
            let take = sizes.next().unwrap().clamp(1, rest.len());
            out.extend_from_slice(format!("{take:x}\r\n").as_bytes());
            out.extend_from_slice(&rest[..take]);
            out.extend_from_slice(b"\r\n");
            rest = &rest[take..];
        }
        out.extend_from_slice(b"0\r\n\r\n");
        out
    }

    #[test]
    fn chunked_decoder_handles_torn_input_and_extensions() {
        let payload = b"hello chunked world".to_vec();
        let mut wire = b"5;ext=1\r\nhello\r\n".to_vec();
        wire.extend_from_slice(&encode_chunked(b" chunked world", &[3, 5])[..]);
        for piece in [1usize, 2, 3, 7, wire.len()] {
            let mut decoder = ChunkedDecoder::new();
            let mut sink = Vec::new();
            let mut consumed_total = 0;
            for chunk in wire.chunks(piece) {
                let consumed = decoder.decode(chunk, &mut sink).unwrap();
                assert_eq!(consumed, chunk.len(), "nothing past the terminator here");
                consumed_total += consumed;
            }
            assert!(decoder.is_done(), "piece size {piece}");
            assert_eq!(sink, payload, "piece size {piece}");
            assert_eq!(consumed_total, wire.len());
        }
    }

    #[test]
    fn chunked_decoder_stops_at_the_terminator_for_pipelining() {
        let mut wire = encode_chunked(b"abc", &[3]);
        wire.extend_from_slice(b"GET /next HTTP/1.1\r\n\r\n");
        let mut decoder = ChunkedDecoder::new();
        let mut sink = Vec::new();
        let consumed = decoder.decode(&wire, &mut sink).unwrap();
        assert!(decoder.is_done());
        assert_eq!(sink, b"abc");
        assert_eq!(&wire[consumed..], b"GET /next HTTP/1.1\r\n\r\n");
        // Once done, nothing more is consumed.
        assert_eq!(decoder.decode(&wire[consumed..], &mut sink).unwrap(), 0);
    }

    #[test]
    fn chunked_decoder_rejects_bad_framing_with_400() {
        for wire in [
            &b"zz\r\nhello\r\n0\r\n\r\n"[..], // non-hex size
            b"\r\n\r\n",                      // empty size line
            b"3\nabc\r\n0\r\n\r\n",           // bare LF after size
            b"3\r\nabcX\r\n0\r\n\r\n",        // payload not CRLF-terminated
            b"3\r\nabc\rX0\r\n\r\n",          // CR not followed by LF
            b"ffffffffffffffffff\r\n",        // overflowing size
        ] {
            let mut decoder = ChunkedDecoder::new();
            let mut sink = Vec::new();
            let violation = decoder.decode(wire, &mut sink).unwrap_err();
            assert_eq!(
                violation.status(),
                400,
                "{:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn oversized_chunk_lines_and_trailers_are_431() {
        let mut decoder = ChunkedDecoder::new();
        let mut sink = Vec::new();
        let long_size_line = vec![b'1'; MAX_CHUNK_LINE_BYTES + 2];
        assert_eq!(
            decoder.decode(&long_size_line, &mut sink).unwrap_err(),
            HttpViolation::HeadTooLarge
        );

        let mut decoder = ChunkedDecoder::new();
        let mut wire = b"0\r\n".to_vec();
        wire.extend_from_slice(&vec![b'x'; MAX_TRAILER_BYTES + 2]);
        assert_eq!(
            decoder.decode(&wire, &mut sink).unwrap_err(),
            HttpViolation::HeadTooLarge
        );
    }

    #[test]
    fn stream_body_reads_length_framing_through_the_parser_buffer() {
        let mut parser = RequestParser::new();
        let request = parser
            .feed(b"POST /x HTTP/1.1\r\nContent-Length: 8\r\n\r\nhalf")
            .unwrap()
            .unwrap();
        assert_eq!(request.body_framing().unwrap(), BodyFraming::Length(8));
        let mut remainder = io::Cursor::new(b"bodyGET /next".to_vec());
        let mut body = StreamBody::new(&mut parser, &mut remainder, BodyFraming::Length(8));
        let mut collected = Vec::new();
        let mut chunk = Vec::new();
        while body.next_chunk(&mut chunk).unwrap() {
            collected.extend_from_slice(&chunk);
        }
        assert!(body.finished());
        assert_eq!(collected, b"halfbody");
        // Over-read bytes stay buffered for the next pipelined request.
        assert_eq!(parser.peek_buffered(), b"GET /next");
    }

    #[test]
    fn stream_body_decodes_chunked_framing_and_preserves_pipelining() {
        let mut parser = RequestParser::new();
        let head = b"PUT /v1/datasets/x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let request = parser.feed(head).unwrap().unwrap();
        assert_eq!(request.body_framing().unwrap(), BodyFraming::Chunked);
        let mut wire = encode_chunked(b"feed data here", &[4, 1, 6]);
        wire.extend_from_slice(b"GET /pipelined HTTP/1.1\r\n\r\n");
        let mut stream = io::Cursor::new(wire);
        let mut body = StreamBody::new(&mut parser, &mut stream, BodyFraming::Chunked);
        let mut collected = Vec::new();
        let mut chunk = Vec::new();
        while body.next_chunk(&mut chunk).unwrap() {
            assert!(!chunk.is_empty());
            collected.extend_from_slice(&chunk);
        }
        assert!(body.finished());
        assert_eq!(collected, b"feed data here");
        let next = parser.try_parse().unwrap().unwrap();
        assert_eq!(next.path, "/pipelined");
    }

    #[test]
    fn stream_body_surfaces_truncation_as_io_error() {
        let mut parser = RequestParser::new();
        let mut stream = io::Cursor::new(b"4\r\nab".to_vec()); // cut mid-chunk
        let mut body = StreamBody::new(&mut parser, &mut stream, BodyFraming::Chunked);
        let mut chunk = Vec::new();
        // First pull may yield the partial payload...
        let mut error = None;
        for _ in 0..4 {
            match body.next_chunk(&mut chunk) {
                Ok(_) => {}
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(error, Some(BodyError::Io(_))));
    }

    #[test]
    fn body_drain_enforces_its_cap() {
        let mut body = BufferedBody::new(vec![0u8; 100]);
        assert!(matches!(
            body.drain(50),
            Err(BodyError::TooLarge { limit: 50 })
        ));
        let mut body = BufferedBody::new(vec![0u8; 100]);
        assert_eq!(body.drain(100).unwrap(), 100);
        assert!(body.finished());
        assert_eq!(EmptyBody.drain(0).unwrap(), 0);
    }

    #[test]
    fn unsupported_transfer_codings_are_400() {
        let request = parse_all(b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.body_framing().unwrap_err().status(), 400);
    }

    #[test]
    fn violations_convert_to_error_responses() {
        let bad = HttpViolation::BadRequest("nope".to_string());
        let response = Response::from(&bad);
        assert_eq!(response.status(), 400);
        assert!(String::from_utf8_lossy(response.body()).contains("nope"));
        assert_eq!(Response::from(&HttpViolation::HeadTooLarge).status(), 431);
    }
}
