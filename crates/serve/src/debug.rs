//! The gated `GET /v1/debug/*` introspection surface.
//!
//! Three read-only views, each answering in one pass over a bounded
//! structure — never proportional to request history:
//!
//! * `/v1/debug/spans` — the flight-recorder ring as Chrome trace-event
//!   JSON ([`osdiv_core::RingSnapshot::to_chrome_trace`]), loadable in
//!   Perfetto / `chrome://tracing`. O(ring capacity).
//! * `/v1/debug/registry` — one JSON object per tenant: name, generation,
//!   lifecycle state, resident bytes, provenance. O(registered tenants).
//! * `/v1/debug/pool` — worker-pool occupancy and queue depths, the same
//!   numbers `/metrics` exposes, as a single JSON object. O(1).
//!
//! The routes are off by default (`--enable-debug`) and sit behind the
//! same bearer token as the mutating dataset routes: span labels carry
//! dataset names and analysis ids, which an operator may consider
//! sensitive. The rendering here is pure — gating and authorization live
//! in [`crate::Router`].

use osdiv_core::{FlightRecorder, JsonLine};
use osdiv_registry::{DatasetSource, StudyRegistry};

use crate::metrics::ServeMetrics;

/// The flight-recorder ring as a Chrome trace-event JSON document.
///
/// One snapshot pass over the fixed-capacity ring: the response size and
/// the work done are both bounded by the ring capacity, regardless of how
/// many spans have ever been recorded.
pub fn spans_json() -> String {
    let mut body = FlightRecorder::global().snapshot().to_chrome_trace();
    body.push('\n');
    body
}

/// The tenant registry as JSON: per-tenant generation, lifecycle state,
/// resident bytes and provenance, plus the registry-level totals an
/// operator needs to judge headroom.
pub fn registry_json(registry: &StudyRegistry) -> String {
    let infos = registry.list();
    let mut tenants = String::from("[");
    for (index, info) in infos.iter().enumerate() {
        if index > 0 {
            tenants.push(',');
        }
        let state = if info.resident {
            "resident"
        } else if info.spilled {
            "spilled"
        } else if info.evicted {
            "evicted"
        } else {
            "lazy"
        };
        let mut tenant = JsonLine::new();
        tenant.str_field("name", &info.name);
        tenant.u64_field("generation", info.generation);
        tenant.str_field("state", state);
        tenant.u64_field("resident_bytes", info.resident_bytes as u64);
        tenant.bool_field("pinned", info.pinned);
        tenant.str_field("source", info.source.kind());
        match &info.source {
            DatasetSource::Synthetic { seed } => tenant.u64_field("seed", *seed),
            DatasetSource::Ingested {
                entries,
                skipped,
                feed_bytes,
            } => {
                tenant.u64_field("entries", *entries as u64);
                tenant.u64_field("skipped", *skipped as u64);
                tenant.u64_field("feed_bytes", *feed_bytes as u64);
            }
        }
        tenants.push_str(&tenant.finish());
    }
    tenants.push(']');

    let mut line = JsonLine::new();
    line.raw_field("tenants", &tenants);
    line.u64_field("total", infos.len() as u64);
    line.u64_field("resident_bytes", registry.resident_bytes() as u64);
    line.u64_field("byte_budget", registry.options().max_total_bytes as u64);
    line.u64_field("dataset_budget", registry.options().max_datasets as u64);
    let mut body = line.finish();
    body.push('\n');
    body
}

/// Worker-pool occupancy as JSON: pool size, busy workers, dispatch-queue
/// depth, active connections and the ingest-pipeline depth.
pub fn pool_json(metrics: &ServeMetrics) -> String {
    let mut line = JsonLine::new();
    line.u64_field("workers_total", metrics.workers_total());
    line.u64_field("workers_busy", metrics.workers_busy());
    line.u64_field("dispatch_queue_depth", metrics.dispatch_queue_depth());
    line.u64_field("connections_active", metrics.connections_active());
    line.u64_field(
        "ingest_queue_depth",
        metrics
            .ingest_queue_depth()
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    let mut body = line.finish();
    body.push('\n');
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use osdiv_core::Study;
    use osdiv_registry::RegistryOptions;

    #[test]
    fn spans_json_is_a_chrome_trace_document() {
        let body = spans_json();
        assert!(body.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(body.contains("\"traceEvents\":["));
        assert!(body.ends_with("}\n"));
    }

    #[test]
    fn registry_json_reports_states_and_budgets() {
        let dataset = datagen::CalibratedGenerator::new(1).generate();
        let study = Arc::new(Study::from_entries(dataset.entries()));
        let registry = StudyRegistry::with_default(study, 1, RegistryOptions::default());
        registry.register_synthetic("alt", 5).unwrap();
        let body = registry_json(&registry);
        assert!(body.contains("\"name\":\"default\""), "{body}");
        assert!(body.contains("\"state\":\"resident\""), "{body}");
        assert!(body.contains("\"state\":\"lazy\""), "{body}");
        assert!(body.contains("\"generation\":"), "{body}");
        assert!(body.contains("\"total\":2"), "{body}");
        assert!(body.contains("\"byte_budget\":"), "{body}");
    }

    #[test]
    fn pool_json_mirrors_the_metrics_gauges() {
        let metrics = ServeMetrics::new();
        metrics.set_workers_total(3);
        metrics.worker_busy();
        let body = pool_json(&metrics);
        assert!(body.contains("\"workers_total\":3"), "{body}");
        assert!(body.contains("\"workers_busy\":1"), "{body}");
        assert!(body.contains("\"dispatch_queue_depth\":0"), "{body}");
    }
}
