//! A minimal HTTP client and two load generators — a closed-loop
//! hammer ([`run_loadgen`]) and an open-loop Poisson-arrival harness
//! ([`run_open_loop`]) — all over std `TcpStream` only. Used by the
//! criterion serving bench, the CI smoke binary and the end-to-end
//! tests.
//!
//! The open-loop harness measures what the closed loop structurally
//! cannot: each request has a *scheduled* arrival time drawn from a
//! Poisson process at the target rate, and its latency is measured from
//! that schedule — so queueing delay under overload counts against the
//! server instead of silently throttling the offered load (the
//! coordinated-omission trap).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use osdiv_core::{HistogramSnapshot, LatencyHistogram};

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header fields in order of appearance (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The last value of a header (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Writes a request with optional extra headers on an open connection.
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: osdiv-serve\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes a request carrying a `Content-Length` body.
pub fn write_request_with_body(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: osdiv-serve\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a request whose body is sent as `Transfer-Encoding: chunked`,
/// one wire chunk per element of `chunks` (empty slices are skipped — an
/// empty chunk would terminate the body early).
pub fn write_chunked_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    chunks: &[&[u8]],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: osdiv-serve\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Transfer-Encoding: chunked\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    for chunk in chunks.iter().filter(|chunk| !chunk.is_empty()) {
        stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Reads one response (status line, headers, `Content-Length` body) off a
/// buffered connection. See [`read_response_for`] for HEAD responses.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<ClientResponse> {
    read_response_for(reader, false)
}

/// Reads one response; `head_response` must be true when the request was a
/// HEAD — such a response advertises the representation's
/// `Content-Length` but carries no body, which the reader cannot tell
/// from the response alone.
pub fn read_response_for(
    reader: &mut impl BufRead,
    head_response: bool,
) -> io::Result<ClientResponse> {
    let bad = |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_string());
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.trim().parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside the header block"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .rev()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    // A 304 (like a HEAD response) advertises the representation's length
    // but carries no body.
    if status != 304 && !head_response && length > 0 {
        reader.read_exact(&mut body)?;
    } else {
        body.clear();
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// One-shot convenience: connect, GET `path`, read the response.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    get_with_headers(addr, path, &[])
}

/// One-shot GET with extra request headers.
pub fn get_with_headers(
    addr: SocketAddr,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    request(addr, "GET", path, extra_headers)
}

/// One-shot HEAD: the returned response carries the representation's
/// headers (`Content-Length`, `ETag`, …) and an empty body.
pub fn head(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "HEAD", path, &[])
}

/// One-shot request without a body. HEAD is supported: the reader then
/// treats the advertised `Content-Length` as metadata only.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    write_request(reader.get_mut(), method, path, extra_headers)?;
    read_response_for(&mut reader, method == "HEAD")
}

/// One-shot request with a `Content-Length` body.
pub fn request_with_body(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    write_request_with_body(reader.get_mut(), method, path, extra_headers, body)?;
    read_response_for(&mut reader, method == "HEAD")
}

/// One-shot request streaming its body as `Transfer-Encoding: chunked` —
/// how a feed is PUT to `/v1/datasets/{name}` without the client (or the
/// server) ever holding it whole.
pub fn request_chunked(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    chunks: &[&[u8]],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    write_chunked_request(reader.get_mut(), method, path, extra_headers, chunks)?;
    read_response_for(&mut reader, method == "HEAD")
}

/// The outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted (`clients * requests_per_client`).
    pub total: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Requests that errored or returned a non-200 status.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful requests per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }
}

/// Transport-error retries per request before it counts as an error.
const RETRY_ATTEMPTS: usize = 3;

/// Jittered exponential backoff before retry `attempt` (1-based): a
/// deterministic-per-thread random delay so a fleet of clients hitting a
/// restarting or shedding server does not stampede back in lockstep.
fn retry_backoff(state: &mut u64, attempt: usize) -> Duration {
    let base = 10u64 << attempt.min(6);
    let jitter = xorshift64(state) % base.max(1);
    Duration::from_millis(base + jitter)
}

/// A fresh keep-alive client connection (10 s read timeout, no Nagle).
fn connect_client(addr: SocketAddr) -> Option<BufReader<TcpStream>> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    Some(BufReader::new(stream))
}

/// Hammers `path` with `clients` concurrent keep-alive connections, each
/// sending `requests_per_client` sequential GETs, and reports throughput.
///
/// A transport error (`ECONNREFUSED`, `ECONNRESET`, a torn response)
/// retries with jittered backoff up to [`RETRY_ATTEMPTS`] times before
/// counting one error and *continuing the schedule* — a chaos run
/// produces an error count, not an aborted client. A non-200 response is
/// a real answer (e.g. an overload 503) and counts as an error without
/// retrying.
pub fn run_loadgen(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: usize,
    path: &str,
) -> LoadReport {
    let started = Instant::now();
    let counts: Vec<(usize, usize)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut ok = 0usize;
                    let mut errors = 0usize;
                    let mut rng = (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                    let mut connection: Option<BufReader<TcpStream>> = None;
                    for _ in 0..requests_per_client {
                        let mut outcome = None;
                        for attempt in 0..RETRY_ATTEMPTS {
                            if attempt > 0 {
                                thread::sleep(retry_backoff(&mut rng, attempt));
                            }
                            if connection.is_none() {
                                connection = connect_client(addr);
                            }
                            let result = connection.as_mut().and_then(|reader| {
                                write_request(reader.get_mut(), "GET", path, &[]).ok()?;
                                read_response(reader).ok()
                            });
                            match result {
                                Some(response) => {
                                    outcome = Some(response);
                                    break;
                                }
                                None => connection = None, // broken: retry
                            }
                        }
                        match outcome {
                            Some(response) if response.status == 200 => ok += 1,
                            _ => errors += 1,
                        }
                    }
                    (ok, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap_or((0, requests_per_client)))
            .collect()
    });
    let ok = counts.iter().map(|(ok, _)| ok).sum();
    let errors = counts.iter().map(|(_, errors)| errors).sum();
    LoadReport {
        total: clients * requests_per_client,
        ok,
        errors,
        elapsed: started.elapsed(),
    }
}

/// Configuration of an open-loop (Poisson-arrival) load run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target offered load in requests per second.
    pub rate_per_sec: f64,
    /// Run duration; the arrival schedule is pregenerated across this
    /// window, so the run sends a Poisson-distributed number of requests
    /// (mean `rate_per_sec * duration`).
    pub duration: Duration,
    /// Concurrent keep-alive connections draining the schedule.
    pub connections: usize,
    /// The path every request GETs.
    pub path: String,
    /// Seed of the deterministic arrival-schedule RNG.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate_per_sec: 1_000.0,
            duration: Duration::from_secs(2),
            connections: 4,
            path: "/v1/report?format=json".to_string(),
            seed: 2011,
        }
    }
}

/// The outcome of an open-loop run. Latency is completion minus the
/// request's *scheduled* arrival — a server that falls behind pays for
/// the queueing delay it caused.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Requests in the arrival schedule.
    pub total: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Requests that errored or answered non-200.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// The schedule-to-completion latency distribution.
    pub latency: HistogramSnapshot,
}

impl OpenLoopReport {
    /// Successful requests per wall-clock second.
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    /// A latency quantile in microseconds (see
    /// [`HistogramSnapshot::quantile_us`]).
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.latency.quantile_us(q)
    }

    /// A one-line human summary: rate, p50/p90/p99/p999 and errors.
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} ok, {} errors) in {:.2}s — {:.0} req/s, p50 {}µs p90 {}µs p99 {}µs p999 {}µs",
            self.total,
            self.ok,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.achieved_rate(),
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
        )
    }
}

/// One xorshift64 step (never pass 0 state).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// An `Exp(rate)` inter-arrival gap in seconds: `-ln(u)/rate` with `u`
/// uniform in (0, 1].
fn exponential_gap_secs(state: &mut u64, rate_per_sec: f64) -> f64 {
    let uniform = ((xorshift64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -uniform.ln() / rate_per_sec
}

/// The pregenerated Poisson arrival schedule for a run: each entry is an
/// arrival instant as an offset from the run start. Deterministic in the
/// seed.
pub fn poisson_schedule(config: &OpenLoopConfig) -> Vec<Duration> {
    let mut state = config.seed | 1;
    let mut at = 0.0f64;
    let mut arrivals = Vec::new();
    let horizon = config.duration.as_secs_f64();
    let rate = config.rate_per_sec.max(f64::MIN_POSITIVE);
    loop {
        at += exponential_gap_secs(&mut state, rate);
        if at >= horizon {
            break;
        }
        arrivals.push(Duration::from_secs_f64(at));
    }
    arrivals
}

/// Runs an open-loop load test: arrivals fire on the pregenerated
/// Poisson schedule regardless of how fast responses come back, and
/// every latency sample is measured from the scheduled arrival.
/// Connections reconnect after an error, so one broken socket does not
/// fail the rest of its schedule share.
pub fn run_open_loop(addr: SocketAddr, config: &OpenLoopConfig) -> OpenLoopReport {
    let arrivals = poisson_schedule(config);
    let latency = Arc::new(LatencyHistogram::new());
    let next = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let started = Instant::now();
    thread::scope(|scope| {
        for worker in 0..config.connections.max(1) {
            let latency = Arc::clone(&latency);
            let (next, ok, errors, arrivals) = (&next, &ok, &errors, &arrivals);
            scope.spawn(move || {
                let mut connection: Option<BufReader<TcpStream>> = None;
                let mut rng =
                    (config.seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&arrival) = arrivals.get(slot) else {
                        break;
                    };
                    let scheduled = started + arrival;
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        thread::sleep(wait);
                    }
                    // A transport error retries (bounded, jittered) so a
                    // mid-run reset or refused reconnect costs one late
                    // sample, not the rest of this worker's schedule.
                    let mut outcome = None;
                    for attempt in 0..RETRY_ATTEMPTS {
                        if attempt > 0 {
                            thread::sleep(retry_backoff(&mut rng, attempt));
                        }
                        if connection.is_none() {
                            connection = connect_client(addr);
                        }
                        let result = connection.as_mut().and_then(|reader| {
                            write_request(reader.get_mut(), "GET", &config.path, &[]).ok()?;
                            read_response(reader).ok()
                        });
                        match result {
                            Some(response) => {
                                outcome = Some(response);
                                break;
                            }
                            None => connection = None, // broken: retry
                        }
                    }
                    match outcome {
                        Some(response) if response.status == 200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            latency.record(scheduled.elapsed());
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    OpenLoopReport {
        total: arrivals.len(),
        ok: ok.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency: latency.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_throughput_is_ok_over_elapsed() {
        let report = LoadReport {
            total: 100,
            ok: 50,
            errors: 50,
            elapsed: Duration::from_secs(2),
        };
        assert!((report.requests_per_sec() - 25.0).abs() < 1e-9);
        let empty = LoadReport {
            total: 0,
            ok: 0,
            errors: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.requests_per_sec(), 0.0);
    }

    #[test]
    fn poisson_schedule_is_deterministic_and_tracks_the_rate() {
        let config = OpenLoopConfig {
            rate_per_sec: 2_000.0,
            duration: Duration::from_secs(1),
            ..OpenLoopConfig::default()
        };
        let first = poisson_schedule(&config);
        let second = poisson_schedule(&config);
        assert_eq!(first, second, "same seed, same schedule");
        // A Poisson(2000) count: mean 2000, σ≈45 — 5σ bounds.
        assert!(
            (1_750..2_250).contains(&first.len()),
            "count {}",
            first.len()
        );
        // Arrivals are sorted and inside the window.
        assert!(first.windows(2).all(|pair| pair[0] <= pair[1]));
        assert!(first.last().unwrap() < &config.duration);
        // A different seed draws a different schedule.
        let reseeded = poisson_schedule(&OpenLoopConfig {
            seed: 99,
            ..config.clone()
        });
        assert_ne!(first, reseeded);
    }

    #[test]
    fn read_response_parses_status_headers_and_body() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let mut reader = std::io::BufReader::new(&raw[..]);
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("Content-Type"), Some("application/json"));
        assert_eq!(response.body_string(), "{}");
    }
}
