//! A minimal HTTP client and a multi-threaded load generator, both over
//! std `TcpStream` only — used by the criterion serving bench, the CI
//! smoke binary and the end-to-end tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header fields in order of appearance (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The last value of a header (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Writes a request with optional extra headers on an open connection.
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: osdiv-serve\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes a request carrying a `Content-Length` body.
pub fn write_request_with_body(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: osdiv-serve\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a request whose body is sent as `Transfer-Encoding: chunked`,
/// one wire chunk per element of `chunks` (empty slices are skipped — an
/// empty chunk would terminate the body early).
pub fn write_chunked_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    chunks: &[&[u8]],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: osdiv-serve\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Transfer-Encoding: chunked\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    for chunk in chunks.iter().filter(|chunk| !chunk.is_empty()) {
        stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Reads one response (status line, headers, `Content-Length` body) off a
/// buffered connection. See [`read_response_for`] for HEAD responses.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<ClientResponse> {
    read_response_for(reader, false)
}

/// Reads one response; `head_response` must be true when the request was a
/// HEAD — such a response advertises the representation's
/// `Content-Length` but carries no body, which the reader cannot tell
/// from the response alone.
pub fn read_response_for(
    reader: &mut impl BufRead,
    head_response: bool,
) -> io::Result<ClientResponse> {
    let bad = |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_string());
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.trim().parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside the header block"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .rev()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    // A 304 (like a HEAD response) advertises the representation's length
    // but carries no body.
    if status != 304 && !head_response && length > 0 {
        reader.read_exact(&mut body)?;
    } else {
        body.clear();
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// One-shot convenience: connect, GET `path`, read the response.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    get_with_headers(addr, path, &[])
}

/// One-shot GET with extra request headers.
pub fn get_with_headers(
    addr: SocketAddr,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    request(addr, "GET", path, extra_headers)
}

/// One-shot HEAD: the returned response carries the representation's
/// headers (`Content-Length`, `ETag`, …) and an empty body.
pub fn head(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "HEAD", path, &[])
}

/// One-shot request without a body. HEAD is supported: the reader then
/// treats the advertised `Content-Length` as metadata only.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    write_request(reader.get_mut(), method, path, extra_headers)?;
    read_response_for(&mut reader, method == "HEAD")
}

/// One-shot request with a `Content-Length` body.
pub fn request_with_body(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    write_request_with_body(reader.get_mut(), method, path, extra_headers, body)?;
    read_response_for(&mut reader, method == "HEAD")
}

/// One-shot request streaming its body as `Transfer-Encoding: chunked` —
/// how a feed is PUT to `/v1/datasets/{name}` without the client (or the
/// server) ever holding it whole.
pub fn request_chunked(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    chunks: &[&[u8]],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    write_chunked_request(reader.get_mut(), method, path, extra_headers, chunks)?;
    read_response_for(&mut reader, method == "HEAD")
}

/// The outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted (`clients * requests_per_client`).
    pub total: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Requests that errored or returned a non-200 status.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful requests per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }
}

/// Hammers `path` with `clients` concurrent keep-alive connections, each
/// sending `requests_per_client` sequential GETs, and reports throughput.
pub fn run_loadgen(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: usize,
    path: &str,
) -> LoadReport {
    let started = Instant::now();
    let counts: Vec<(usize, usize)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut ok = 0usize;
                    let mut errors = 0usize;
                    match TcpStream::connect(addr) {
                        Err(_) => errors = requests_per_client,
                        Ok(stream) => {
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                            let mut reader = BufReader::new(stream);
                            for _ in 0..requests_per_client {
                                let sent =
                                    write_request(reader.get_mut(), "GET", path, &[]).is_ok();
                                match sent.then(|| read_response(&mut reader)) {
                                    Some(Ok(response)) if response.status == 200 => ok += 1,
                                    _ => {
                                        errors += 1;
                                        // The connection is broken; fail the
                                        // remaining quota and stop.
                                        errors += requests_per_client - ok - errors;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    (ok, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap_or((0, requests_per_client)))
            .collect()
    });
    let ok = counts.iter().map(|(ok, _)| ok).sum();
    let errors = counts.iter().map(|(_, errors)| errors).sum();
    LoadReport {
        total: clients * requests_per_client,
        ok,
        errors,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_throughput_is_ok_over_elapsed() {
        let report = LoadReport {
            total: 100,
            ok: 50,
            errors: 50,
            elapsed: Duration::from_secs(2),
        };
        assert!((report.requests_per_sec() - 25.0).abs() < 1e-9);
        let empty = LoadReport {
            total: 0,
            ok: 0,
            errors: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.requests_per_sec(), 0.0);
    }

    #[test]
    fn read_response_parses_status_headers_and_body() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let mut reader = std::io::BufReader::new(&raw[..]);
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("Content-Type"), Some("application/json"));
        assert_eq!(response.body_string(), "{}");
    }
}
