//! End-to-end tests over real sockets: an in-process server on an
//! ephemeral port, exercised by the std-`TcpStream` client in
//! [`osdiv_serve::loadgen`].

use std::io::{BufReader, Read};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use datagen::CalibratedGenerator;
use nvd_feed::FeedWriter;
use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_core::{analysis_sections, renderer, AnalysisId, Format, Params, Study};
use osdiv_serve::loadgen::{self, read_response, write_request};
use osdiv_serve::{OpenLoopConfig, Router, RouterOptions, Server, ServerHandle, ServerOptions};

const SEED: u64 = 1;

/// One pre-warmed session shared by every test server in this binary.
fn study() -> Arc<Study> {
    static STUDY: OnceLock<Arc<Study>> = OnceLock::new();
    STUDY
        .get_or_init(|| {
            let dataset = CalibratedGenerator::new(SEED).generate();
            let study = Study::from_entries(dataset.entries());
            study.run_all().expect("default configurations are valid");
            Arc::new(study)
        })
        .clone()
}

fn start_server(enable_shutdown: bool) -> (Arc<Router>, ServerHandle) {
    let router = Arc::new(Router::with_study(
        study(),
        RouterOptions {
            seed: SEED,
            cache_capacity: 8,
            enable_shutdown,
            enable_dataset_delete: true,
            ..RouterOptions::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerOptions {
            threads: 2,
            read_timeout: Duration::from_secs(1),
            max_keep_alive_requests: 100,
            ..ServerOptions::default()
        },
    )
    .expect("an ephemeral loop-back port is bindable");
    let handle = server.spawn();
    (router, handle)
}

#[test]
fn endpoints_serve_the_registry_documents() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();

    let health = loadgen::get(addr, "/v1/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_string().contains("\"status\":\"ok\""));
    assert!(health.body_string().contains("\"analyses\":8"));

    // The registry list, default text format.
    let list = loadgen::get(addr, "/v1/analyses").unwrap();
    assert_eq!(list.status, 200);
    assert_eq!(list.header("content-type"), Some(tabular::mime::TEXT_PLAIN));
    for id in AnalysisId::ALL {
        assert!(list.body_string().contains(id.name()), "missing {id}");
    }

    // Every analysis endpoint serves exactly the core-rendered document.
    for id in AnalysisId::ALL {
        for format in Format::ALL {
            let response = loadgen::get(
                addr,
                &format!("/v1/analyses/{}?format={}", id.name(), format.name()),
            )
            .unwrap();
            assert_eq!(response.status, 200, "{id} {format}");
            assert_eq!(
                response.header("content-type"),
                Some(format.content_type()),
                "{id} {format}"
            );
            let sections = analysis_sections(&study(), id, &Params::new()).unwrap();
            let expected = renderer(format).document(&sections);
            assert_eq!(response.body_string(), expected, "{id} {format}");
        }
    }

    // The combined report matches the session renderer byte for byte.
    let report = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(report.body_string(), study().report(Format::Json).unwrap());

    handle.shutdown().unwrap();
}

#[test]
fn content_negotiation_and_error_paths() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();

    let json = loadgen::get_with_headers(
        addr,
        "/v1/analyses/validity",
        &[("Accept", "application/json")],
    )
    .unwrap();
    assert_eq!(json.header("content-type"), Some("application/json"));
    let csv = loadgen::get_with_headers(
        addr,
        "/v1/analyses/validity",
        &[("Accept", "text/csv;q=0.9, application/json;q=0.5")],
    )
    .unwrap();
    assert!(csv.body_string().starts_with("OS,Valid"));
    let unacceptable =
        loadgen::get_with_headers(addr, "/v1/report", &[("Accept", "image/png")]).unwrap();
    assert_eq!(unacceptable.status, 406);

    assert_eq!(loadgen::get(addr, "/v1/nope").unwrap().status, 404);
    assert_eq!(loadgen::get(addr, "/v1/analyses/nope").unwrap().status, 404);
    assert_eq!(
        loadgen::get(addr, "/v1/analyses/temporal?first_year=1800&last_year=1700")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        loadgen::get(addr, "/v1/analyses/validity?profile=fat")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        loadgen::get(addr, "/v1/report?format=yaml").unwrap().status,
        400
    );
    assert_eq!(
        loadgen::request(addr, "POST", "/v1/report", &[])
            .unwrap()
            .status,
        405
    );
    // Shutdown is disabled on this server.
    assert_eq!(
        loadgen::request(addr, "POST", "/v1/shutdown", &[])
            .unwrap()
            .status,
        403
    );

    handle.shutdown().unwrap();
}

#[test]
fn keep_alive_etag_and_head_requests() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();

    // Two GETs and a revalidation on one connection.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    write_request(reader.get_mut(), "GET", "/v1/report?format=csv", &[]).unwrap();
    let first = read_response(&mut reader).unwrap();
    assert_eq!(first.status, 200);
    let etag = first
        .header("etag")
        .expect("report carries an ETag")
        .to_string();
    assert!(etag.starts_with('"') && etag.ends_with('"'));

    write_request(reader.get_mut(), "GET", "/v1/report?format=csv", &[]).unwrap();
    let second = read_response(&mut reader).unwrap();
    assert_eq!(
        second.body, first.body,
        "keep-alive re-request is identical"
    );

    write_request(
        reader.get_mut(),
        "GET",
        "/v1/report?format=csv",
        &[("If-None-Match", &etag)],
    )
    .unwrap();
    let revalidated = read_response(&mut reader).unwrap();
    assert_eq!(revalidated.status, 304);
    assert!(revalidated.body.is_empty());
    drop(reader);

    // The ETag depends on the format (and therefore the config key).
    let json = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_ne!(json.header("etag"), Some(etag.as_str()));

    // HEAD advertises the full length but sends no body.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    write_request(
        reader.get_mut(),
        "HEAD",
        "/v1/report?format=csv",
        &[("Connection", "close")],
    )
    .unwrap();
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(text.contains(&format!("Content-Length: {}\r\n", first.body.len())));
    assert!(text.ends_with("\r\n\r\n"), "HEAD response carries no body");

    handle.shutdown().unwrap();
}

#[test]
fn parameterized_requests_hit_the_lru_cache() {
    let (router, handle) = start_server(false);
    let addr = handle.addr();

    let path = "/v1/analyses/kway?profile=isolated&max_k=4&format=csv";
    let first = loadgen::get(addr, path).unwrap();
    assert_eq!(first.status, 200);
    let hits_before = router.cache_hit_count();
    let second = loadgen::get(addr, path).unwrap();
    assert_eq!(second.body, first.body);
    assert_eq!(router.cache_hit_count(), hits_before + 1);

    // Same parameters in a different order canonicalize to the same key.
    let reordered = loadgen::get(
        addr,
        "/v1/analyses/kway?format=csv&max_k=4&profile=isolated",
    )
    .unwrap();
    assert_eq!(reordered.body, first.body);
    assert_eq!(router.cache_hit_count(), hits_before + 2);

    handle.shutdown().unwrap();
}

/// A small deterministic feed with a validity distribution that cannot
/// match the calibrated default dataset.
fn feed_xml() -> Vec<u8> {
    let entries: Vec<_> = (0..12u32)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(2004 + (i % 4) as u16, i + 1))
                .summary(format!("Buffer overflow number {i} in the TCP/IP stack"))
                .affects_os(if i % 3 == 0 {
                    OsDistribution::Debian
                } else if i % 3 == 1 {
                    OsDistribution::OpenBsd
                } else {
                    OsDistribution::Windows2000
                })
                .build()
                .unwrap()
        })
        .collect();
    FeedWriter::new()
        .write_to_string(&entries)
        .unwrap()
        .into_bytes()
}

#[test]
fn ingest_token_gates_mutating_dataset_routes() {
    let router = Arc::new(Router::with_study(
        study(),
        RouterOptions {
            seed: SEED,
            cache_capacity: 8,
            enable_dataset_delete: true,
            ingest_token: Some("s3cret".to_string()),
            ..RouterOptions::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        router,
        ServerOptions {
            threads: 2,
            read_timeout: Duration::from_secs(1),
            max_keep_alive_requests: 100,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    // Read routes stay open without a token.
    assert_eq!(
        loadgen::get(addr, "/v1/datasets?format=json")
            .unwrap()
            .status,
        200
    );

    // An unauthorized upload (whole body on the wire) is refused without
    // ingesting a byte: the route refuses to consume the body, so it
    // rides the server's drain-before-route path and the 401 goes out.
    let xml = feed_xml();
    let rejected = loadgen::request_with_body(addr, "PUT", "/v1/datasets/feed", &[], &xml).unwrap();
    assert_eq!(rejected.status, 401, "{}", rejected.body_string());
    assert_eq!(
        rejected.header("www-authenticate"),
        Some("Bearer realm=\"osdiv-ingest\"")
    );
    assert_eq!(
        loadgen::get(addr, "/v1/datasets/feed").unwrap().status,
        404,
        "nothing was ingested"
    );

    // Wrong token over chunked framing: same refusal, same clean state.
    let chunks: Vec<&[u8]> = xml.chunks(97).collect();
    let wrong = loadgen::request_chunked(
        addr,
        "PUT",
        "/v1/datasets/feed",
        &[("Authorization", "Bearer nope")],
        &chunks,
    )
    .unwrap();
    assert_eq!(wrong.status, 401);
    assert_eq!(loadgen::get(addr, "/v1/datasets/feed").unwrap().status, 404);

    // DELETE is gated by the same token.
    assert_eq!(
        loadgen::request(addr, "DELETE", "/v1/datasets/feed", &[])
            .unwrap()
            .status,
        401
    );

    // The right token ingests and deletes normally.
    let created = loadgen::request_chunked(
        addr,
        "PUT",
        "/v1/datasets/feed",
        &[("Authorization", "Bearer s3cret")],
        &chunks,
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_string());
    assert_eq!(
        loadgen::get(addr, "/v1/analyses/validity?dataset=feed")
            .unwrap()
            .status,
        200
    );
    let deleted = loadgen::request(
        addr,
        "DELETE",
        "/v1/datasets/feed",
        &[("Authorization", "Bearer s3cret")],
    )
    .unwrap();
    assert_eq!(deleted.status, 200);

    handle.shutdown().unwrap();
}

#[test]
fn chunked_feed_upload_becomes_queryable_through_every_analysis_route() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();

    // Stream the feed in small wire chunks (no Content-Length anywhere).
    let xml = feed_xml();
    let chunks: Vec<&[u8]> = xml.chunks(97).collect();
    let created = loadgen::request_chunked(addr, "PUT", "/v1/datasets/feed", &[], &chunks).unwrap();
    assert_eq!(created.status, 201, "{}", created.body_string());
    assert!(created.body_string().contains("\"entries\":12"));

    // The dataset is now queryable through every existing analysis route…
    let reference = {
        let mut ingester = osdiv_registry::FeedIngester::new(Default::default());
        ingester.push(&xml).unwrap();
        Arc::new(ingester.finish().unwrap().into_study())
    };
    for id in AnalysisId::ALL {
        let response = loadgen::get(
            addr,
            &format!("/v1/analyses/{}?dataset=feed&format=json", id.name()),
        )
        .unwrap();
        assert_eq!(response.status, 200, "{id}");
        // …serving exactly the bytes the core renders for that dataset.
        let sections = analysis_sections(&reference, id, &Params::new()).unwrap();
        assert_eq!(
            response.body_string(),
            renderer(Format::Json).document(&sections),
            "{id}"
        );
    }
    let report = loadgen::get(addr, "/v1/report?dataset=feed&format=json").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.body_string(),
        reference.report(Format::Json).unwrap()
    );

    // ETags are keyed per dataset even for identical paths.
    let feed_tag = loadgen::get(addr, "/v1/analyses/validity?dataset=feed")
        .unwrap()
        .header("etag")
        .unwrap()
        .to_string();
    let default_tag = loadgen::get(addr, "/v1/analyses/validity")
        .unwrap()
        .header("etag")
        .unwrap()
        .to_string();
    assert_ne!(feed_tag, default_tag);

    // Listing, revalidation, deletion, clean 404.
    let list = loadgen::get(addr, "/v1/datasets?format=json").unwrap();
    assert!(list.body_string().contains("feed"));
    let revalidated = loadgen::get_with_headers(
        addr,
        "/v1/analyses/validity?dataset=feed",
        &[("If-None-Match", &feed_tag)],
    )
    .unwrap();
    assert_eq!(revalidated.status, 304);
    let deleted = loadgen::request(addr, "DELETE", "/v1/datasets/feed", &[]).unwrap();
    assert_eq!(deleted.status, 200);
    assert_eq!(
        loadgen::get(addr, "/v1/report?dataset=feed")
            .unwrap()
            .status,
        404
    );

    handle.shutdown().unwrap();
}

#[test]
fn default_dataset_urls_are_identical_with_and_without_the_param() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();
    for path in [
        "/v1/report?format=json",
        "/v1/analyses/validity?format=csv",
        "/v1/analyses/kway?profile=isolated&max_k=4&format=json",
    ] {
        let implicit = loadgen::get(addr, path).unwrap();
        let explicit = loadgen::get(addr, &format!("{path}&dataset=default")).unwrap();
        assert_eq!(implicit.status, 200, "{path}");
        assert_eq!(implicit.body, explicit.body, "{path}");
        assert_eq!(
            implicit.header("etag"),
            explicit.header("etag"),
            "{path} ETags must agree"
        );
    }
    handle.shutdown().unwrap();
}

#[test]
fn seed_registered_datasets_serve_alternate_studies() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();
    let created = loadgen::request(addr, "PUT", "/v1/datasets/alt?seed=7", &[]).unwrap();
    assert_eq!(created.status, 201);
    let response = loadgen::get(addr, "/v1/analyses/pairwise?dataset=alt&format=csv").unwrap();
    assert_eq!(response.status, 200);
    // Registering over a live name conflicts; invalid names are 400s.
    assert_eq!(
        loadgen::request(addr, "PUT", "/v1/datasets/alt?seed=9", &[])
            .unwrap()
            .status,
        409
    );
    assert_eq!(
        loadgen::request(addr, "PUT", "/v1/datasets/Not%20Valid?seed=1", &[])
            .unwrap()
            .status,
        400
    );
    handle.shutdown().unwrap();
}

#[test]
fn head_requests_are_supported_by_client_and_server() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();
    let get = loadgen::get(addr, "/v1/report?format=csv").unwrap();
    let head = loadgen::head(addr, "/v1/report?format=csv").unwrap();
    assert_eq!(head.status, 200);
    assert!(head.body.is_empty(), "HEAD carries no body");
    assert_eq!(
        head.header("content-length").unwrap(),
        get.body.len().to_string(),
        "HEAD advertises the representation's length"
    );
    assert_eq!(head.header("etag"), get.header("etag"));
    assert_eq!(head.header("content-type"), get.header("content-type"));
    // The connection stays usable: a follow-up request on a fresh one-shot
    // works (and HEAD of an error route mirrors its status).
    assert_eq!(
        loadgen::head(addr, "/v1/analyses/nope").unwrap().status,
        404
    );
    handle.shutdown().unwrap();
}

#[test]
fn oversized_unconsumed_bodies_answer_413() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();
    // A body no route consumes, over MAX_BODY_BYTES: the drain cap kicks
    // in and the server answers 413 instead of buffering it. (A POST to a
    // GET-only route answers 405 before the body is even considered.)
    let huge = vec![b'x'; 80 * 1024];
    let response =
        loadgen::request_with_body(addr, "GET", "/v1/report?format=json", &[], &huge).unwrap();
    assert_eq!(response.status, 413);
    let post = loadgen::request_with_body(addr, "POST", "/v1/report", &[], b"tiny").unwrap();
    assert_eq!(post.status, 405);
    handle.shutdown().unwrap();
}

#[test]
fn rejected_bodies_never_run_the_route_side_effect() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();
    // Regression: `PUT /v1/datasets/{name}?seed=` does not consume its
    // body, so an oversized upload used to register the dataset first and
    // only then replace the 201 with a 413 — the side effect without the
    // success. The body is now drained (and rejected) before routing.
    let huge = vec![b'x'; 80 * 1024];
    let response =
        loadgen::request_with_body(addr, "PUT", "/v1/datasets/sneaky?seed=5", &[], &huge).unwrap();
    assert_eq!(response.status, 413);
    assert_eq!(
        loadgen::get(addr, "/v1/report?dataset=sneaky")
            .unwrap()
            .status,
        404,
        "a rejected request must not have registered the dataset"
    );
    let list = loadgen::get(addr, "/v1/datasets?format=json").unwrap();
    assert!(!list.body_string().contains("sneaky"));
    handle.shutdown().unwrap();
}

#[test]
fn loadgen_drives_concurrent_clients_to_completion() {
    let (_, handle) = start_server(false);
    let report = loadgen::run_loadgen(handle.addr(), 4, 25, "/v1/report?format=json");
    assert_eq!(report.total, 100);
    assert_eq!(report.ok, 100, "errors: {}", report.errors);
    assert!(report.requests_per_sec() > 0.0);
    handle.shutdown().unwrap();
}

#[test]
fn responses_carry_request_ids_and_histograms_over_real_sockets() {
    let (_, handle) = start_server(false);
    let addr = handle.addr();

    // Every response — success and error alike — carries an X-Request-Id.
    let ok = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_eq!(ok.status, 200);
    assert!(ok.header("x-request-id").is_some());
    let missing = loadgen::get(addr, "/v1/analyses/nope").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.header("x-request-id").is_some());

    // A pipelined burst: every response gets its own unique id.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    for _ in 0..4 {
        write_request(reader.get_mut(), "GET", "/v1/healthz", &[]).unwrap();
    }
    let mut ids = Vec::new();
    for _ in 0..4 {
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        ids.push(response.header("x-request-id").unwrap().to_string());
    }
    drop(reader);
    let unique: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "pipelined ids must be unique");

    // The traffic above populated the per-route and per-stage histograms.
    // A route sample lands *after* the worker finishes writing the
    // response, so a just-served client can outrun the recording by a
    // scheduling quantum — poll briefly instead of scraping once.
    let expected = [
        "osdiv_request_duration_seconds_count{route=\"report\"}",
        "osdiv_request_duration_seconds_count{route=\"healthz\"}",
        "osdiv_stage_duration_seconds_count{stage=\"parse\"}",
        "osdiv_stage_duration_seconds_count{stage=\"write\"}",
        "osdiv_build_info{version=\"",
        "# TYPE osdiv_uptime_seconds gauge",
    ];
    let mut body = String::new();
    for _ in 0..100 {
        let metrics = loadgen::get(addr, "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        body = metrics.body_string();
        if expected.iter().all(|series| body.contains(series)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for series in expected {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }

    handle.shutdown().unwrap();
}

#[test]
fn server_access_log_records_every_request() {
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf::default();
    let log = Arc::new(osdiv_core::EventLog::to_writer(Box::new(buf.clone())));
    let router = Arc::new(Router::with_study(
        study(),
        RouterOptions {
            seed: SEED,
            cache_capacity: 8,
            access_log: Some(Arc::clone(&log)),
            // A zero threshold promotes every request to `slow_request`.
            slow_request_us: 0,
            ..RouterOptions::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        router,
        ServerOptions {
            threads: 2,
            read_timeout: Duration::from_secs(1),
            max_keep_alive_requests: 100,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let ok = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_eq!(ok.status, 200);
    let id = ok.header("x-request-id").unwrap().to_string();
    handle.shutdown().unwrap();
    log.flush();

    let raw = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(raw).unwrap();
    let line = text
        .lines()
        .find(|line| line.contains("\"path\":\"/v1/report\""))
        .unwrap_or_else(|| panic!("no report line in access log:\n{text}"));
    assert!(
        line.contains("\"ts\":"),
        "log lines carry a timestamp: {line}"
    );
    assert!(line.contains("\"event\":\"slow_request\""), "{line}");
    assert!(line.contains("\"route\":\"report\""), "{line}");
    assert!(line.contains("\"status\":200"), "{line}");
    assert!(line.contains("\"total_us\":"), "{line}");
    assert!(line.contains(&format!("\"id\":\"{id}\"")), "{line}");
}

fn start_debug_server(ingest_token: Option<&str>) -> ServerHandle {
    let router = Arc::new(Router::with_study(
        study(),
        RouterOptions {
            seed: SEED,
            cache_capacity: 8,
            enable_debug: true,
            ingest_token: ingest_token.map(str::to_string),
            ..RouterOptions::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        router,
        ServerOptions {
            threads: 2,
            read_timeout: Duration::from_secs(1),
            max_keep_alive_requests: 100,
            ..ServerOptions::default()
        },
    )
    .expect("an ephemeral loop-back port is bindable");
    server.spawn()
}

#[test]
fn debug_routes_are_gated_by_flag_and_bearer_token() {
    // Off by default: the routes exist but refuse with a 403 hint.
    let (_, handle) = start_server(false);
    let addr = handle.addr();
    let refused = loadgen::get(addr, "/v1/debug/spans").unwrap();
    assert_eq!(refused.status, 403);
    assert!(refused.body_string().contains("--enable-debug"));
    handle.shutdown().unwrap();

    // Enabled with a token: anonymous and wrong-token callers get the
    // same 401 the ingest routes give; the right bearer token dumps JSON.
    let handle = start_debug_server(Some("s3cret"));
    let addr = handle.addr();
    for path in ["/v1/debug/spans", "/v1/debug/registry", "/v1/debug/pool"] {
        let anon = loadgen::get(addr, path).unwrap();
        assert_eq!(anon.status, 401, "{path}");
        assert_eq!(
            anon.header("www-authenticate"),
            Some("Bearer realm=\"osdiv-ingest\""),
            "{path}"
        );
        let wrong =
            loadgen::get_with_headers(addr, path, &[("Authorization", "Bearer nope")]).unwrap();
        assert_eq!(wrong.status, 401, "{path}");
        let ok =
            loadgen::get_with_headers(addr, path, &[("Authorization", "Bearer s3cret")]).unwrap();
        assert_eq!(ok.status, 200, "{path}");
        assert_eq!(
            ok.header("content-type"),
            Some("application/json"),
            "{path}"
        );
    }
    let auth = [("Authorization", "Bearer s3cret")];
    let spans = loadgen::get_with_headers(addr, "/v1/debug/spans", &auth).unwrap();
    assert!(spans.body_string().contains("\"traceEvents\":["));
    let registry = loadgen::get_with_headers(addr, "/v1/debug/registry", &auth).unwrap();
    assert!(registry.body_string().contains("\"tenants\":["));
    let pool = loadgen::get_with_headers(addr, "/v1/debug/pool", &auth).unwrap();
    assert!(pool.body_string().contains("\"workers_total\":"));
    // GET-only, like every other read route.
    assert_eq!(
        loadgen::request(addr, "POST", "/v1/debug/spans", &auth)
            .unwrap()
            .status,
        405
    );
    handle.shutdown().unwrap();
}

#[test]
fn debug_span_dump_joins_ingest_stages_to_the_request_id() {
    let handle = start_debug_server(None);
    let addr = handle.addr();

    // A chunked feed upload leaves carve/parse/insert spans in the ring…
    let xml = feed_xml();
    let chunks: Vec<&[u8]> = xml.chunks(97).collect();
    let created =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/debugfeed", &[], &chunks).unwrap();
    assert_eq!(created.status, 201, "{}", created.body_string());
    let put_id = created
        .header("x-request-id")
        .expect("the PUT carries an X-Request-Id")
        .to_string();

    // …all joined to the PUT's request id in the Chrome-trace dump. The
    // root request span is recorded after the response hits the wire, so
    // poll briefly rather than racing the worker for it.
    let needle = format!("\"request\":\"{put_id}\"");
    let stages = ["ingest_carve", "ingest_parse", "ingest_insert"];
    let mut body = String::new();
    let mut joined: Vec<String> = Vec::new();
    for _ in 0..100 {
        let dump = loadgen::get(addr, "/v1/debug/spans").unwrap();
        assert_eq!(dump.status, 200);
        body = dump.body_string();
        // Each trace event opens with its name field; keep the segments
        // that carry the PUT's join key.
        joined = body
            .split("{\"name\":")
            .skip(1)
            .filter(|event| event.contains(&needle))
            .map(str::to_string)
            .collect();
        let root_landed = joined.iter().any(|event| event.starts_with("\"request:"));
        if root_landed
            && stages
                .iter()
                .all(|stage| joined.iter().any(|event| event.contains(stage)))
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!joined.is_empty(), "no spans joined to {put_id}:\n{body}");
    for stage in stages {
        assert!(
            joined.iter().any(|event| event.contains(stage)),
            "no {stage} span joined to the PUT:\n{body}"
        );
    }
    assert!(
        joined.iter().any(|event| event.starts_with("\"request:")),
        "the root request span is missing from the dump:\n{body}"
    );

    handle.shutdown().unwrap();
}

#[test]
fn open_loop_loadgen_completes_against_a_live_server() {
    let (_, handle) = start_server(false);
    let report = loadgen::run_open_loop(
        handle.addr(),
        &OpenLoopConfig {
            rate_per_sec: 500.0,
            duration: Duration::from_millis(400),
            connections: 2,
            ..OpenLoopConfig::default()
        },
    );
    assert_eq!(report.errors, 0);
    assert_eq!(report.ok, report.total);
    assert_eq!(report.latency.total(), report.ok as u64);
    assert!(report.quantile_us(0.99) >= report.quantile_us(0.50));
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_endpoint_stops_the_server_cleanly() {
    let (router, handle) = start_server(true);
    let addr = handle.addr();

    let response = loadgen::request(addr, "POST", "/v1/shutdown", &[]).unwrap();
    assert_eq!(response.status, 200);
    assert!(router
        .shutdown_flag()
        .load(std::sync::atomic::Ordering::SeqCst));
    // The handle joins the (already winding down) accept loop.
    handle.shutdown().unwrap();
    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "the listener must be closed after shutdown"
    );
}

#[test]
fn slow_loris_is_cut_off_within_twice_the_io_budget() {
    use std::io::Write;

    let io_timeout = Duration::from_millis(400);
    let router = Arc::new(Router::with_study(
        study(),
        RouterOptions {
            seed: SEED,
            cache_capacity: 8,
            ..RouterOptions::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerOptions {
            threads: 2,
            read_timeout: Duration::from_secs(1),
            io_timeout,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let started = std::time::Instant::now();
    let mut response = Vec::new();
    let mut buf = [0u8; 512];
    // Trickle header bytes far slower than the server's read timeout —
    // each individual write keeps the socket "alive", but the request
    // head never completes.
    'loris: loop {
        let _ = stream.write_all(b"G");
        std::thread::sleep(Duration::from_millis(25));
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break 'loris, // server closed the connection
                Ok(n) => response.extend_from_slice(&buf[..n]),
                Err(_) => break, // read timeout: keep trickling
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the server never cut the slow-loris connection"
        );
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed <= 2 * io_timeout,
        "cut after {elapsed:?}, budget was {io_timeout:?}"
    );
    let head = String::from_utf8_lossy(&response);
    assert!(head.starts_with("HTTP/1.1 408"), "got: {head}");
    assert!(router.metrics().io_timeouts_total() > 0);
    handle.shutdown().unwrap();
}

#[test]
fn overload_sheds_ingestion_first_while_cached_reads_survive() {
    let router = Arc::new(Router::with_study(
        study(),
        RouterOptions {
            seed: SEED,
            cache_capacity: 8,
            ..RouterOptions::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerOptions {
            threads: 2,
            read_timeout: Duration::from_secs(1),
            shed_queue_depth: 8, // soft watermark: 4
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    // Warm the render cache before the "overload".
    let warm = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_eq!(warm.status, 200);

    // Inflate the dispatch-queue gauge past the soft watermark (but not
    // the hard one): admission control reads the gauge, so this stands
    // in for a real backlog deterministically.
    for _ in 0..6 {
        router.metrics().dispatch_enqueued();
    }

    // Ingestion sheds with 503 + Retry-After before consuming the body.
    let shed = loadgen::request_with_body(
        addr,
        "PUT",
        "/v1/datasets/shedme",
        &[("Content-Type", "application/xml")],
        b"<nvd><entry name=\"CVE-2020-0001\"></entry></nvd>",
    )
    .unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(router.metrics().shed_total() > 0);

    // Cached reads still answer 200 under the same pressure.
    let read = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_eq!(read.status, 200);

    // Past the hard watermark even reads are cheap-rejected, pre-parse.
    for _ in 0..8 {
        router.metrics().dispatch_enqueued();
    }
    let rejected = loadgen::get(addr, "/v1/report?format=json").unwrap();
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("retry-after"), Some("1"));

    // Drain the synthetic backlog so shutdown's wake-up connection is
    // actually served.
    for _ in 0..14 {
        router.metrics().dispatch_dequeued();
    }
    handle.shutdown().unwrap();
}
