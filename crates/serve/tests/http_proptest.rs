//! Property tests of the incremental HTTP request parser and the chunked
//! body decoder: arbitrary header splits and torn reads across buffer
//! boundaries must parse exactly like one contiguous read, torn and
//! pipelined chunked bodies must decode exactly like contiguous ones, and
//! malformed or oversized input must map to 400/431 violations — never a
//! panic.

use osdiv_serve::http::{
    ChunkedDecoder, HttpViolation, Request, RequestParser, MAX_CHUNK_LINE_BYTES,
    MAX_REQUEST_LINE_BYTES,
};
use proptest::prelude::*;

/// Parses a whole byte string in a single feed.
fn oneshot(raw: &[u8]) -> Result<Option<Request>, HttpViolation> {
    RequestParser::new().feed(raw)
}

/// Parses a byte string fed in `chunk`-sized pieces, returning the first
/// completed request (or first violation).
fn torn(raw: &[u8], chunk: usize) -> Result<Option<Request>, HttpViolation> {
    let mut parser = RequestParser::new();
    for piece in raw.chunks(chunk.max(1)) {
        match parser.feed(piece) {
            Ok(None) => {}
            done => return done,
        }
    }
    Ok(None)
}

proptest! {
    #[test]
    fn torn_reads_parse_exactly_like_contiguous_reads(
        path in "[a-z0-9/]{1,24}",
        key in "[a-z]{1,8}",
        value in "[a-z0-9 ]{0,16}",
        header_count in 0usize..5,
        chunk in 1usize..9,
    ) {
        let mut raw = format!("GET /{path}?{key}={} HTTP/1.1\r\n", value.replace(' ', "+"));
        for i in 0..header_count {
            raw.push_str(&format!("x-header-{i}: value {i}\r\n"));
        }
        raw.push_str("\r\n");
        let expected = oneshot(raw.as_bytes());
        let got = torn(raw.as_bytes(), chunk);
        prop_assert_eq!(&got, &expected);
        let request = got.unwrap().expect("request is complete");
        prop_assert_eq!(request.path, format!("/{path}"));
        prop_assert_eq!(request.query[0].0.clone(), key);
        prop_assert_eq!(request.query[0].1.clone(), value);
        prop_assert_eq!(request.headers.len(), header_count);
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_violations_are_400_or_431(
        bytes in proptest::collection::vec(0u8..=255u8, 0..400),
        chunk in 1usize..17,
    ) {
        for result in [oneshot(&bytes), torn(&bytes, chunk)] {
            if let Err(violation) = result {
                prop_assert!(matches!(violation.status(), 400 | 431));
            }
        }
    }

    #[test]
    fn torn_garbage_agrees_with_contiguous_garbage(
        bytes in proptest::collection::vec(0u8..=255u8, 0..200),
        chunk in 1usize..9,
    ) {
        // A violation (or a completed parse) must not depend on how the
        // bytes were split across reads, with one exception: the torn
        // parser may detect an over-long request line before the full
        // buffer arrives, which the oneshot parse resolves differently.
        let a = oneshot(&bytes);
        let b = torn(&bytes, chunk);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn oversized_request_lines_are_431(extra in 1usize..64, chunk in 1usize..2048) {
        let line = vec![b'a'; MAX_REQUEST_LINE_BYTES + extra];
        let result = torn(&line, chunk);
        prop_assert_eq!(result, Err(HttpViolation::HeadTooLarge));
    }

    #[test]
    fn torn_chunked_bodies_decode_exactly_like_contiguous_ones(
        payload in proptest::collection::vec(0u8..=255u8, 0..300),
        wire_chunk in 1usize..40,
        feed_chunk in 1usize..17,
        pipelined in proptest::collection::vec(0u8..=255u8, 0..40),
    ) {
        // Encode the payload as chunked framing in `wire_chunk`-sized
        // chunks, then append pipelined garbage past the terminator.
        let mut wire = Vec::new();
        for piece in payload.chunks(wire_chunk) {
            wire.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
            wire.extend_from_slice(piece);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let body_len = wire.len();
        wire.extend_from_slice(&pipelined);

        // Contiguous decode.
        let mut oneshot = ChunkedDecoder::new();
        let mut oneshot_sink = Vec::new();
        let consumed = oneshot.decode(&wire, &mut oneshot_sink).unwrap();
        prop_assert!(oneshot.is_done());
        prop_assert_eq!(consumed, body_len, "stops exactly at the terminator");
        prop_assert_eq!(&oneshot_sink, &payload);

        // Torn decode, `feed_chunk` bytes at a time.
        let mut torn = ChunkedDecoder::new();
        let mut torn_sink = Vec::new();
        let mut offset = 0;
        for piece in wire.chunks(feed_chunk) {
            let consumed = torn.decode(piece, &mut torn_sink).unwrap();
            offset += consumed;
            if torn.is_done() {
                break;
            }
            prop_assert_eq!(consumed, piece.len(), "incomplete bodies consume everything");
        }
        prop_assert!(torn.is_done());
        prop_assert_eq!(offset, body_len);
        prop_assert_eq!(&torn_sink, &payload);
    }

    #[test]
    fn bad_chunk_size_lines_are_400(garbage in "[g-z!@# ]{1,10}", chunk in 1usize..9) {
        let wire = format!("{garbage}\r\ndata\r\n0\r\n\r\n");
        let mut decoder = ChunkedDecoder::new();
        let mut sink = Vec::new();
        let mut outcome = Ok(0);
        for piece in wire.as_bytes().chunks(chunk) {
            outcome = decoder.decode(piece, &mut sink);
            if outcome.is_err() {
                break;
            }
        }
        prop_assert!(
            matches!(outcome, Err(HttpViolation::BadRequest(_))),
            "{wire:?} -> {outcome:?}"
        );
    }

    #[test]
    fn oversized_chunk_size_lines_are_431(extra in 1usize..64, chunk in 1usize..64) {
        let line = vec![b'a'; MAX_CHUNK_LINE_BYTES + extra];
        let mut decoder = ChunkedDecoder::new();
        let mut sink = Vec::new();
        let mut outcome = Ok(0);
        for piece in line.chunks(chunk) {
            outcome = decoder.decode(piece, &mut sink);
            if outcome.is_err() {
                break;
            }
        }
        prop_assert_eq!(outcome, Err(HttpViolation::HeadTooLarge));
    }

    #[test]
    fn arbitrary_chunked_input_never_panics(
        bytes in proptest::collection::vec(0u8..=255u8, 0..300),
        chunk in 1usize..17,
    ) {
        let mut decoder = ChunkedDecoder::new();
        let mut sink = Vec::new();
        for piece in bytes.chunks(chunk) {
            match decoder.decode(piece, &mut sink) {
                Ok(_) => {}
                Err(violation) => {
                    prop_assert!(matches!(violation.status(), 400 | 431));
                    break;
                }
            }
        }
    }

    #[test]
    fn malformed_request_lines_never_panic(line in "[ -~]{0,48}") {
        let raw = format!("{line}\r\n\r\n");
        match oneshot(raw.as_bytes()) {
            Ok(_) => {}
            Err(violation) => prop_assert!(matches!(violation.status(), 400 | 431)),
        }
        // Splitting a space into the request line always breaks it.
        let broken = format!("GE T /{line} HTTP/1.1\r\n\r\n");
        prop_assert!(matches!(
            oneshot(broken.as_bytes()),
            Err(HttpViolation::BadRequest(_))
        ));
    }
}
