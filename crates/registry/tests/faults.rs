//! Fault-injection property: for *any* single injected [`Vfs`] failure
//! during a tenant `PUT` (journal create, header/record appends, snapshot
//! temp write, fsyncs, rename, journal retirement), under either
//! durability policy:
//!
//! * reads keep answering — the snapshot on disk is always a complete
//!   committed state (old or new), never a hybrid, and always loads;
//! * cold recovery over the crash debris reports no errors;
//! * the next fault-free `PUT` of the same payload fully recovers.
//!
//! [`Vfs`]: osdiv_registry::Vfs

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use nvd_feed::FeedWriter;
use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_core::{Format, Study};
use osdiv_registry::{
    ChaosVfs, DatasetSource, Durability, FeedIngester, IngestBudget, RegistryOptions,
    StudyRegistry, TenantStore,
};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "osdiv-registry-faults-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn feed(entries: usize, year: u16) -> String {
    let entries: Vec<_> = (0..entries)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(year, 200 + i as u32))
                .summary(format!("Integer overflow number {i} in the NFS server"))
                .affects_os(if i % 2 == 0 {
                    OsDistribution::OpenBsd
                } else {
                    OsDistribution::Windows2003
                })
                .build()
                .unwrap()
        })
        .collect();
    FeedWriter::new().write_to_string(&entries).unwrap()
}

fn ingest(xml: &str) -> (Arc<Study>, DatasetSource) {
    let mut ingester = FeedIngester::new(IngestBudget::default());
    ingester.push(xml.as_bytes()).unwrap();
    let outcome = ingester.finish().unwrap();
    let source = DatasetSource::Ingested {
        entries: outcome.entries,
        skipped: outcome.skipped,
        feed_bytes: outcome.feed_bytes,
    };
    (Arc::new(outcome.into_study()), source)
}

/// The full streaming-`PUT` persistence flow, aborting at the first
/// failure exactly like the registry does: journal the raw feed, snapshot
/// the ingested study, retire the journal.
fn put(
    store: &TenantStore,
    name: &str,
    xml: &str,
    study: &Arc<Study>,
    source: &DatasetSource,
) -> Result<(), String> {
    let err = |error: &dyn std::fmt::Display| error.to_string();
    let mut journal = store.journal(name).map_err(|e| err(&e))?;
    let cut = xml.len() / 2;
    journal
        .append(&xml.as_bytes()[..cut])
        .map_err(|e| err(&e))?;
    journal
        .append(&xml.as_bytes()[cut..])
        .map_err(|e| err(&e))?;
    store.save(name, study, source).map_err(|e| err(&e))?;
    journal.finish().map_err(|e| err(&e))?;
    Ok(())
}

proptest! {
    #[test]
    fn any_single_vfs_fault_leaves_reads_correct_and_a_retry_recovers(
        // Large enough to cover every op of the longest (Full) flow;
        // indices past the end simply mean no fault fires.
        fail_op in 0usize..16,
        durability in prop_oneof![Just(Durability::Rename), Just(Durability::Full)],
    ) {
        let dir = temp_dir("put");
        let chaos = ChaosVfs::new();
        let store =
            TenantStore::open_with(&dir, durability, Arc::new(chaos.clone())).unwrap();

        // Fault-free baseline PUT: the old committed state.
        let old_xml = feed(10, 2004);
        let (old, old_source) = ingest(&old_xml);
        put(&store, "t", &old_xml, &old, &old_source).unwrap();
        let old_report = old.report(Format::Json).unwrap();

        // The faulted PUT: exactly one injected failure somewhere in the
        // flow. The flow aborts at the failure, like a real request.
        let new_xml = feed(14, 2006);
        let (new, new_source) = ingest(&new_xml);
        let new_report = new.report(Format::Json).unwrap();
        chaos.reset();
        chaos.set_fail_op(Some(fail_op));
        let outcome = put(&store, "t", &new_xml, &new, &new_source);
        chaos.set_fail_op(None);
        if let Err(detail) = &outcome {
            prop_assert!(
                detail.contains("chaos"),
                "the only allowed failure is the injected one, got: {detail}"
            );
        }

        // Reads stay correct: the snapshot always loads and serves a
        // byte-identical old or new report — never a hybrid.
        let loaded = store.load("t");
        prop_assert!(loaded.is_ok(), "snapshot unreadable after fault: {loaded:?}");
        let report = loaded.unwrap().study.report(Format::Json).unwrap();
        prop_assert!(
            report == old_report || report == new_report,
            "read served a state no successful PUT ever committed"
        );

        // Cold recovery over the debris (possibly a leftover journal)
        // reports no errors.
        let boot = Arc::new(TenantStore::open(&dir).unwrap());
        let registry =
            StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&boot));
        let recovery = registry.recover(&IngestBudget::default());
        prop_assert!(
            recovery.errors.is_empty(),
            "recovery errored after a single fault: {:?}",
            recovery.errors
        );

        // A fault-free retry of the same PUT fully recovers.
        put(&store, "t", &new_xml, &new, &new_source).unwrap();
        let report = store.load("t").unwrap().study.report(Format::Json).unwrap();
        prop_assert_eq!(report, new_report);
        prop_assert!(
            !store.journal_path("t").exists(),
            "a completed PUT must retire its journal"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}
