//! Proof that the parallel parse pipeline is invisible to consumers: a
//! multi-megabyte calibrated feed ingested through the worker pool yields
//! a **byte-identical** combined report to a strictly sequential ingestion
//! of the same bytes.

use datagen::CalibratedGenerator;
use nvd_feed::FeedWriter;
use osdiv_registry::{FeedIngester, IngestBudget};

fn calibrated_feed() -> String {
    let dataset = CalibratedGenerator::new(42).generate();
    FeedWriter::new()
        .write_to_string(dataset.entries())
        .expect("generated entries serialize")
}

fn ingest(xml: &str, workers: usize, chunk: usize) -> osdiv_registry::IngestOutcome {
    let mut ingester = FeedIngester::with_workers(IngestBudget::default(), workers);
    for piece in xml.as_bytes().chunks(chunk) {
        ingester
            .push(piece)
            .expect("calibrated feeds are well-formed");
    }
    ingester.finish().expect("calibrated feeds are complete")
}

#[test]
fn parallel_ingestion_report_is_byte_identical_to_sequential() {
    let xml = calibrated_feed();
    assert!(
        xml.len() > 500 * 1024,
        "the calibrated feed should be big enough to exercise the pipeline ({} bytes)",
        xml.len()
    );

    let sequential = ingest(&xml, 0, 64 * 1024);
    let reference = sequential.into_study();
    let reference_report = reference
        .report(osdiv_core::Format::Text)
        .expect("default configurations are valid");

    for workers in [2, 4] {
        let outcome = ingest(&xml, workers, 8 * 1024);
        let study = outcome.into_study();
        let report = study
            .report(osdiv_core::Format::Text)
            .expect("default configurations are valid");
        assert_eq!(
            report, reference_report,
            "{workers}-worker ingestion must render the same report bytes"
        );
    }
}

#[test]
fn parallel_ingestion_counters_match_sequential() {
    let xml = calibrated_feed();
    let sequential = ingest(&xml, 0, 64 * 1024);
    let parallel = ingest(&xml, 3, 4096);
    assert_eq!(parallel.entries, sequential.entries);
    assert_eq!(parallel.parsed, sequential.parsed);
    assert_eq!(parallel.skipped, sequential.skipped);
    assert_eq!(parallel.feed_bytes, sequential.feed_bytes);
    assert_eq!(
        parallel.dataset.estimated_bytes(),
        sequential.dataset.estimated_bytes()
    );
}
