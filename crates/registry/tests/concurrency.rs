//! Registry concurrency: threads ingesting, evicting, deleting and
//! querying distinct and colliding dataset names must never panic, must
//! keep memoized `Arc` identity stable for surviving datasets, and must
//! answer clean typed errors — `NotFound` after deletion, `Evicted` after
//! capacity eviction — never torn state.

use std::sync::Arc;

use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_core::Study;
use osdiv_registry::{DatasetSource, RegistryError, RegistryOptions, StudyRegistry};

fn small_study(tag: u32) -> Arc<Study> {
    let entries: Vec<_> = (0..5u32)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(2004, tag * 100 + i + 1))
                .summary("Buffer overflow in the TCP/IP stack")
                .affects_os(OsDistribution::Debian)
                .build()
                .unwrap()
        })
        .collect();
    Arc::new(Study::from_entries(&entries))
}

fn ingested(entries: usize) -> DatasetSource {
    DatasetSource::Ingested {
        entries,
        skipped: 0,
        feed_bytes: 0,
    }
}

#[test]
fn colliding_inserts_elect_exactly_one_winner() {
    let registry = StudyRegistry::new(RegistryOptions::default());
    let outcomes: Vec<Result<(), RegistryError>> = std::thread::scope(|scope| {
        let registry = &registry;
        (0..8)
            .map(|tag| {
                scope.spawn(move || registry.insert("contested", small_study(tag), ingested(5)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    let winners = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(winners, 1, "exactly one insert wins the name");
    assert!(outcomes
        .iter()
        .filter_map(|o| o.as_ref().err())
        .all(|e| matches!(e, RegistryError::AlreadyExists { .. })));
    // Every subsequent reader observes the one winning session.
    let first = registry.get("contested").unwrap();
    let second = registry.get("contested").unwrap();
    assert!(Arc::ptr_eq(&first, &second));
}

#[test]
fn concurrent_lazy_builds_of_one_synthetic_spec_agree_on_one_arc() {
    let registry = StudyRegistry::new(RegistryOptions::default());
    registry.register_synthetic("lazy", 3).unwrap();
    let studies: Vec<Arc<Study>> = std::thread::scope(|scope| {
        let registry = &registry;
        (0..8)
            .map(|_| scope.spawn(move || registry.get("lazy").unwrap()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    for pair in studies.windows(2) {
        assert!(
            Arc::ptr_eq(&pair[0], &pair[1]),
            "all concurrent first accesses observe the winning build"
        );
    }
}

#[test]
fn mixed_ingest_evict_query_delete_storm_stays_consistent() {
    // A byte budget that holds roughly three of the small sessions, so the
    // storm constantly evicts.
    let budget = small_study(0).estimated_bytes() * 3 + 512;
    let registry = StudyRegistry::new(RegistryOptions {
        max_datasets: 64,
        max_total_bytes: budget,
    });

    std::thread::scope(|scope| {
        let registry = &registry;
        // Writers: each thread owns distinct names plus one contested name.
        for thread in 0..4u32 {
            scope.spawn(move || {
                for round in 0..10u32 {
                    let own = format!("t{thread}-r{round}");
                    registry
                        .insert(&own, small_study(thread), ingested(5))
                        .unwrap();
                    let _ = registry.insert("contested", small_study(thread), ingested(5));
                    if round % 3 == 0 {
                        let _ = registry.remove(&own);
                        let _ = registry.remove("contested");
                    }
                }
            });
        }
        // Readers: hammer lookups across every name that may exist.
        for _ in 0..4 {
            scope.spawn(move || {
                for _ in 0..200 {
                    for name in ["contested", "t0-r0", "t3-r9", "never-registered"] {
                        match registry.get(name) {
                            Ok(study) => {
                                // A served session is always coherent.
                                assert_eq!(study.valid_count(), 5);
                            }
                            Err(RegistryError::NotFound { .. } | RegistryError::Evicted { .. }) => {
                            }
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                }
            });
        }
    });

    // The storm respected the byte budget throughout (checked after the
    // barrier: resident bytes can never exceed it at rest).
    assert!(registry.resident_bytes() <= budget);
    assert!(registry.len() <= 64);

    // Surviving datasets stay memoized by pointer identity… (a fresh
    // post-storm insert guarantees at least one resident dataset exists,
    // whatever interleaving the storm took).
    registry
        .insert("post-storm", small_study(99), ingested(5))
        .unwrap();
    let survivors: Vec<String> = registry
        .list()
        .into_iter()
        .filter(|info| info.resident)
        .map(|info| info.name)
        .collect();
    assert!(!survivors.is_empty());
    for name in &survivors {
        let a = registry.get(name).unwrap();
        let b = registry.get(name).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "{name} lost pointer stability");
    }

    // …and a deleted survivor answers a clean NotFound, while an evicted
    // ingested dataset answers Evicted until its name is reused.
    let victim = survivors[0].clone();
    registry.remove(&victim).unwrap();
    assert_eq!(
        registry.get(&victim).unwrap_err(),
        RegistryError::NotFound {
            name: victim.clone()
        }
    );
    for info in registry.list() {
        if !info.resident {
            assert_eq!(
                registry.get(&info.name).unwrap_err(),
                RegistryError::Evicted {
                    name: info.name.clone()
                }
            );
            // Deleting the tombstone frees the name: clean NotFound after
            // the eviction is acknowledged.
            registry.remove(&info.name).unwrap();
            assert!(matches!(
                registry.get(&info.name).unwrap_err(),
                RegistryError::NotFound { .. }
            ));
        }
    }
}
