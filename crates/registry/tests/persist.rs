//! Durable-tenant integration: spill-and-reload under memory pressure,
//! warm restarts from snapshots, and crash-recovery via the ingestion
//! journal — the registry-level guarantees behind `osdiv serve
//! --data-dir`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use nvd_feed::FeedWriter;
use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_core::{Format, Study};
use osdiv_registry::{
    DatasetSource, FeedIngester, IngestBudget, RegistryOptions, StudyRegistry, TenantStore,
};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "osdiv-registry-persist-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn feed(entries: usize) -> String {
    let entries: Vec<_> = (0..entries)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(2004 + (i % 5) as u16, 100 + i as u32))
                .summary(format!("Heap overflow number {i} in the SMB service"))
                .affects_os(if i % 2 == 0 {
                    OsDistribution::Debian
                } else {
                    OsDistribution::Solaris
                })
                .build()
                .unwrap()
        })
        .collect();
    FeedWriter::new().write_to_string(&entries).unwrap()
}

fn ingest(xml: &str) -> (Arc<Study>, DatasetSource) {
    let mut ingester = FeedIngester::new(IngestBudget::default());
    ingester.push(xml.as_bytes()).unwrap();
    let outcome = ingester.finish().unwrap();
    let source = DatasetSource::Ingested {
        entries: outcome.entries,
        skipped: outcome.skipped,
        feed_bytes: outcome.feed_bytes,
    };
    (Arc::new(outcome.into_study()), source)
}

#[test]
fn eviction_spills_durable_tenants_and_reloads_them_with_the_same_generation() {
    let dir = temp_dir("spill");
    let store = Arc::new(TenantStore::open(&dir).unwrap());
    let xml = feed(12);
    let (a, a_source) = ingest(&xml);
    let (b, b_source) = ingest(&xml);
    let bytes = a.estimated_bytes();
    let registry = StudyRegistry::new(RegistryOptions {
        max_datasets: 16,
        max_total_bytes: bytes + bytes / 2,
    })
    .with_persistence(Arc::clone(&store));

    registry.insert("a", Arc::clone(&a), a_source).unwrap();
    let (_, generation_before) = registry.get_tagged("a").unwrap();
    // Admitting "b" must evict "a" — which spills instead of tombstoning.
    registry.insert("b", b, b_source).unwrap();
    let info = registry
        .list()
        .into_iter()
        .find(|info| info.name == "a")
        .unwrap();
    assert!(!info.resident);
    assert!(info.spilled, "durable eviction is a spill, not a tombstone");
    assert!(store.snapshot_path("a").exists());

    // The name transparently reloads — same data, same generation, so
    // response caches keyed on (name, generation) stay coherent.
    let (reloaded, generation_after) = registry.get_tagged("a").unwrap();
    assert_eq!(generation_before, generation_after);
    assert_eq!(reloaded.valid_count(), a.valid_count());
    assert!(store.metrics().spills() >= 1);
    assert!(store.metrics().snapshot_loads() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_serves_byte_identical_reports() {
    let dir = temp_dir("restart");
    let xml = feed(20);
    let report_before = {
        let store = Arc::new(TenantStore::open(&dir).unwrap());
        let registry =
            StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
        let (study, source) = ingest(&xml);
        registry.insert("feed", Arc::clone(&study), source).unwrap();
        assert_eq!(store.metrics().snapshot_writes(), 1);
        study.report(Format::Json).unwrap()
    }; // process "dies" here: only the disk survives

    let store = Arc::new(TenantStore::open(&dir).unwrap());
    let registry =
        StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
    let recovery = registry.recover(&IngestBudget::default());
    assert_eq!(recovery.recovered, ["feed"]);
    assert!(recovery.errors.is_empty());

    // Recovered tenants list immediately (spilled) and load lazily.
    let info = registry
        .list()
        .into_iter()
        .find(|info| info.name == "feed")
        .unwrap();
    assert!(info.spilled && !info.resident);
    assert_eq!(store.metrics().snapshot_loads(), 0, "boot decodes no store");

    let study = registry.get("feed").unwrap();
    assert_eq!(study.report(Format::Json).unwrap(), report_before);
    assert_eq!(store.metrics().snapshot_loads(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphaned_journal_replays_up_to_the_last_complete_entry() {
    let dir = temp_dir("journal");
    let xml = feed(10);
    // Simulate a crash mid-PUT: chunks journaled, the last record torn,
    // no snapshot ever written.
    {
        let store = TenantStore::open(&dir).unwrap();
        let mut journal = store.journal("crashed").unwrap();
        let cut = xml.rfind("<entry").unwrap() + 25;
        for chunk in xml.as_bytes()[..cut].chunks(512) {
            journal.append(chunk).unwrap();
        }
        drop(journal); // no finish(): the file stays behind
        let path = store.journal_path("crashed");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&9999u32.to_le_bytes()); // torn record
        bytes.extend_from_slice(b"\0\0\0\0partial");
        std::fs::write(&path, &bytes).unwrap();
    }

    let store = Arc::new(TenantStore::open(&dir).unwrap());
    let registry =
        StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
    let recovery = registry.recover(&IngestBudget::default());
    assert_eq!(recovery.replayed, ["crashed"]);
    assert!(recovery.errors.is_empty());
    assert_eq!(store.metrics().journal_replays(), 1);
    assert_eq!(store.metrics().journal_truncations(), 1);

    // 9 complete entries survive; the torn tenth was never trusted.
    let study = registry.get("crashed").unwrap();
    assert_eq!(study.valid_count(), 9);
    // The replay re-snapshots the tenant and retires the journal.
    assert!(store.snapshot_path("crashed").exists());
    assert!(!store.journal_path("crashed").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_beside_a_complete_snapshot_is_redundant() {
    let dir = temp_dir("redundant");
    {
        let store = Arc::new(TenantStore::open(&dir).unwrap());
        let registry =
            StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
        let (study, source) = ingest(&feed(6));
        registry.insert("t", study, source).unwrap();
        // Crash after the snapshot rename but before the journal delete.
        store.journal("t").unwrap();
    }
    let store = Arc::new(TenantStore::open(&dir).unwrap());
    let registry =
        StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
    let recovery = registry.recover(&IngestBudget::default());
    assert_eq!(recovery.discarded_journals, ["t"]);
    assert_eq!(recovery.recovered, ["t"]);
    assert!(!store.journal_path("t").exists());
    assert!(registry.get("t").is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delete_removes_the_snapshot_so_restarts_stay_deleted() {
    let dir = temp_dir("delete");
    let store = Arc::new(TenantStore::open(&dir).unwrap());
    let registry =
        StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
    let (study, source) = ingest(&feed(5));
    registry.insert("gone", study, source).unwrap();
    assert!(store.snapshot_path("gone").exists());
    registry.remove("gone").unwrap();
    assert!(!store.snapshot_path("gone").exists());

    let registry2 = StudyRegistry::new(RegistryOptions::default()).with_persistence(store);
    let recovery = registry2.recover(&IngestBudget::default());
    assert!(recovery.recovered.is_empty());
    assert!(!registry2.contains("gone"));
    let _ = std::fs::remove_dir_all(&dir);
}
