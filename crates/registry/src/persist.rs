//! Durable tenant storage: `OSDV` snapshots plus the `OSDJ` ingestion
//! journal, both living under one data directory.
//!
//! [`TenantStore`] owns the directory. Each tenant `name` (already
//! path-safe — see [`validate_name`]) maps to at most two files:
//!
//! * `<name>.osdv` — the versioned, checksummed snapshot written the
//!   moment an ingested dataset is registered (datasets are immutable
//!   after that, so no further writes are ever needed);
//! * `<name>.journal` — the append-only raw-feed journal kept *during*
//!   a streaming ingestion and deleted once the snapshot is durable. A
//!   crash mid-`PUT` leaves only the journal; recovery replays it up to
//!   the last complete record and **truncates — never trusts — a torn
//!   tail**.
//!
//! The journal byte layout (specified in `docs/SNAPSHOT_FORMAT.md`):
//!
//! ```text
//! offset 0  magic "OSDJ"
//! offset 4  journal format version (u16 LE)
//! offset 6  records, each:
//!             +0  payload length (u32 LE)
//!             +4  payload CRC-32 (u32 LE, IEEE polynomial)
//!             +8  payload bytes (one ingestion chunk, raw feed XML)
//! ```
//!
//! Snapshots are written to a `.tmp` sibling and atomically renamed into
//! place, so a `<name>.osdv` file is either absent or complete — a crash
//! can tear the journal but never the snapshot.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use osdiv_core::fault;
use osdiv_core::obs::{self, SpanKind};
use osdiv_core::snapshot::crc32;
use osdiv_core::{LatencyHistogram, Snapshot, SnapshotError, Study};

use crate::registry::{validate_name, DatasetSource};

/// File extension of tenant snapshots.
pub const SNAPSHOT_EXT: &str = "osdv";

/// File extension of ingestion journals.
pub const JOURNAL_EXT: &str = "journal";

/// The four magic bytes every journal starts with.
pub const JOURNAL_MAGIC: [u8; 4] = *b"OSDJ";

/// The journal format version this module writes.
pub const JOURNAL_VERSION: u16 = 1;

/// Bytes before the first journal record (magic + format version).
pub const JOURNAL_HEADER_BYTES: usize = 6;

/// Bytes of framing before each record's payload (length + CRC-32).
pub const JOURNAL_RECORD_HEADER_BYTES: usize = 8;

/// META keys a tenant snapshot carries so the registry can rebuild the
/// slot's [`DatasetSource`] without decoding the store payload.
const META_SOURCE: &str = "source";
const META_SEED: &str = "seed";
const META_ENTRIES: &str = "entries";
const META_SKIPPED: &str = "skipped";
const META_FEED_BYTES: &str = "feed_bytes";

/// Typed persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io {
        /// The operation that failed.
        what: &'static str,
        /// The underlying error.
        error: io::Error,
    },
    /// The snapshot file is corrupt, truncated or wrong-versioned.
    Snapshot(SnapshotError),
    /// The snapshot loaded but its META annotations do not describe a
    /// dataset source this registry understands.
    BadMeta {
        /// The tenant whose snapshot is unusable.
        name: String,
    },
    /// A write was attempted through a read-only store (`--no-persist`).
    ReadOnly,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { what, error } => write!(f, "{what} failed: {error}"),
            PersistError::Snapshot(error) => write!(f, "snapshot unusable: {error}"),
            PersistError::BadMeta { name } => {
                write!(
                    f,
                    "snapshot for {name:?} carries no usable source annotations"
                )
            }
            PersistError::ReadOnly => write!(f, "the tenant store is read-only"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { error, .. } => Some(error),
            PersistError::Snapshot(error) => Some(error),
            _ => None,
        }
    }
}

impl From<SnapshotError> for PersistError {
    fn from(error: SnapshotError) -> Self {
        PersistError::Snapshot(error)
    }
}

/// How far [`TenantStore::save`] pushes data toward stable storage.
///
/// `Rename` (the default) relies on the temp-file + atomic-rename
/// protocol: a *process* crash can never tear or lose an installed
/// snapshot, but an *OS* crash may lose the most recent one — the rename
/// and the data can still sit in the page cache. `Full` additionally
/// fsyncs the snapshot bytes and the data directory before the save is
/// acknowledged, and fsyncs every journal append, so the machine itself
/// can lose power without losing an acknowledged write. The guarantee
/// delta is specified in `docs/SNAPSHOT_FORMAT.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Temp file + atomic rename; no fsync (fast, the default).
    #[default]
    Rename,
    /// Rename plus fsync of the file, its directory, and journal appends.
    Full,
}

impl std::str::FromStr for Durability {
    type Err = String;

    fn from_str(spec: &str) -> Result<Durability, String> {
        match spec {
            "rename" => Ok(Durability::Rename),
            "full" => Ok(Durability::Full),
            other => Err(format!("unknown durability {other:?} (rename|full)")),
        }
    }
}

/// Failpoint sites the persistence layer evaluates (`osdiv_core::fault`):
/// one per mutating [`Vfs`] operation in [`RealVfs`], plus the
/// journal-append site checked by [`JournalWriter::append`]. Documented
/// in `docs/RESILIENCE.md`.
pub const FAILPOINT_SITES: [&str; 6] = [
    "persist.snapshot_write",
    "persist.rename",
    "persist.remove",
    "persist.journal_create",
    "persist.journal_append",
    "persist.fsync",
];

/// The error an armed failpoint injects.
fn injected(site: &'static str) -> io::Error {
    io::Error::other(format!("injected fault at {site}"))
}

/// The mutating filesystem operations the store performs, behind a trait
/// so fault-injection tests can interpose ([`ChaosVfs`]) without touching
/// the read paths (plain `fs::read` — torn reads are safe by format
/// design, so only writes need chaos).
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Writes `bytes` as the complete contents of `path`
    /// (create-or-truncate).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` onto `to` (atomic within one directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates (truncating) `path`, open for appending.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Flushes `path`'s bytes to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory's entry metadata to stable storage.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// An open append-only file handle dispensed by [`Vfs::create`].
pub trait VfsFile: fmt::Debug + Send {
    /// Appends `bytes` completely or not at all — a short write surfaces
    /// as an error, never as silent truncation.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flushes the file's bytes to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The production [`Vfs`]: thin wrappers over `std::fs`, each behind a
/// named failpoint so chaos runs can fail any operation
/// deterministically.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if fault::failpoint("persist.snapshot_write") {
            return Err(injected("persist.snapshot_write"));
        }
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if fault::failpoint("persist.rename") {
            return Err(injected("persist.rename"));
        }
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if fault::failpoint("persist.remove") {
            return Err(injected("persist.remove"));
        }
        fs::remove_file(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if fault::failpoint("persist.journal_create") {
            return Err(injected("persist.journal_create"));
        }
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if fault::failpoint("persist.fsync") {
            return Err(injected("persist.fsync"));
        }
        File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if fault::failpoint("persist.fsync") {
            return Err(injected("persist.fsync"));
        }
        // fsync on a read-only directory handle flushes the entry
        // metadata on POSIX — exactly what makes a rename durable.
        File::open(path)?.sync_all()
    }
}

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

/// One mutating operation recorded by [`ChaosVfs`]. Paths are exactly
/// what the store passed; `bytes` are the bytes that actually reached the
/// filesystem (truncated when a short write was injected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsOp {
    /// A whole-file write (the snapshot temp file).
    Write {
        /// Target path.
        path: PathBuf,
        /// Bytes written.
        bytes: Vec<u8>,
    },
    /// An atomic rename.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// A file removal.
    Remove {
        /// Removed path.
        path: PathBuf,
    },
    /// A create-truncate open for appending.
    Create {
        /// Created path.
        path: PathBuf,
    },
    /// An append to an open file.
    Append {
        /// The file appended to.
        path: PathBuf,
        /// Bytes appended.
        bytes: Vec<u8>,
    },
    /// An fsync of a file's bytes.
    SyncFile {
        /// Synced path.
        path: PathBuf,
    },
    /// An fsync of a directory's entries.
    SyncDir {
        /// Synced directory.
        path: PathBuf,
    },
}

/// What the chaos plan says about one operation index.
#[derive(Debug, Clone, Copy)]
enum Plan {
    Pass,
    Fail,
    Short(usize),
}

#[derive(Debug, Default)]
struct ChaosState {
    trace: Mutex<Vec<VfsOp>>,
    fail_op: Mutex<Option<usize>>,
    short_write: Mutex<Option<(usize, usize)>>,
    next_op: AtomicUsize,
}

impl ChaosState {
    fn next(&self) -> usize {
        self.next_op.fetch_add(1, Ordering::Relaxed)
    }

    fn plan(&self, op: usize) -> Plan {
        if *self.fail_op.lock() == Some(op) {
            return Plan::Fail;
        }
        if let Some((at, keep)) = *self.short_write.lock() {
            if at == op {
                return Plan::Short(keep);
            }
        }
        Plan::Pass
    }

    fn record(&self, entry: VfsOp) {
        self.trace.lock().push(entry);
    }
}

/// The chaos error injected when a planned operation fails.
fn chaos_error(op: usize) -> io::Error {
    io::Error::other(format!("chaos: injected failure at vfs op {op}"))
}

/// A [`Vfs`] that performs every operation through [`RealVfs`] while
/// recording the exact write trace, and can be planned to fail or
/// short-write any single operation by index — the engine behind the
/// crash-consistency torture harness and the registry fault proptests.
///
/// Clones share state: hand one clone to
/// [`TenantStore::open_with`] and keep the other to inspect the trace.
#[derive(Debug, Default, Clone)]
pub struct ChaosVfs {
    state: Arc<ChaosState>,
}

impl ChaosVfs {
    /// A fresh chaos filesystem: empty trace, no planned failures.
    pub fn new() -> ChaosVfs {
        ChaosVfs::default()
    }

    /// The operations performed so far (bytes included), in order.
    pub fn trace(&self) -> Vec<VfsOp> {
        self.state.trace.lock().clone()
    }

    /// How many operations have been *attempted* (failed ones count —
    /// plan indices are in this sequence).
    pub fn ops_attempted(&self) -> usize {
        self.state.next_op.load(Ordering::Relaxed)
    }

    /// Plans operation `op` (0-based attempt index) to fail without
    /// touching the filesystem. `None` clears the plan.
    pub fn set_fail_op(&self, op: Option<usize>) {
        *self.state.fail_op.lock() = op;
    }

    /// Plans operation `op` to write only the first `keep` bytes and then
    /// fail — a torn write. Only byte-carrying operations (whole-file
    /// writes and appends) can tear; on any other operation the plan
    /// degrades to a plain failure. `None` clears the plan.
    pub fn set_short_write(&self, plan: Option<(usize, usize)>) {
        *self.state.short_write.lock() = plan;
    }

    /// Clears the trace, the attempt counter and every planned failure.
    pub fn reset(&self) {
        self.state.trace.lock().clear();
        *self.state.fail_op.lock() = None;
        *self.state.short_write.lock() = None;
        self.state.next_op.store(0, Ordering::Relaxed);
    }
}

impl Vfs for ChaosVfs {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Fail => Err(chaos_error(op)),
            Plan::Short(keep) => {
                let keep = keep.min(bytes.len());
                let kept = bytes.get(..keep).unwrap_or(bytes);
                RealVfs.write_file(path, kept)?;
                self.state.record(VfsOp::Write {
                    path: path.to_path_buf(),
                    bytes: kept.to_vec(),
                });
                Err(chaos_error(op))
            }
            Plan::Pass => {
                RealVfs.write_file(path, bytes)?;
                self.state.record(VfsOp::Write {
                    path: path.to_path_buf(),
                    bytes: bytes.to_vec(),
                });
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Pass => {
                RealVfs.rename(from, to)?;
                self.state.record(VfsOp::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                });
                Ok(())
            }
            _ => Err(chaos_error(op)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Pass => {
                RealVfs.remove_file(path)?;
                self.state.record(VfsOp::Remove {
                    path: path.to_path_buf(),
                });
                Ok(())
            }
            _ => Err(chaos_error(op)),
        }
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Pass => {
                let inner = RealVfs.create(path)?;
                self.state.record(VfsOp::Create {
                    path: path.to_path_buf(),
                });
                Ok(Box::new(ChaosFile {
                    inner,
                    path: path.to_path_buf(),
                    state: Arc::clone(&self.state),
                }))
            }
            _ => Err(chaos_error(op)),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Pass => {
                RealVfs.sync_file(path)?;
                self.state.record(VfsOp::SyncFile {
                    path: path.to_path_buf(),
                });
                Ok(())
            }
            _ => Err(chaos_error(op)),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Pass => {
                RealVfs.sync_dir(path)?;
                self.state.record(VfsOp::SyncDir {
                    path: path.to_path_buf(),
                });
                Ok(())
            }
            _ => Err(chaos_error(op)),
        }
    }
}

#[derive(Debug)]
struct ChaosFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    state: Arc<ChaosState>,
}

impl VfsFile for ChaosFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Fail => Err(chaos_error(op)),
            Plan::Short(keep) => {
                let keep = keep.min(bytes.len());
                let kept = bytes.get(..keep).unwrap_or(bytes);
                self.inner.append(kept)?;
                self.state.record(VfsOp::Append {
                    path: self.path.clone(),
                    bytes: kept.to_vec(),
                });
                Err(chaos_error(op))
            }
            Plan::Pass => {
                self.inner.append(bytes)?;
                self.state.record(VfsOp::Append {
                    path: self.path.clone(),
                    bytes: bytes.to_vec(),
                });
                Ok(())
            }
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let op = self.state.next();
        match self.state.plan(op) {
            Plan::Pass => {
                self.inner.sync_all()?;
                self.state.record(VfsOp::SyncFile {
                    path: self.path.clone(),
                });
                Ok(())
            }
            _ => Err(chaos_error(op)),
        }
    }
}

/// Monotonic persistence counters (and fsync-path latency histograms),
/// surfaced verbatim on `/metrics`.
#[derive(Debug, Default)]
pub struct PersistMetrics {
    snapshot_writes: AtomicU64,
    snapshot_loads: AtomicU64,
    spills: AtomicU64,
    journal_replays: AtomicU64,
    journal_truncations: AtomicU64,
    snapshot_write_latency: LatencyHistogram,
    journal_append_latency: LatencyHistogram,
}

impl PersistMetrics {
    /// Snapshot files written (one per durable ingestion).
    pub fn snapshot_writes(&self) -> u64 {
        self.snapshot_writes.load(Ordering::Relaxed)
    }

    /// Snapshot files read back into a live session.
    pub fn snapshot_loads(&self) -> u64 {
        self.snapshot_loads.load(Ordering::Relaxed)
    }

    /// Evictions that spilled (kept the snapshot, dropped the memory)
    /// instead of tombstoning.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Orphaned journals replayed at boot.
    pub fn journal_replays(&self) -> u64 {
        self.journal_replays.load(Ordering::Relaxed)
    }

    /// Replays that detected (and discarded) a torn trailing record.
    pub fn journal_truncations(&self) -> u64 {
        self.journal_truncations.load(Ordering::Relaxed)
    }

    /// Latency of snapshot writes (temp-file write plus atomic rename),
    /// recorded once per durable save.
    pub fn snapshot_write_latency(&self) -> &LatencyHistogram {
        &self.snapshot_write_latency
    }

    /// Latency of journal record appends, recorded once per ingested
    /// chunk by the serving layer.
    pub fn journal_append_latency(&self) -> &LatencyHistogram {
        &self.journal_append_latency
    }

    /// Records one journal append taking `micros`. Public because the
    /// append goes through a standalone [`JournalWriter`], so the caller
    /// owns the timing span.
    pub fn record_journal_append_us(&self, micros: u64) {
        self.journal_append_latency.record_us(micros);
    }

    pub(crate) fn record_spills(&self, n: u64) {
        self.spills.fetch_add(n, Ordering::Relaxed);
    }

    fn record_snapshot_write(&self) {
        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
    }

    fn record_snapshot_load(&self) {
        self.snapshot_loads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_journal_replay(&self, truncated: bool) {
        self.journal_replays.fetch_add(1, Ordering::Relaxed);
        if truncated {
            self.journal_truncations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A snapshot reconstructed from disk, ready to install in a slot.
#[derive(Debug)]
pub struct LoadedTenant {
    /// The rebuilt session (fresh memo cache; count index pre-seeded when
    /// the snapshot's `INDEX` section was readable).
    pub study: Study,
    /// The source recorded when the tenant was first ingested.
    pub source: DatasetSource,
    /// Whether the count index came from the snapshot (`false` means a
    /// lazy rebuild — the format's compatibility promise, not an error).
    pub index_loaded: bool,
}

/// What a directory scan found: tenants with snapshots, and orphaned
/// journals left by a crash mid-ingestion.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Names with a `<name>.osdv` snapshot, sorted.
    pub snapshots: Vec<String>,
    /// Names with a `<name>.journal` file, sorted.
    pub journals: Vec<String>,
}

/// A replayed journal: the trustworthy prefix of the feed bytes.
#[derive(Debug)]
pub struct JournalReplay {
    /// The concatenated payloads of every complete, CRC-valid record.
    pub feed: Vec<u8>,
    /// Complete records recovered.
    pub records: usize,
    /// Whether the file ended in a torn (incomplete or CRC-failing)
    /// record that was discarded.
    pub truncated_tail: bool,
    /// Bytes of journal examined during the replay — a work counter for
    /// the complexity-guard tests (replay must stay linear in file size).
    pub work: u64,
}

/// The on-disk side of the registry: snapshot save/load, journal
/// write/replay and the persistence counters, all scoped to one data
/// directory.
#[derive(Debug)]
pub struct TenantStore {
    dir: PathBuf,
    read_only: bool,
    durability: Durability,
    vfs: Arc<dyn Vfs>,
    metrics: PersistMetrics,
}

impl TenantStore {
    /// Opens (creating if needed) a writable store at `dir` with the
    /// default rename-atomicity durability and the real filesystem.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<TenantStore, PersistError> {
        TenantStore::open_with(dir, Durability::default(), Arc::new(RealVfs))
    }

    /// Opens a writable store with an explicit [`Durability`] policy
    /// (the `--durability full|rename` flag).
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn open_durable(
        dir: impl Into<PathBuf>,
        durability: Durability,
    ) -> Result<TenantStore, PersistError> {
        TenantStore::open_with(dir, durability, Arc::new(RealVfs))
    }

    /// Opens a writable store with an explicit durability policy *and*
    /// an injected [`Vfs`] — the constructor fault-injection tests use
    /// to interpose a [`ChaosVfs`].
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        durability: Durability,
        vfs: Arc<dyn Vfs>,
    ) -> Result<TenantStore, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|error| PersistError::Io {
            what: "creating the data directory",
            error,
        })?;
        Ok(TenantStore {
            dir,
            read_only: false,
            durability,
            vfs,
            metrics: PersistMetrics::default(),
        })
    }

    /// Opens a read-only store at `dir`: existing tenants load, but no
    /// file is ever created, modified or deleted (the `--no-persist`
    /// mode). The directory need not exist — scans just come back empty.
    pub fn open_read_only(dir: impl Into<PathBuf>) -> TenantStore {
        TenantStore {
            dir: dir.into(),
            read_only: true,
            durability: Durability::default(),
            vfs: Arc::new(RealVfs),
            metrics: PersistMetrics::default(),
        }
    }

    /// The durability policy writes run under.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether writes are refused.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// The persistence counters.
    pub fn metrics(&self) -> &PersistMetrics {
        &self.metrics
    }

    /// The snapshot path for a tenant name.
    pub fn snapshot_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{SNAPSHOT_EXT}"))
    }

    /// The journal path for a tenant name.
    pub fn journal_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{JOURNAL_EXT}"))
    }

    /// Writes `study` as `<name>.osdv`, annotated with `source`, via a
    /// temp file and an atomic rename — the file is either absent or
    /// complete, never torn.
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] or I/O failure.
    pub fn save(
        &self,
        name: &str,
        study: &Study,
        source: &DatasetSource,
    ) -> Result<(), PersistError> {
        if self.read_only {
            return Err(PersistError::ReadOnly);
        }
        let _span = obs::span(SpanKind::SnapshotWrite, name);
        let dataset: &osdiv_core::StudyDataset = study;
        let bytes = Snapshot::to_bytes(dataset, &source_meta(source));
        let path = self.snapshot_path(name);
        let tmp = self.dir.join(format!("{name}.{SNAPSHOT_EXT}.tmp"));
        let io = |what| move |error| PersistError::Io { what, error };
        let write_started = std::time::Instant::now();
        self.vfs
            .write_file(&tmp, &bytes)
            .map_err(io("writing the snapshot temp file"))?;
        if self.durability == Durability::Full {
            self.vfs
                .sync_file(&tmp)
                .map_err(io("syncing the snapshot temp file"))?;
        }
        self.vfs
            .rename(&tmp, &path)
            .map_err(io("installing the snapshot"))?;
        if self.durability == Durability::Full {
            self.vfs
                .sync_dir(&self.dir)
                .map_err(io("syncing the data directory"))?;
        }
        self.metrics
            .snapshot_write_latency
            .record(write_started.elapsed());
        self.metrics.record_snapshot_write();
        Ok(())
    }

    /// Reads `<name>.osdv` back into a session.
    ///
    /// # Errors
    ///
    /// I/O failure, a corrupt/truncated/wrong-version snapshot
    /// ([`PersistError::Snapshot`]) or unusable annotations
    /// ([`PersistError::BadMeta`]).
    pub fn load(&self, name: &str) -> Result<LoadedTenant, PersistError> {
        let _span = obs::span(SpanKind::SnapshotLoad, name);
        let bytes = fs::read(self.snapshot_path(name)).map_err(|error| PersistError::Io {
            what: "reading the snapshot",
            error,
        })?;
        let snapshot = Snapshot::from_bytes(&bytes)?;
        let source = source_from_meta(&snapshot.meta).ok_or_else(|| PersistError::BadMeta {
            name: name.to_string(),
        })?;
        self.metrics.record_snapshot_load();
        Ok(LoadedTenant {
            study: Study::new(snapshot.dataset),
            source,
            index_loaded: snapshot.index_loaded,
        })
    }

    /// Reads only the source annotations of `<name>.osdv` — the cheap
    /// boot-scan path that never decodes the store payload.
    ///
    /// # Errors
    ///
    /// Same as [`load`](TenantStore::load), minus payload corruption
    /// (which surfaces on the eventual lazy load instead).
    pub fn read_source(&self, name: &str) -> Result<DatasetSource, PersistError> {
        let bytes = fs::read(self.snapshot_path(name)).map_err(|error| PersistError::Io {
            what: "reading the snapshot",
            error,
        })?;
        let meta = Snapshot::read_meta(&bytes)?;
        source_from_meta(&meta).ok_or_else(|| PersistError::BadMeta {
            name: name.to_string(),
        })
    }

    /// Lists the tenants (and orphaned journals) on disk. Files whose
    /// stem is not a valid tenant name are ignored. A missing directory
    /// answers an empty report.
    ///
    /// # Errors
    ///
    /// I/O failure while reading the directory.
    pub fn scan(&self) -> Result<ScanReport, PersistError> {
        let mut report = ScanReport::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(report),
            Err(error) => {
                return Err(PersistError::Io {
                    what: "scanning the data directory",
                    error,
                })
            }
        };
        for entry in entries {
            let entry = entry.map_err(|error| PersistError::Io {
                what: "scanning the data directory",
                error,
            })?;
            let path = entry.path();
            let (Some(stem), Some(ext)) = (
                path.file_stem().and_then(|s| s.to_str()),
                path.extension().and_then(|e| e.to_str()),
            ) else {
                continue;
            };
            if validate_name(stem).is_err() {
                continue;
            }
            match ext {
                _ if ext == SNAPSHOT_EXT => report.snapshots.push(stem.to_string()),
                _ if ext == JOURNAL_EXT => report.journals.push(stem.to_string()),
                _ => {}
            }
        }
        report.snapshots.sort();
        report.journals.sort();
        Ok(report)
    }

    /// Deletes `<name>.osdv` and `<name>.journal` (missing files are
    /// fine).
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] or I/O failure.
    pub fn remove(&self, name: &str) -> Result<(), PersistError> {
        if self.read_only {
            return Err(PersistError::ReadOnly);
        }
        for path in [self.snapshot_path(name), self.journal_path(name)] {
            match self.vfs.remove_file(&path) {
                Ok(()) => {}
                Err(error) if error.kind() == io::ErrorKind::NotFound => {}
                Err(error) => {
                    return Err(PersistError::Io {
                        what: "deleting tenant files",
                        error,
                    })
                }
            }
        }
        Ok(())
    }

    /// Opens a fresh journal for `name`, truncating any leftover one (a
    /// new `PUT` over a crashed one supersedes the orphan).
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] or I/O failure.
    pub fn journal(&self, name: &str) -> Result<JournalWriter, PersistError> {
        if self.read_only {
            return Err(PersistError::ReadOnly);
        }
        let path = self.journal_path(name);
        let io = |what| move |error| PersistError::Io { what, error };
        let mut file = self.vfs.create(&path).map_err(io("creating the journal"))?;
        let mut header = Vec::with_capacity(JOURNAL_HEADER_BYTES);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        file.append(&header)
            .map_err(io("writing the journal header"))?;
        Ok(JournalWriter {
            file,
            path,
            vfs: Arc::clone(&self.vfs),
            fsync: self.durability == Durability::Full,
        })
    }

    /// Replays `<name>.journal`, recovering every complete CRC-valid
    /// record and discarding the torn tail (if any). Records the replay
    /// in the metrics. A missing/garbled header yields zero records with
    /// `truncated_tail` set — the journal never held trustworthy data.
    ///
    /// # Errors
    ///
    /// I/O failure reading the file.
    pub fn replay_journal(&self, name: &str) -> Result<JournalReplay, PersistError> {
        let _span = obs::span(SpanKind::JournalReplay, name);
        let bytes = fs::read(self.journal_path(name)).map_err(|error| PersistError::Io {
            what: "reading the journal",
            error,
        })?;
        let replay = parse_journal(&bytes);
        self.metrics.record_journal_replay(replay.truncated_tail);
        Ok(replay)
    }

    /// Deletes `<name>.journal` (missing is fine). No-op when read-only:
    /// a read-only boot must leave the orphan for a writable one.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn discard_journal(&self, name: &str) -> Result<(), PersistError> {
        if self.read_only {
            return Ok(());
        }
        match self.vfs.remove_file(&self.journal_path(name)) {
            Ok(()) => Ok(()),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(error) => Err(PersistError::Io {
                what: "deleting the journal",
                error,
            }),
        }
    }
}

/// An open ingestion journal. Each [`append`](JournalWriter::append) goes
/// straight to the kernel (no userspace buffering), so a `SIGKILL`
/// between appends loses at most the record in flight — exactly the torn
/// tail the replay path truncates. Under [`Durability::Full`] every
/// append is also fsynced before it is acknowledged.
#[derive(Debug)]
pub struct JournalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    fsync: bool,
}

impl JournalWriter {
    /// Appends one feed chunk as a framed, checksummed record.
    ///
    /// # Errors
    ///
    /// I/O failure (including an injected `persist.journal_append`
    /// fault).
    pub fn append(&mut self, chunk: &[u8]) -> io::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        if fault::failpoint("persist.journal_append") {
            return Err(injected("persist.journal_append"));
        }
        let mut frame = Vec::with_capacity(JOURNAL_RECORD_HEADER_BYTES + chunk.len());
        frame.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(chunk).to_le_bytes());
        frame.extend_from_slice(chunk);
        self.file.append(&frame)?;
        if self.fsync {
            self.file.sync_all()?;
        }
        Ok(())
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Deletes the journal — either the ingestion's snapshot is durable
    /// (commit) or the ingestion failed and there is nothing worth
    /// replaying (discard). Consumes the writer.
    ///
    /// # Errors
    ///
    /// I/O failure deleting the file.
    pub fn finish(self) -> io::Result<()> {
        let JournalWriter {
            file, path, vfs, ..
        } = self;
        drop(file);
        match vfs.remove_file(&path) {
            Ok(()) => Ok(()),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(error) => Err(error),
        }
    }
}

/// Parses journal bytes into the trustworthy prefix (see the module docs
/// for the framing).
fn parse_journal(bytes: &[u8]) -> JournalReplay {
    let mut replay = JournalReplay {
        feed: Vec::new(),
        records: 0,
        truncated_tail: false,
        work: 0,
    };
    let le_u32 = |pos: usize| -> Option<u32> {
        bytes
            .get(pos..pos.checked_add(4)?)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes)
    };
    let header_ok = bytes.get(..4) == Some(JOURNAL_MAGIC.as_slice())
        && bytes
            .get(4..JOURNAL_HEADER_BYTES)
            .and_then(|s| <[u8; 2]>::try_from(s).ok())
            .map(u16::from_le_bytes)
            == Some(JOURNAL_VERSION);
    if !header_ok {
        replay.truncated_tail = true;
        return replay;
    }
    replay.work = JOURNAL_HEADER_BYTES as u64;
    let mut pos = JOURNAL_HEADER_BYTES;
    while pos < bytes.len() {
        let header = le_u32(pos).zip(pos.checked_add(4).and_then(&le_u32));
        let Some((len, expected)) = header else {
            replay.truncated_tail = true;
            break;
        };
        let payload = pos
            .checked_add(JOURNAL_RECORD_HEADER_BYTES)
            .and_then(|start| start.checked_add(len as usize).map(|end| (start, end)))
            .and_then(|(start, end)| bytes.get(start..end).map(|payload| (payload, end)));
        let Some((payload, end)) = payload else {
            replay.truncated_tail = true;
            break;
        };
        replay.work += (JOURNAL_RECORD_HEADER_BYTES + payload.len()) as u64;
        if crc32(payload) != expected {
            // A failed checksum ends the trustworthy prefix: everything
            // after it may be garbage from the same torn write.
            replay.truncated_tail = true;
            break;
        }
        replay.feed.extend_from_slice(payload);
        replay.records += 1;
        pos = end;
    }
    replay
}

/// The META annotations a tenant snapshot carries for `source`.
pub fn source_meta(source: &DatasetSource) -> Vec<(String, String)> {
    match source {
        DatasetSource::Synthetic { seed } => vec![
            (META_SOURCE.into(), "synthetic".into()),
            (META_SEED.into(), seed.to_string()),
        ],
        DatasetSource::Ingested {
            entries,
            skipped,
            feed_bytes,
        } => vec![
            (META_SOURCE.into(), "ingested".into()),
            (META_ENTRIES.into(), entries.to_string()),
            (META_SKIPPED.into(), skipped.to_string()),
            (META_FEED_BYTES.into(), feed_bytes.to_string()),
        ],
    }
}

/// Rebuilds a [`DatasetSource`] from snapshot annotations.
pub fn source_from_meta(meta: &[(String, String)]) -> Option<DatasetSource> {
    let get = |key: &str| meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
    match get(META_SOURCE)? {
        "synthetic" => Some(DatasetSource::Synthetic {
            seed: get(META_SEED)?.parse().ok()?,
        }),
        "ingested" => Some(DatasetSource::Ingested {
            entries: get(META_ENTRIES)?.parse().ok()?,
            skipped: get(META_SKIPPED)?.parse().ok()?,
            feed_bytes: get(META_FEED_BYTES)?.parse().ok()?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("osdiv-persist-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_study() -> Study {
        use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
        let entries: Vec<_> = (0..4)
            .map(|i| {
                VulnerabilityEntry::builder(CveId::new(2007, 10 + i))
                    .summary("Integer overflow in the kernel scheduler")
                    .affects_os(OsDistribution::Debian)
                    .affects_os(OsDistribution::OpenBsd)
                    .build()
                    .unwrap()
            })
            .collect();
        Study::from_entries(&entries)
    }

    #[test]
    fn save_load_round_trips_study_and_source() {
        let dir = temp_dir("roundtrip");
        let store = TenantStore::open(&dir).unwrap();
        let study = sample_study();
        let source = DatasetSource::Ingested {
            entries: 4,
            skipped: 1,
            feed_bytes: 999,
        };
        store.save("feed", &study, &source).unwrap();
        let loaded = store.load("feed").unwrap();
        assert_eq!(loaded.source, source);
        assert!(loaded.index_loaded);
        assert_eq!(loaded.study.valid_count(), study.valid_count());
        assert_eq!(store.read_source("feed").unwrap(), source);
        assert_eq!(store.metrics().snapshot_writes(), 1);
        assert_eq!(store.metrics().snapshot_loads(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_lists_snapshots_and_journals_and_skips_foreign_files() {
        let dir = temp_dir("scan");
        let store = TenantStore::open(&dir).unwrap();
        let study = sample_study();
        let source = DatasetSource::Synthetic { seed: 3 };
        store.save("b", &study, &source).unwrap();
        store.save("a", &study, &source).unwrap();
        store.journal("crashed").unwrap();
        fs::write(dir.join("README.txt"), b"not a tenant").unwrap();
        fs::write(dir.join("UPPER.osdv"), b"bad name").unwrap();
        let report = store.scan().unwrap();
        assert_eq!(report.snapshots, ["a", "b"]);
        assert_eq!(report.journals, ["crashed"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_replays_complete_records_and_truncates_torn_tails() {
        let dir = temp_dir("journal");
        let store = TenantStore::open(&dir).unwrap();
        let mut writer = store.journal("t").unwrap();
        writer.append(b"<entry>one</entry>").unwrap();
        writer.append(b"<entry>two</entry>").unwrap();
        drop(writer); // simulate a crash: file left behind

        // Clean journal: both records, no truncation.
        let replay = store.replay_journal("t").unwrap();
        assert_eq!(replay.records, 2);
        assert!(!replay.truncated_tail);
        assert_eq!(replay.feed, b"<entry>one</entry><entry>two</entry>");

        // Torn tail: a record header promising more bytes than exist.
        let path = store.journal_path("t");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"partial");
        fs::write(&path, &bytes).unwrap();
        let replay = store.replay_journal("t").unwrap();
        assert_eq!(replay.records, 2, "the complete prefix survives");
        assert!(replay.truncated_tail);

        // Corrupted payload: CRC mismatch ends the trustworthy prefix.
        let mut bytes = fs::read(&path).unwrap();
        let flip = JOURNAL_HEADER_BYTES + JOURNAL_RECORD_HEADER_BYTES + 3;
        bytes[flip] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let replay = store.replay_journal("t").unwrap();
        assert_eq!(replay.records, 0, "corruption in record 1 distrusts all");
        assert!(replay.truncated_tail);

        // Garbage header: zero records, flagged.
        fs::write(&path, b"garbage").unwrap();
        let replay = store.replay_journal("t").unwrap();
        assert_eq!(replay.records, 0);
        assert!(replay.truncated_tail);

        store.discard_journal("t").unwrap();
        assert!(!path.exists());
        assert_eq!(store.metrics().journal_replays(), 4);
        assert_eq!(store.metrics().journal_truncations(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_stores_load_but_never_write() {
        let dir = temp_dir("readonly");
        {
            let writable = TenantStore::open(&dir).unwrap();
            writable
                .save(
                    "keep",
                    &sample_study(),
                    &DatasetSource::Synthetic { seed: 1 },
                )
                .unwrap();
        }
        let store = TenantStore::open_read_only(&dir);
        assert!(store.load("keep").is_ok());
        assert!(matches!(
            store.save(
                "nope",
                &sample_study(),
                &DatasetSource::Synthetic { seed: 2 }
            ),
            Err(PersistError::ReadOnly)
        ));
        assert!(matches!(store.journal("nope"), Err(PersistError::ReadOnly)));
        assert!(matches!(store.remove("keep"), Err(PersistError::ReadOnly)));
        assert!(store.snapshot_path("keep").exists(), "nothing was deleted");
        // A read-only store over a missing directory scans empty.
        let ghost = TenantStore::open_read_only(dir.join("missing"));
        assert!(ghost.scan().unwrap().snapshots.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_both_files() {
        let dir = temp_dir("remove");
        let store = TenantStore::open(&dir).unwrap();
        store
            .save("t", &sample_study(), &DatasetSource::Synthetic { seed: 1 })
            .unwrap();
        store.journal("t").unwrap();
        store.remove("t").unwrap();
        assert!(!store.snapshot_path("t").exists());
        assert!(!store.journal_path("t").exists());
        store.remove("t").unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }
}
