//! `osdiv-registry` — multi-dataset tenancy for the serving layer: a
//! concurrent, bounded registry of named [`Study`](osdiv_core::Study)
//! sessions plus push-based streaming ingestion of NVD XML feeds.
//!
//! The repo's batch pipeline and PR 3's server both assumed exactly one
//! baked-in dataset. This crate removes that assumption:
//!
//! * [`registry`] — [`StudyRegistry`], a `parking_lot::RwLock`-guarded map
//!   from dataset names to memoized `Arc<Study>` sessions. Synthetic
//!   datasets register as a `seed=N` spec, build lazily and rebuild after
//!   eviction; ingested datasets are resident-only and answer
//!   [`RegistryError::Evicted`] once dropped. Capacity is bounded by name
//!   count and by estimated resident bytes with LRU eviction of unpinned
//!   datasets; every failure is a typed [`RegistryError`].
//! * [`ingest`] — [`FeedIngester`], which accepts feed bytes chunk by
//!   chunk (never buffering the whole body), carves out complete
//!   `<entry>` elements, parses them through
//!   [`nvd_feed::FeedReader::read_entry_str`], loads them into a
//!   [`vulnstore::VulnStore`] and finishes into a ready-to-serve
//!   [`StudyDataset`](osdiv_core::StudyDataset) — all under a configurable
//!   [`IngestBudget`].
//! * [`persist`] — [`TenantStore`], the durable side: `OSDV` snapshots
//!   written the moment an ingested dataset registers, an append-only
//!   `OSDJ` ingestion journal whose torn tails are truncated (never
//!   trusted) on replay, and the counters `/metrics` reports. With a
//!   store attached, eviction *spills* instead of tombstoning and
//!   [`StudyRegistry::recover`] warm-restarts the whole tenant set from
//!   disk.
//!
//! The server (`osdiv-serve`), the CLI (`osdiv ingest`, `osdiv serve`) and
//! the tests all share these types, closing the paper's Section III
//! loop — from NVD XML data feed to queryable diversity analysis — at
//! request time instead of build time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod persist;
pub mod registry;

pub use ingest::{FeedIngester, IngestBudget, IngestError, IngestOutcome, IngestStageMicros};
pub use persist::{
    ChaosVfs, Durability, JournalReplay, JournalWriter, LoadedTenant, PersistError, PersistMetrics,
    RealVfs, ScanReport, TenantStore, Vfs, VfsFile, VfsOp,
};
pub use registry::{
    build_synthetic, validate_name, DatasetInfo, DatasetSource, RecoveryReport, RegistryError,
    RegistryOptions, StudyRegistry, DEFAULT_DATASET,
};
