//! Push-based, bounded streaming ingestion of NVD XML feeds.
//!
//! [`FeedIngester`] accepts body bytes **as they arrive** (from a chunked
//! HTTP request, a file read loop, …) and never buffers the whole feed: it
//! carves complete `<entry>…</entry>` elements out of the byte stream,
//! hands each one to [`nvd_feed::FeedReader::read_entry_str`] (which
//! normalizes product names exactly like the batch reader), inserts the
//! parsed entry into a [`VulnStore`] (merging duplicate CVEs), and drops
//! the consumed bytes. The transient buffer is bounded by the size of one
//! entry ([`IngestBudget::max_entry_bytes`]); the whole ingestion is
//! bounded by [`IngestBudget::max_bytes`] and [`IngestBudget::max_entries`].
//!
//! [`finish`](FeedIngester::finish) classifies still-unlabelled rows with
//! the default rule engine (the automated stand-in for the paper's manual
//! Section III-B step, mirroring the `feed_pipeline` example) and returns
//! the [`StudyDataset`] ready to wrap in a [`Study`].
//!
//! # Parallel entry parsing
//!
//! The boundary scanner is inherently sequential, but XML parsing — the
//! dominant cost of an ingestion — is not: on a multi-core host the
//! carved `<entry>` strings are fanned out to a small worker pool over a
//! **bounded** [`mpsc`] channel (the carver blocks once `PIPELINE_DEPTH`
//! fragments are in flight, so transient memory stays at "a few entries"
//! even when a caller pushes the whole feed in one chunk) and parsed
//! concurrently, while the scanner keeps carving the next chunk. Results
//! carry their carve sequence number and are re-ordered before
//! insertion — harvested between fragments, not at the end of a push —
//! so the loaded store is **identical** to a sequential ingestion
//! (insertion order determines row ids and duplicate-merge semantics). One consequence of pipelining: a
//! malformed-XML error discovered by a worker may surface on a *later*
//! [`push`](FeedIngester::push) than the chunk that carried the broken
//! entry, or at [`finish`](FeedIngester::finish) — always the error of
//! the **first** broken entry in feed order, deterministically. Budget
//! violations are still detected synchronously at carve time. On a
//! single-core host (or with [`FeedIngester::with_workers`] `== 0`)
//! parsing stays inline and errors surface exactly as before.
//!
//! Known limitation: entry boundaries are recognized textually (with
//! quote-aware tag scanning), so a literal `</entry>` *inside a CDATA
//! section* would split an entry early — the fragment then fails to parse
//! and is counted as skipped, never mis-attributed. NVD feeds escape
//! character data and do not hit this.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use classify::Classifier;
use nvd_feed::{FeedError, FeedReader};
use nvd_model::VulnerabilityEntry;
use osdiv_core::fault;
use osdiv_core::obs::{self, SpanKind};
use osdiv_core::{Study, StudyDataset};
use vulnstore::VulnStore;

/// Bounds on one streaming ingestion.
#[derive(Debug, Clone)]
pub struct IngestBudget {
    /// Total feed bytes accepted before the ingestion is aborted.
    pub max_bytes: usize,
    /// Entry elements processed (parsed *or* skipped) before aborting.
    pub max_entries: usize,
    /// Size of a single `<entry>` element — the transient buffer bound.
    pub max_entry_bytes: usize,
}

impl Default for IngestBudget {
    fn default() -> Self {
        IngestBudget {
            max_bytes: 64 * 1024 * 1024,
            max_entries: 100_000,
            max_entry_bytes: 1024 * 1024,
        }
    }
}

/// Why an ingestion was aborted; [`http_status`](IngestError::http_status)
/// maps each cause to the status the serving layer answers.
#[derive(Debug)]
pub enum IngestError {
    /// Malformed XML or (strict-mode) invalid entry fields.
    Feed(FeedError),
    /// The feed exceeded [`IngestBudget::max_bytes`].
    BodyTooLarge {
        /// The configured byte budget.
        limit: usize,
    },
    /// The feed exceeded [`IngestBudget::max_entries`].
    TooManyEntries {
        /// The configured entry budget.
        limit: usize,
    },
    /// A single entry exceeded [`IngestBudget::max_entry_bytes`].
    EntryTooLarge {
        /// The configured per-entry bound.
        limit: usize,
    },
    /// The feed ended in the middle of an entry element.
    Truncated,
    /// The feed contained no entry element at all.
    Empty,
}

impl IngestError {
    /// The HTTP status an ingestion endpoint answers for this failure:
    /// budget violations are 413 (Payload Too Large), everything else 400.
    pub fn http_status(&self) -> u16 {
        match self {
            IngestError::BodyTooLarge { .. }
            | IngestError::TooManyEntries { .. }
            | IngestError::EntryTooLarge { .. } => 413,
            IngestError::Feed(_) | IngestError::Truncated | IngestError::Empty => 400,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Feed(error) => write!(f, "feed error: {error}"),
            IngestError::BodyTooLarge { limit } => {
                write!(f, "feed exceeds the {limit} byte ingestion budget")
            }
            IngestError::TooManyEntries { limit } => {
                write!(f, "feed exceeds the {limit} entry ingestion budget")
            }
            IngestError::EntryTooLarge { limit } => {
                write!(f, "a single entry exceeds {limit} bytes")
            }
            IngestError::Truncated => f.write_str("feed ended inside an <entry> element"),
            IngestError::Empty => f.write_str("feed contains no <entry> element"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Feed(error) => Some(error),
            _ => None,
        }
    }
}

impl From<FeedError> for IngestError {
    fn from(error: FeedError) -> Self {
        IngestError::Feed(error)
    }
}

/// Where one ingestion's wall-clock time went, in microseconds —
/// recorded per stage so a slow `PUT` can be attributed to boundary
/// carving, XML parsing or store insertion (exposed as the
/// `osdiv_stage_duration_seconds{stage="ingest_*"}` histograms).
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStageMicros {
    /// Carving `<entry>` boundaries out of the byte stream (everything in
    /// `push`/`finish` not attributed to the other two stages).
    pub carve_us: u64,
    /// Parsing carved fragments: inline parse time, or — pipelined — the
    /// time the coordinator spent blocked on the worker pool.
    pub parse_us: u64,
    /// Inserting parsed entries into the store, in feed order.
    pub insert_us: u64,
}

/// What a completed ingestion produced.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The loaded dataset (duplicates merged, unlabelled rows classified).
    pub dataset: StudyDataset,
    /// Distinct vulnerabilities loaded (republished duplicate entries
    /// merge into one row; see [`IngestOutcome::parsed`] for the raw
    /// element count).
    pub entries: usize,
    /// Entry elements successfully parsed, duplicates included.
    pub parsed: usize,
    /// Entry elements skipped as malformed by the lenient reader.
    pub skipped: usize,
    /// Feed bytes consumed.
    pub feed_bytes: usize,
    /// Per-stage wall-clock attribution of the ingestion.
    pub stages: IngestStageMicros,
}

impl IngestOutcome {
    /// Wraps the dataset in a fresh [`Study`] session.
    pub fn into_study(self) -> Study {
        Study::new(self.dataset)
    }
}

/// Where the boundary scanner is inside the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanState {
    /// Looking for the next `<entry` open tag.
    Scanning,
    /// Buffering one entry element (the buffer starts at its `<entry`),
    /// with the scanner's resume point so a large entry arriving in many
    /// small chunks is examined once, not re-scanned from byte 0 per
    /// chunk (which would be quadratic in the number of reads).
    InEntry(EntryScan),
}

/// Incremental progress through one buffered entry element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct EntryScan {
    /// Position of the start tag's `>`, once seen.
    tag_end: Option<usize>,
    /// First unexamined byte of the current phase (start-tag walk, then
    /// close-tag search).
    resume: usize,
    /// Open quote inside the start tag, carried across chunk boundaries.
    quote: Option<u8>,
}

/// One parse result travelling back from the worker pool, tagged with its
/// carve sequence number so insertion can be re-ordered to feed order.
type ParseResult = (u64, Result<Option<VulnerabilityEntry>, FeedError>);

/// How many carved fragments may sit in the job queue before the
/// coordinator blocks. The bound is what keeps a pipelined ingestion's
/// transient memory at "a few entries" instead of "the whole feed": a fast
/// producer (one giant `push`, or 64 KiB file reads) would otherwise
/// outrun the workers and queue every fragment at once.
const PIPELINE_DEPTH: usize = 16;

/// The worker-pool half of a pipelined ingestion (see the module docs).
#[derive(Debug)]
struct ParsePipeline {
    /// Carved fragments travel to the pool over a **bounded** channel
    /// (backpressure, see [`PIPELINE_DEPTH`]); dropping the sender closes
    /// it.
    sender: Option<mpsc::SyncSender<(u64, String)>>,
    results: mpsc::Receiver<ParseResult>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ParsePipeline {
    fn start(workers: usize) -> ParsePipeline {
        let (sender, jobs) = mpsc::sync_channel::<(u64, String)>(PIPELINE_DEPTH);
        let (result_sender, results) = mpsc::channel::<ParseResult>();
        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..workers)
            .map(|_| {
                let jobs = Arc::clone(&jobs);
                let results = result_sender.clone();
                thread::spawn(move || {
                    // A worker-local lenient reader: skip bookkeeping is
                    // done by the coordinator from the `Ok(None)` results.
                    let mut reader = FeedReader::new();
                    loop {
                        let job = match jobs.lock() {
                            Ok(jobs) => jobs.recv(),
                            // A sibling worker panicked holding the lock;
                            // exit rather than propagate the poison.
                            Err(_) => return,
                        };
                        match job {
                            Err(_) => return, // channel closed: ingestion over
                            Ok((seq, fragment)) => {
                                let parsed = reader.read_entry_str(&fragment);
                                if results.send((seq, parsed)).is_err() {
                                    return; // coordinator gone
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        ParsePipeline {
            sender: Some(sender),
            results,
            workers,
        }
    }

    fn submit(&self, seq: u64, fragment: String) {
        // Blocks when PIPELINE_DEPTH jobs are in flight — the workers are
        // always draining, so this is backpressure, not a deadlock (the
        // result channel is never full). A send only fails after every
        // worker exited, which cannot happen while the job channel is
        // open.
        let Some(sender) = self.sender.as_ref() else {
            return; // submit is never called after close
        };
        let _ = sender.send((seq, fragment));
    }

    /// Closes the job channel and collects every outstanding result.
    fn drain(mut self) -> Vec<ParseResult> {
        self.sender = None;
        let mut collected = Vec::new();
        while let Ok(result) = self.results.recv() {
            collected.push(result);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        collected
    }
}

/// An optional shared depth gauge over the pipelined parse queue: `add`
/// on submit, `sub` on harvest. A struct (not methods on the ingester) so
/// its `Drop` can return this ingester's outstanding contribution when an
/// ingestion is abandoned mid-flight — `FeedIngester` itself cannot
/// implement `Drop` because `finish` moves fields out of it.
#[derive(Debug, Default)]
struct QueueGauge {
    shared: Option<Arc<AtomicU64>>,
    held: u64,
}

impl QueueGauge {
    fn add(&mut self) {
        if let Some(shared) = &self.shared {
            shared.fetch_add(1, Ordering::Relaxed);
            self.held += 1;
        }
    }

    fn sub(&mut self) {
        if self.held > 0 {
            if let Some(shared) = &self.shared {
                shared.fetch_sub(1, Ordering::Relaxed);
            }
            self.held = self.held.saturating_sub(1);
        }
    }
}

impl Drop for QueueGauge {
    fn drop(&mut self) {
        if self.held > 0 {
            if let Some(shared) = &self.shared {
                shared.fetch_sub(self.held, Ordering::Relaxed);
            }
        }
    }
}

/// The push-based streaming feed ingester (see the module docs).
///
/// # Example
///
/// ```
/// use osdiv_registry::{FeedIngester, IngestBudget};
///
/// let xml = r#"<nvd><entry id="CVE-2008-1447">
///   <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
///   <vuln:summary>DNS cache poisoning</vuln:summary>
/// </entry></nvd>"#;
///
/// let mut ingester = FeedIngester::new(IngestBudget::default());
/// // Feed arbitrary byte chunks — here: 7 bytes at a time.
/// for chunk in xml.as_bytes().chunks(7) {
///     ingester.push(chunk).unwrap();
/// }
/// let outcome = ingester.finish().unwrap();
/// assert_eq!(outcome.entries, 1);
/// assert_eq!(outcome.dataset.valid_count(), 1);
/// ```
#[derive(Debug)]
pub struct FeedIngester {
    budget: IngestBudget,
    reader: FeedReader,
    store: VulnStore,
    buffer: Vec<u8>,
    state: ScanState,
    feed_bytes: usize,
    /// Entry elements processed, parsed or skipped (the budget unit).
    seen: usize,
    /// Entries inserted into the store.
    inserted: usize,
    /// Entry elements the lenient reader dropped as malformed.
    skipped: usize,
    /// The worker pool (`None`: inline parsing).
    pipeline: Option<ParsePipeline>,
    /// Results parsed out of order, waiting for their predecessors.
    pending: BTreeMap<u64, Result<Option<VulnerabilityEntry>, FeedError>>,
    /// The carve sequence number of the next entry to insert.
    next_insert: u64,
    /// The first (in feed order) parse error, once everything before it
    /// was inserted.
    failed: Option<FeedError>,
    /// Bytes examined by the boundary scanner — a work counter for the
    /// complexity-guard tests. Scanning must stay linear in feed size no
    /// matter how finely the network slices the stream.
    scan_work: u64,
    /// Wall-clock µs spent inside `push`/`finish` overall; carve time is
    /// this minus the parse and insert attributions below.
    push_us: u64,
    /// Wall-clock µs spent parsing fragments — inline parse time, or the
    /// coordinator blocked on the worker pool (submit backpressure,
    /// result waits, final drain).
    parse_us: u64,
    /// Wall-clock µs spent settling parsed entries into the store.
    insert_us: u64,
    /// Fragments submitted to the worker pool and not yet harvested,
    /// mirrored into a shared serving gauge when one is attached.
    queue_gauge: QueueGauge,
    /// Flight-recorder clock at construction — the base the aggregate
    /// carve/parse/insert spans are laid out from at `finish`.
    started_us: u64,
}

/// Microseconds elapsed since `started`, saturating.
fn micros_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl FeedIngester {
    /// An empty ingester with the given budget and a lenient reader.
    /// Parsing is pipelined over a small worker pool when the host has
    /// more than one core (see [`FeedIngester::with_workers`]).
    pub fn new(budget: IngestBudget) -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1)
            .min(4);
        Self::with_workers(budget, workers)
    }

    /// An empty ingester parsing on exactly `workers` pool threads
    /// (`0`: inline, strictly sequential parsing).
    pub fn with_workers(budget: IngestBudget, workers: usize) -> Self {
        FeedIngester {
            budget,
            reader: FeedReader::new(),
            store: VulnStore::new(),
            buffer: Vec::new(),
            state: ScanState::Scanning,
            feed_bytes: 0,
            seen: 0,
            inserted: 0,
            skipped: 0,
            pipeline: (workers > 0).then(|| ParsePipeline::start(workers)),
            pending: BTreeMap::new(),
            next_insert: 0,
            failed: None,
            scan_work: 0,
            push_us: 0,
            parse_us: 0,
            insert_us: 0,
            queue_gauge: QueueGauge::default(),
            started_us: obs::monotonic_us(),
        }
    }

    /// Attaches a shared parse-queue depth gauge (the serving layer's
    /// `osdiv_ingest_queue_depth`): incremented when a fragment is
    /// submitted to the worker pool, decremented when its result is
    /// harvested, and zeroed back out if the ingestion is dropped
    /// mid-flight. Inline (zero-worker) ingestions never touch it.
    pub fn with_queue_gauge(mut self, shared: Arc<AtomicU64>) -> Self {
        self.queue_gauge.shared = Some(shared);
        self
    }

    /// Fragments currently in flight on the worker pool (submitted, not
    /// yet harvested).
    pub fn queue_depth(&self) -> u64 {
        self.queue_gauge.held
    }

    /// Bytes examined by the entry-boundary scanner so far. Linear in
    /// [`feed_bytes`](FeedIngester::feed_bytes) by construction; the
    /// complexity-guard tests pin that property.
    pub fn scan_work(&self) -> u64 {
        self.scan_work
    }

    /// Feed bytes consumed so far.
    pub fn feed_bytes(&self) -> usize {
        self.feed_bytes
    }

    /// Entry elements processed so far (parsed or skipped).
    pub fn entries_seen(&self) -> usize {
        self.seen
    }

    /// Bytes currently buffered — bounded by one entry element, never the
    /// whole feed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Pushes the next chunk of feed bytes, processing every entry element
    /// it completes.
    ///
    /// # Errors
    ///
    /// Budget violations ([`IngestError::BodyTooLarge`],
    /// [`IngestError::TooManyEntries`], [`IngestError::EntryTooLarge`]) and
    /// malformed-XML [`IngestError::Feed`] errors abort the ingestion; the
    /// ingester must be discarded afterwards. With a worker pool, a
    /// malformed-XML error may surface on a later `push` than the chunk
    /// that carried the broken entry, or at
    /// [`finish`](FeedIngester::finish) (see the module docs).
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), IngestError> {
        let started = Instant::now();
        let pushed = self.push_chunk(chunk);
        self.push_us += micros_since(started);
        pushed
    }

    /// The body of [`push`](FeedIngester::push), wrapped so the public
    /// entry point can attribute its wall-clock time to the carve stage.
    fn push_chunk(&mut self, chunk: &[u8]) -> Result<(), IngestError> {
        self.take_failure()?;
        if fault::failpoint("ingest.carve") {
            return Err(IngestError::Feed(FeedError::schema(
                None,
                "injected fault at ingest.carve",
            )));
        }
        self.feed_bytes += chunk.len();
        if self.feed_bytes > self.budget.max_bytes {
            return Err(self.budget_error(IngestError::BodyTooLarge {
                limit: self.budget.max_bytes,
            }));
        }
        self.buffer.extend_from_slice(chunk);
        self.scan()?;
        self.drain_ready()
    }

    /// Where this ingestion's wall-clock time has gone so far. Carve time
    /// is everything inside `push`/`finish` not spent parsing or
    /// inserting, so the three stages sum to the total ingest time.
    pub fn stage_micros(&self) -> IngestStageMicros {
        IngestStageMicros {
            carve_us: self.push_us.saturating_sub(self.parse_us + self.insert_us),
            parse_us: self.parse_us,
            insert_us: self.insert_us,
        }
    }

    /// Pulls every already finished worker result (without blocking) and
    /// settles what arrived in feed order.
    fn drain_ready(&mut self) -> Result<(), IngestError> {
        self.collect_ready();
        self.take_failure()
    }

    /// The non-failing half of [`FeedIngester::drain_ready`]: harvest
    /// finished results and fold the in-order prefix into the store. Also
    /// called after every carved fragment, so parsed entries never pile up
    /// behind a long-running `push`.
    fn collect_ready(&mut self) {
        if let Some(pipeline) = &self.pipeline {
            while let Ok((seq, result)) = pipeline.results.try_recv() {
                self.queue_gauge.sub();
                self.pending.insert(seq, result);
            }
        }
        self.settle_pending();
    }

    /// Inserts pending results whose predecessors have all been applied,
    /// strictly in carve order — the loaded store is identical to a
    /// sequential ingestion.
    fn settle_pending(&mut self) {
        let started = Instant::now();
        while self.failed.is_none() {
            let Some(result) = self.pending.remove(&self.next_insert) else {
                break;
            };
            self.next_insert += 1;
            match result {
                Ok(Some(entry)) => {
                    if fault::failpoint("ingest.insert") {
                        self.failed =
                            Some(FeedError::schema(None, "injected fault at ingest.insert"));
                        continue;
                    }
                    self.store.insert_entry(&entry);
                    self.inserted += 1;
                }
                Ok(None) => self.skipped += 1,
                Err(error) => self.failed = Some(error),
            }
        }
        self.insert_us += micros_since(started);
    }

    /// Surfaces the first-in-feed-order parse failure, once.
    fn take_failure(&mut self) -> Result<(), IngestError> {
        match self.failed.take() {
            Some(error) => Err(IngestError::Feed(error)),
            None => Ok(()),
        }
    }

    /// Blocks until every already submitted fragment has settled (or a
    /// failure surfaced). Called before reporting a budget violation:
    /// everything in flight was carved *earlier* in the feed, so an
    /// in-flight parse error there must win over the budget error —
    /// exactly what a sequential ingestion would have reported.
    fn await_in_flight(&mut self) {
        loop {
            self.settle_pending();
            if self.failed.is_some() || self.next_insert >= self.seen as u64 {
                return;
            }
            let waited = Instant::now();
            let received = match &self.pipeline {
                Some(pipeline) => pipeline.results.recv().ok(),
                None => None,
            };
            self.parse_us += micros_since(waited);
            match received {
                Some((seq, result)) => {
                    self.queue_gauge.sub();
                    self.pending.insert(seq, result);
                }
                None => return,
            }
        }
    }

    /// Resolves a budget violation against the in-flight parses: an
    /// earlier (feed-order) parse failure takes precedence.
    fn budget_error(&mut self, violation: IngestError) -> IngestError {
        self.await_in_flight();
        match self.failed.take() {
            Some(error) => IngestError::Feed(error),
            None => violation,
        }
    }

    /// Processes every complete entry element currently buffered.
    fn scan(&mut self) -> Result<(), IngestError> {
        loop {
            match self.state {
                ScanState::Scanning => match find_entry_open(&self.buffer, &mut self.scan_work) {
                    EntryOpen::At(offset) => {
                        self.buffer.drain(..offset);
                        self.state = ScanState::InEntry(EntryScan::default());
                    }
                    EntryOpen::Partial(offset) => {
                        self.buffer.drain(..offset);
                        return Ok(());
                    }
                    EntryOpen::None => {
                        // Keep only a tail that could still become `<entry`.
                        let keep = self.buffer.len().min(b"<entry".len() - 1);
                        self.buffer.drain(..self.buffer.len().saturating_sub(keep));
                        return Ok(());
                    }
                },
                ScanState::InEntry(mut entry_scan) => {
                    let end = find_entry_end(&self.buffer, &mut entry_scan, &mut self.scan_work);
                    self.state = ScanState::InEntry(entry_scan);
                    let Some(end) = end else {
                        if self.buffer.len() > self.budget.max_entry_bytes {
                            return Err(self.budget_error(IngestError::EntryTooLarge {
                                limit: self.budget.max_entry_bytes,
                            }));
                        }
                        return Ok(());
                    };
                    if end > self.budget.max_entry_bytes {
                        return Err(self.budget_error(IngestError::EntryTooLarge {
                            limit: self.budget.max_entry_bytes,
                        }));
                    }
                    self.process_fragment(end)?;
                    self.buffer.drain(..end);
                    self.state = ScanState::Scanning;
                    // Harvest finished parses between fragments so a large
                    // single push cannot pile every parsed entry up in
                    // `pending` — transient memory stays at pipeline depth.
                    self.collect_ready();
                    if self.failed.is_some() {
                        // A parse failure is already settled: stop carving
                        // (and budget-counting) the rest of the chunk, so
                        // the feed-order-first error reaches the caller
                        // instead of being masked by a later budget
                        // violation — and nothing parses for nothing.
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Parses `self.buffer[..end]` as one entry element — on the worker
    /// pool when one is running, inline otherwise.
    fn process_fragment(&mut self, end: usize) -> Result<(), IngestError> {
        if self.seen >= self.budget.max_entries {
            return Err(self.budget_error(IngestError::TooManyEntries {
                limit: self.budget.max_entries,
            }));
        }
        if std::str::from_utf8(self.buffer.get(..end).unwrap_or_default()).is_err() {
            // Resolve against in-flight parses before surfacing: an entry
            // *earlier* in the feed may still be parsing on a worker, and
            // its error must win — exactly as a sequential ingestion
            // would report it. (Checked before a seq is allocated, so
            // `await_in_flight` never waits on a never-submitted parse.)
            let error = IngestError::Feed(FeedError::schema(None, "entry is not valid UTF-8"));
            return Err(self.budget_error(error));
        }
        if fault::failpoint("ingest.parse") {
            let error =
                IngestError::Feed(FeedError::schema(None, "injected fault at ingest.parse"));
            return Err(self.budget_error(error));
        }
        let seq = self.seen as u64;
        self.seen += 1;
        let fragment =
            std::str::from_utf8(self.buffer.get(..end).unwrap_or_default()).unwrap_or_default();
        let parse_started = Instant::now();
        match &self.pipeline {
            Some(pipeline) => {
                pipeline.submit(seq, fragment.to_string());
                self.queue_gauge.add();
            }
            None => {
                let parsed = self.reader.read_entry_str(fragment);
                self.pending.insert(seq, parsed);
            }
        }
        self.parse_us += micros_since(parse_started);
        Ok(())
    }

    /// Finishes the ingestion: waits for the worker pool to drain, fails
    /// on a parse error, a truncated or an empty feed, classifies
    /// unlabelled rows, and returns the loaded dataset.
    pub fn finish(self) -> Result<IngestOutcome, IngestError> {
        self.finish_inner(false).map(|(outcome, _)| outcome)
    }

    /// Like [`finish`](FeedIngester::finish), but a feed that ends in the
    /// middle of an entry element **drops the partial trailing entry**
    /// instead of failing — the semantics of replaying a crash-truncated
    /// ingestion journal, where everything up to the last complete entry
    /// is trustworthy and the torn tail is not. The returned flag reports
    /// whether a partial entry was dropped. Parse errors and empty feeds
    /// still fail: a journal holding a feed the original `PUT` would have
    /// rejected must not materialize a dataset.
    pub fn finish_lossy(self) -> Result<(IngestOutcome, bool), IngestError> {
        self.finish_inner(true)
    }

    fn finish_inner(mut self, lossy: bool) -> Result<(IngestOutcome, bool), IngestError> {
        let finish_started = Instant::now();
        if let Some(pipeline) = self.pipeline.take() {
            let drain_started = Instant::now();
            for (seq, result) in pipeline.drain() {
                self.queue_gauge.sub();
                self.pending.insert(seq, result);
            }
            self.parse_us += micros_since(drain_started);
        }
        self.settle_pending();
        self.push_us += micros_since(finish_started);
        self.take_failure()?;
        let dropped_tail = matches!(self.state, ScanState::InEntry(_));
        if dropped_tail && !lossy {
            return Err(IngestError::Truncated);
        }
        if self.seen == 0 {
            return Err(IngestError::Empty);
        }
        let stages = self.stage_micros();
        // Three aggregate flight-recorder spans, laid out sequentially
        // from the ingestion's start so a trace shows where the time went
        // without flooding the ring with per-entry records. `finish` runs
        // on the request's thread, so these nest under the request span
        // when a trace scope is active. The parse span includes time the
        // coordinator spent blocked on the worker queue (backpressure).
        let carve_end = self.started_us + stages.carve_us;
        let parse_end = carve_end + stages.parse_us;
        obs::record_span(SpanKind::IngestCarve, "", self.started_us, stages.carve_us);
        obs::record_span(SpanKind::IngestParse, "", carve_end, stages.parse_us);
        obs::record_span(SpanKind::IngestInsert, "", parse_end, stages.insert_us);
        let entries = self.store.vulnerability_count();
        let mut dataset = StudyDataset::from_store(self.store);
        dataset.classify_unlabelled(&Classifier::with_default_rules());
        Ok((
            IngestOutcome {
                dataset,
                entries,
                parsed: self.inserted,
                skipped: self.skipped,
                feed_bytes: self.feed_bytes,
                stages,
            },
            dropped_tail,
        ))
    }
}

/// The outcome of scanning for an `<entry` open tag.
enum EntryOpen {
    /// A confirmed `<entry` (followed by a tag delimiter) starts here.
    At(usize),
    /// `<entry` starts here but its next byte has not arrived yet.
    Partial(usize),
    /// No candidate in the buffer.
    None,
}

/// Finds the next `<entry` open tag — as an element named exactly `entry`,
/// not a longer name like `<entryset`.
fn find_entry_open(buffer: &[u8], work: &mut u64) -> EntryOpen {
    const OPEN: &[u8] = b"<entry";
    let mut from = 0;
    while let Some(position) = find(buffer.get(from..).unwrap_or_default(), OPEN) {
        let at = from + position;
        *work += (position + OPEN.len()) as u64;
        match buffer.get(at + OPEN.len()) {
            None => return EntryOpen::Partial(at),
            Some(b' ' | b'\t' | b'\r' | b'\n' | b'>' | b'/') => return EntryOpen::At(at),
            Some(_) => from = at + OPEN.len(),
        }
    }
    *work += buffer.len().saturating_sub(from) as u64;
    EntryOpen::None
}

/// Given a buffer starting at `<entry`, returns the exclusive end offset of
/// the complete element (`<entry …/>` or `<entry …>…</entry>`), or `None`
/// while it is still incomplete. `scan` carries the walk's progress across
/// calls: bytes already examined on an earlier chunk are never re-scanned,
/// keeping the per-entry cost linear no matter how finely the network
/// slices the stream.
fn find_entry_end(buffer: &[u8], scan: &mut EntryScan, work: &mut u64) -> Option<usize> {
    const CLOSE: &[u8] = b"</entry";
    // Phase 1: end of the start tag, honouring quoted attribute values
    // (a `>` is legal inside them).
    if scan.tag_end.is_none() {
        let mut found = None;
        for (i, &byte) in buffer.iter().enumerate().skip(scan.resume) {
            *work += 1;
            match scan.quote {
                Some(q) if byte == q => scan.quote = None,
                Some(_) => {}
                None => match byte {
                    b'"' | b'\'' => scan.quote = Some(byte),
                    b'>' => {
                        found = Some(i);
                        break;
                    }
                    _ => {}
                },
            }
        }
        let Some(tag_end) = found else {
            scan.resume = buffer.len();
            return None;
        };
        if tag_end.checked_sub(1).and_then(|i| buffer.get(i)) == Some(&b'/') {
            return Some(tag_end + 1); // self-closing
        }
        scan.tag_end = Some(tag_end);
        scan.resume = tag_end + 1;
    }
    // Phase 2: the matching `</entry>` close tag (entries do not nest in
    // NVD feeds).
    let mut from = scan.resume;
    while let Some(position) = find(buffer.get(from..).unwrap_or_default(), CLOSE) {
        let at = from + position;
        *work += (position + CLOSE.len()) as u64;
        // Skip whitespace between the name and `>`.
        let mut i = at + CLOSE.len();
        while matches!(buffer.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            i += 1;
            *work += 1;
        }
        match buffer.get(i) {
            None => {
                // `</entry` seen, `>` not yet arrived: resume at the
                // candidate so the whitespace run is re-checked once the
                // next chunk lands.
                scan.resume = at;
                return None;
            }
            Some(b'>') => return Some(i + 1),
            Some(_) => from = at + CLOSE.len(), // e.g. `</entryset>`
        }
    }
    // No candidate: keep a tail that could still become `</entry`.
    *work += buffer.len().saturating_sub(from) as u64;
    scan.resume = scan
        .resume
        .max(buffer.len().saturating_sub(CLOSE.len() - 1));
    None
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_feed::FeedWriter;
    use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};

    fn feed(entries: usize) -> String {
        let entries: Vec<_> = (0..entries)
            .map(|i| {
                VulnerabilityEntry::builder(CveId::new(2000 + (i % 10) as u16, 1 + i as u32))
                    .summary(format!("Buffer overflow number {i} in the TCP/IP stack"))
                    .affects_os(if i % 2 == 0 {
                        OsDistribution::Debian
                    } else {
                        OsDistribution::OpenBsd
                    })
                    .build()
                    .unwrap()
            })
            .collect();
        FeedWriter::new().write_to_string(&entries).unwrap()
    }

    #[test]
    fn chunked_pushes_match_oneshot_ingestion_at_any_granularity() {
        let xml = feed(25);
        let oneshot = {
            let mut ingester = FeedIngester::new(IngestBudget::default());
            ingester.push(xml.as_bytes()).unwrap();
            ingester.finish().unwrap()
        };
        assert_eq!(oneshot.entries, 25);
        for chunk in [1usize, 3, 7, 64, 1024] {
            let mut ingester = FeedIngester::new(IngestBudget::default());
            for piece in xml.as_bytes().chunks(chunk) {
                ingester.push(piece).unwrap();
            }
            let outcome = ingester.finish().unwrap();
            assert_eq!(outcome.entries, 25, "chunk size {chunk}");
            assert_eq!(outcome.skipped, 0);
            assert_eq!(
                outcome.dataset.valid_count(),
                oneshot.dataset.valid_count(),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn finish_lossy_drops_only_the_torn_trailing_entry() {
        let xml = feed(10);
        // A strict finish on a feed cut mid-entry fails…
        let cut = xml.rfind("<entry").unwrap() + 20;
        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester.push(&xml.as_bytes()[..cut]).unwrap();
        assert!(matches!(ingester.finish(), Err(IngestError::Truncated)));
        // …a lossy finish keeps the nine complete entries.
        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester.push(&xml.as_bytes()[..cut]).unwrap();
        let (outcome, dropped) = ingester.finish_lossy().unwrap();
        assert!(dropped);
        assert_eq!(outcome.entries, 9);
        // A clean feed reports no drop.
        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester.push(xml.as_bytes()).unwrap();
        let (outcome, dropped) = ingester.finish_lossy().unwrap();
        assert!(!dropped);
        assert_eq!(outcome.entries, 10);
        // Still strict about feeds that never completed a single entry.
        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester.push(b"<nvd>").unwrap();
        assert!(matches!(ingester.finish_lossy(), Err(IngestError::Empty)));
    }

    #[test]
    fn the_buffer_stays_bounded_by_one_entry() {
        let xml = feed(200);
        let mut ingester = FeedIngester::new(IngestBudget::default());
        let mut peak = 0;
        for piece in xml.as_bytes().chunks(512) {
            ingester.push(piece).unwrap();
            peak = peak.max(ingester.buffered());
        }
        // The feed is tens of KB; the transient buffer must stay near one
        // entry (well under 4 KiB here), proving nothing accumulates.
        assert!(xml.len() > 16 * 1024);
        assert!(peak < 4 * 1024, "peak buffered bytes: {peak}");
        assert_eq!(ingester.finish().unwrap().entries, 200);
    }

    #[test]
    fn byte_and_entry_budgets_abort_ingestion() {
        let xml = feed(10);
        let mut ingester = FeedIngester::new(IngestBudget {
            max_bytes: 100,
            ..IngestBudget::default()
        });
        assert!(matches!(
            ingester.push(xml.as_bytes()).unwrap_err(),
            IngestError::BodyTooLarge { limit: 100 }
        ));

        let mut ingester = FeedIngester::new(IngestBudget {
            max_entries: 4,
            ..IngestBudget::default()
        });
        let error = ingester.push(xml.as_bytes()).unwrap_err();
        assert!(matches!(error, IngestError::TooManyEntries { limit: 4 }));
        assert_eq!(error.http_status(), 413);

        let mut ingester = FeedIngester::new(IngestBudget {
            max_entry_bytes: 64,
            ..IngestBudget::default()
        });
        assert!(matches!(
            ingester.push(xml.as_bytes()).unwrap_err(),
            IngestError::EntryTooLarge { limit: 64 }
        ));
    }

    #[test]
    fn truncated_and_empty_feeds_are_errors() {
        let xml = feed(3);
        let cut = xml.len() - 30;
        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester.push(&xml.as_bytes()[..cut]).unwrap();
        assert!(matches!(
            ingester.finish().unwrap_err(),
            IngestError::Truncated
        ));

        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester
            .push(b"<?xml version=\"1.0\"?><nvd></nvd>")
            .unwrap();
        let error = ingester.finish().unwrap_err();
        assert!(matches!(error, IngestError::Empty));
        assert_eq!(error.http_status(), 400);
    }

    #[test]
    fn duplicate_cves_merge_and_malformed_entries_are_skipped() {
        let xml = r#"<nvd>
          <entry id="CVE-2008-1447">
            <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
            <vuln:summary>DNS cache poisoning</vuln:summary>
          </entry>
          <entry id="NOT-A-CVE"><vuln:summary>broken</vuln:summary></entry>
          <entry id="CVE-2008-1447">
            <vuln:product>cpe:/o:freebsd:freebsd:6.3</vuln:product>
            <vuln:summary>DNS cache poisoning (republished)</vuln:summary>
          </entry>
        </nvd>"#;
        let mut ingester = FeedIngester::new(IngestBudget::default());
        for piece in xml.as_bytes().chunks(11) {
            ingester.push(piece).unwrap();
        }
        let outcome = ingester.finish().unwrap();
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.parsed, 2, "both valid elements parsed");
        assert_eq!(outcome.entries, 1, "entries counts distinct rows");
        assert_eq!(outcome.dataset.store().vulnerability_count(), 1);
        let row = outcome
            .dataset
            .store()
            .get_by_cve(CveId::new(2008, 1447))
            .unwrap();
        assert_eq!(row.os_set.len(), 2, "republished OS sets are unioned");
    }

    #[test]
    fn malformed_xml_inside_an_entry_is_a_feed_error() {
        // Inline (workers == 0): the error surfaces on the push itself.
        let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 0);
        let error = ingester
            .push(b"<nvd><entry id=unquoted>x</entry></nvd>")
            .unwrap_err();
        assert!(matches!(error, IngestError::Feed(_)));
        assert_eq!(error.http_status(), 400);

        // Pipelined: the same error surfaces on a push or at finish,
        // whichever comes first.
        let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 2);
        let error = ingester
            .push(b"<nvd><entry id=unquoted>x</entry></nvd>")
            .err()
            .unwrap_or_else(|| ingester.finish().unwrap_err());
        assert!(matches!(error, IngestError::Feed(_)));
        assert_eq!(error.http_status(), 400);
    }

    #[test]
    fn an_earlier_parse_error_beats_a_later_budget_violation() {
        // One malformed entry followed by more entries than the remaining
        // budget: a sequential ingestion reports the parse error (400),
        // never the budget violation (413) — and so must the pipeline, no
        // matter how the workers are scheduled.
        let mut xml = String::from("<nvd><entry id=unquoted>broken</entry>");
        for i in 0..10 {
            xml.push_str(&format!(
                "<entry id=\"CVE-2007-{}\"><vuln:summary>fine</vuln:summary></entry>",
                i + 1
            ));
        }
        xml.push_str("</nvd>");
        for workers in [0, 3] {
            for _ in 0..4 {
                let mut ingester = FeedIngester::with_workers(
                    IngestBudget {
                        max_entries: 4,
                        ..IngestBudget::default()
                    },
                    workers,
                );
                let error = ingester
                    .push(xml.as_bytes())
                    .err()
                    .unwrap_or_else(|| ingester.finish().unwrap_err());
                assert!(
                    matches!(error, IngestError::Feed(_)),
                    "workers {workers}: expected the feed-order-first parse error, got {error}"
                );
            }
        }
    }

    #[test]
    fn pipelined_error_reporting_is_deterministic_by_feed_order() {
        // Two broken entries: the reported error is always the FIRST one
        // in feed order, no matter which worker finishes first. The first
        // broken fragment has mismatched quotes (unterminated attribute),
        // the second an unclosed tag soup — distinguishable messages.
        let xml = br#"<nvd>
          <entry id="CVE-2008-1"><vuln:summary>fine</vuln:summary></entry>
          <entry id=broken-first>x</entry>
          <entry id='broken"second>y</entry>
        </nvd>"#;
        let mut messages = std::collections::BTreeSet::new();
        for _ in 0..8 {
            let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 3);
            let error = ingester
                .push(xml)
                .err()
                .unwrap_or_else(|| ingester.finish().unwrap_err());
            messages.insert(error.to_string());
        }
        assert_eq!(
            messages.len(),
            1,
            "error reporting must be deterministic: {messages:?}"
        );
    }

    #[test]
    fn pipelined_ingestion_loads_an_identical_store() {
        let xml = feed(120);
        let sequential = {
            let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 0);
            ingester.push(xml.as_bytes()).unwrap();
            ingester.finish().unwrap()
        };
        for workers in [1, 2, 4] {
            let mut ingester = FeedIngester::with_workers(IngestBudget::default(), workers);
            for piece in xml.as_bytes().chunks(97) {
                ingester.push(piece).unwrap();
            }
            let outcome = ingester.finish().unwrap();
            assert_eq!(outcome.entries, sequential.entries, "workers {workers}");
            assert_eq!(outcome.parsed, sequential.parsed);
            assert_eq!(outcome.skipped, sequential.skipped);
            assert_eq!(
                outcome.dataset.store().vulnerability_count(),
                sequential.dataset.store().vulnerability_count()
            );
            // Row ids are assigned in insertion order: identical iteration
            // proves the pipeline preserved feed order.
            for (parallel, reference) in outcome
                .dataset
                .store()
                .rows()
                .zip(sequential.dataset.store().rows())
            {
                assert_eq!(parallel.cve, reference.cve, "workers {workers}");
                assert_eq!(parallel.os_set, reference.os_set);
            }
        }

        // A single whole-feed push: the carver runs far ahead of the
        // workers, exercising the bounded job queue's backpressure and the
        // between-fragment result harvesting.
        let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 2);
        ingester.push(xml.as_bytes()).unwrap();
        let outcome = ingester.finish().unwrap();
        assert_eq!(outcome.entries, sequential.entries);
        assert_eq!(outcome.parsed, sequential.parsed);
    }
}
