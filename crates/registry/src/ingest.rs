//! Push-based, bounded streaming ingestion of NVD XML feeds.
//!
//! [`FeedIngester`] accepts body bytes **as they arrive** (from a chunked
//! HTTP request, a file read loop, …) and never buffers the whole feed: it
//! carves complete `<entry>…</entry>` elements out of the byte stream,
//! hands each one to [`nvd_feed::FeedReader::read_entry_str`] (which
//! normalizes product names exactly like the batch reader), inserts the
//! parsed entry into a [`VulnStore`] (merging duplicate CVEs), and drops
//! the consumed bytes. The transient buffer is bounded by the size of one
//! entry ([`IngestBudget::max_entry_bytes`]); the whole ingestion is
//! bounded by [`IngestBudget::max_bytes`] and [`IngestBudget::max_entries`].
//!
//! [`finish`](FeedIngester::finish) classifies still-unlabelled rows with
//! the default rule engine (the automated stand-in for the paper's manual
//! Section III-B step, mirroring the `feed_pipeline` example) and returns
//! the [`StudyDataset`] ready to wrap in a [`Study`].
//!
//! Known limitation: entry boundaries are recognized textually (with
//! quote-aware tag scanning), so a literal `</entry>` *inside a CDATA
//! section* would split an entry early — the fragment then fails to parse
//! and is counted as skipped, never mis-attributed. NVD feeds escape
//! character data and do not hit this.

use std::fmt;

use classify::Classifier;
use nvd_feed::{FeedError, FeedReader};
use osdiv_core::{Study, StudyDataset};
use vulnstore::VulnStore;

/// Bounds on one streaming ingestion.
#[derive(Debug, Clone)]
pub struct IngestBudget {
    /// Total feed bytes accepted before the ingestion is aborted.
    pub max_bytes: usize,
    /// Entry elements processed (parsed *or* skipped) before aborting.
    pub max_entries: usize,
    /// Size of a single `<entry>` element — the transient buffer bound.
    pub max_entry_bytes: usize,
}

impl Default for IngestBudget {
    fn default() -> Self {
        IngestBudget {
            max_bytes: 64 * 1024 * 1024,
            max_entries: 100_000,
            max_entry_bytes: 1024 * 1024,
        }
    }
}

/// Why an ingestion was aborted; [`http_status`](IngestError::http_status)
/// maps each cause to the status the serving layer answers.
#[derive(Debug)]
pub enum IngestError {
    /// Malformed XML or (strict-mode) invalid entry fields.
    Feed(FeedError),
    /// The feed exceeded [`IngestBudget::max_bytes`].
    BodyTooLarge {
        /// The configured byte budget.
        limit: usize,
    },
    /// The feed exceeded [`IngestBudget::max_entries`].
    TooManyEntries {
        /// The configured entry budget.
        limit: usize,
    },
    /// A single entry exceeded [`IngestBudget::max_entry_bytes`].
    EntryTooLarge {
        /// The configured per-entry bound.
        limit: usize,
    },
    /// The feed ended in the middle of an entry element.
    Truncated,
    /// The feed contained no entry element at all.
    Empty,
}

impl IngestError {
    /// The HTTP status an ingestion endpoint answers for this failure:
    /// budget violations are 413 (Payload Too Large), everything else 400.
    pub fn http_status(&self) -> u16 {
        match self {
            IngestError::BodyTooLarge { .. }
            | IngestError::TooManyEntries { .. }
            | IngestError::EntryTooLarge { .. } => 413,
            IngestError::Feed(_) | IngestError::Truncated | IngestError::Empty => 400,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Feed(error) => write!(f, "feed error: {error}"),
            IngestError::BodyTooLarge { limit } => {
                write!(f, "feed exceeds the {limit} byte ingestion budget")
            }
            IngestError::TooManyEntries { limit } => {
                write!(f, "feed exceeds the {limit} entry ingestion budget")
            }
            IngestError::EntryTooLarge { limit } => {
                write!(f, "a single entry exceeds {limit} bytes")
            }
            IngestError::Truncated => f.write_str("feed ended inside an <entry> element"),
            IngestError::Empty => f.write_str("feed contains no <entry> element"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Feed(error) => Some(error),
            _ => None,
        }
    }
}

impl From<FeedError> for IngestError {
    fn from(error: FeedError) -> Self {
        IngestError::Feed(error)
    }
}

/// What a completed ingestion produced.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The loaded dataset (duplicates merged, unlabelled rows classified).
    pub dataset: StudyDataset,
    /// Distinct vulnerabilities loaded (republished duplicate entries
    /// merge into one row; see [`IngestOutcome::parsed`] for the raw
    /// element count).
    pub entries: usize,
    /// Entry elements successfully parsed, duplicates included.
    pub parsed: usize,
    /// Entry elements skipped as malformed by the lenient reader.
    pub skipped: usize,
    /// Feed bytes consumed.
    pub feed_bytes: usize,
}

impl IngestOutcome {
    /// Wraps the dataset in a fresh [`Study`] session.
    pub fn into_study(self) -> Study {
        Study::new(self.dataset)
    }
}

/// Where the boundary scanner is inside the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanState {
    /// Looking for the next `<entry` open tag.
    Scanning,
    /// Buffering one entry element (the buffer starts at its `<entry`).
    InEntry,
}

/// The push-based streaming feed ingester (see the module docs).
///
/// # Example
///
/// ```
/// use osdiv_registry::{FeedIngester, IngestBudget};
///
/// let xml = r#"<nvd><entry id="CVE-2008-1447">
///   <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
///   <vuln:summary>DNS cache poisoning</vuln:summary>
/// </entry></nvd>"#;
///
/// let mut ingester = FeedIngester::new(IngestBudget::default());
/// // Feed arbitrary byte chunks — here: 7 bytes at a time.
/// for chunk in xml.as_bytes().chunks(7) {
///     ingester.push(chunk).unwrap();
/// }
/// let outcome = ingester.finish().unwrap();
/// assert_eq!(outcome.entries, 1);
/// assert_eq!(outcome.dataset.valid_count(), 1);
/// ```
#[derive(Debug)]
pub struct FeedIngester {
    budget: IngestBudget,
    reader: FeedReader,
    store: VulnStore,
    buffer: Vec<u8>,
    state: ScanState,
    feed_bytes: usize,
    /// Entry elements processed, parsed or skipped (the budget unit).
    seen: usize,
    /// Entries inserted into the store.
    inserted: usize,
}

impl FeedIngester {
    /// An empty ingester with the given budget and a lenient reader.
    pub fn new(budget: IngestBudget) -> Self {
        FeedIngester {
            budget,
            reader: FeedReader::new(),
            store: VulnStore::new(),
            buffer: Vec::new(),
            state: ScanState::Scanning,
            feed_bytes: 0,
            seen: 0,
            inserted: 0,
        }
    }

    /// Feed bytes consumed so far.
    pub fn feed_bytes(&self) -> usize {
        self.feed_bytes
    }

    /// Entry elements processed so far (parsed or skipped).
    pub fn entries_seen(&self) -> usize {
        self.seen
    }

    /// Bytes currently buffered — bounded by one entry element, never the
    /// whole feed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Pushes the next chunk of feed bytes, processing every entry element
    /// it completes.
    ///
    /// # Errors
    ///
    /// Budget violations ([`IngestError::BodyTooLarge`],
    /// [`IngestError::TooManyEntries`], [`IngestError::EntryTooLarge`]) and
    /// malformed-XML [`IngestError::Feed`] errors abort the ingestion; the
    /// ingester must be discarded afterwards.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), IngestError> {
        self.feed_bytes += chunk.len();
        if self.feed_bytes > self.budget.max_bytes {
            return Err(IngestError::BodyTooLarge {
                limit: self.budget.max_bytes,
            });
        }
        self.buffer.extend_from_slice(chunk);
        self.scan()
    }

    /// Processes every complete entry element currently buffered.
    fn scan(&mut self) -> Result<(), IngestError> {
        loop {
            match self.state {
                ScanState::Scanning => match find_entry_open(&self.buffer) {
                    EntryOpen::At(offset) => {
                        self.buffer.drain(..offset);
                        self.state = ScanState::InEntry;
                    }
                    EntryOpen::Partial(offset) => {
                        self.buffer.drain(..offset);
                        return Ok(());
                    }
                    EntryOpen::None => {
                        // Keep only a tail that could still become `<entry`.
                        let keep = self.buffer.len().min(b"<entry".len() - 1);
                        self.buffer.drain(..self.buffer.len() - keep);
                        return Ok(());
                    }
                },
                ScanState::InEntry => {
                    let Some(end) = find_entry_end(&self.buffer) else {
                        if self.buffer.len() > self.budget.max_entry_bytes {
                            return Err(IngestError::EntryTooLarge {
                                limit: self.budget.max_entry_bytes,
                            });
                        }
                        return Ok(());
                    };
                    if end > self.budget.max_entry_bytes {
                        return Err(IngestError::EntryTooLarge {
                            limit: self.budget.max_entry_bytes,
                        });
                    }
                    self.process_fragment(end)?;
                    self.buffer.drain(..end);
                    self.state = ScanState::Scanning;
                }
            }
        }
    }

    /// Parses `self.buffer[..end]` as one entry element and loads it.
    fn process_fragment(&mut self, end: usize) -> Result<(), IngestError> {
        if self.seen >= self.budget.max_entries {
            return Err(IngestError::TooManyEntries {
                limit: self.budget.max_entries,
            });
        }
        self.seen += 1;
        let fragment = std::str::from_utf8(&self.buffer[..end])
            .map_err(|_| IngestError::Feed(FeedError::schema(None, "entry is not valid UTF-8")))?;
        if let Some(entry) = self.reader.read_entry_str(fragment)? {
            self.store.insert_entry(&entry);
            self.inserted += 1;
        }
        Ok(())
    }

    /// Finishes the ingestion: fails on a truncated or empty feed,
    /// classifies unlabelled rows, and returns the loaded dataset.
    pub fn finish(self) -> Result<IngestOutcome, IngestError> {
        if self.state == ScanState::InEntry {
            return Err(IngestError::Truncated);
        }
        if self.seen == 0 {
            return Err(IngestError::Empty);
        }
        let FeedIngester {
            reader,
            store,
            feed_bytes,
            inserted,
            ..
        } = self;
        let entries = store.vulnerability_count();
        let mut dataset = StudyDataset::from_store(store);
        dataset.classify_unlabelled(&Classifier::with_default_rules());
        Ok(IngestOutcome {
            dataset,
            entries,
            parsed: inserted,
            skipped: reader.skipped(),
            feed_bytes,
        })
    }
}

/// The outcome of scanning for an `<entry` open tag.
enum EntryOpen {
    /// A confirmed `<entry` (followed by a tag delimiter) starts here.
    At(usize),
    /// `<entry` starts here but its next byte has not arrived yet.
    Partial(usize),
    /// No candidate in the buffer.
    None,
}

/// Finds the next `<entry` open tag — as an element named exactly `entry`,
/// not a longer name like `<entryset`.
fn find_entry_open(buffer: &[u8]) -> EntryOpen {
    const OPEN: &[u8] = b"<entry";
    let mut from = 0;
    while let Some(position) = find(&buffer[from..], OPEN) {
        let at = from + position;
        match buffer.get(at + OPEN.len()) {
            None => return EntryOpen::Partial(at),
            Some(b' ' | b'\t' | b'\r' | b'\n' | b'>' | b'/') => return EntryOpen::At(at),
            Some(_) => from = at + OPEN.len(),
        }
    }
    EntryOpen::None
}

/// Given a buffer starting at `<entry`, returns the exclusive end offset of
/// the complete element (`<entry …/>` or `<entry …>…</entry>`), or `None`
/// while it is still incomplete.
fn find_entry_end(buffer: &[u8]) -> Option<usize> {
    // End of the start tag, honouring quoted attribute values (a `>` is
    // legal inside them).
    let mut quote: Option<u8> = None;
    let mut tag_end = None;
    for (i, &byte) in buffer.iter().enumerate() {
        match quote {
            Some(q) if byte == q => quote = None,
            Some(_) => {}
            None => match byte {
                b'"' | b'\'' => quote = Some(byte),
                b'>' => {
                    tag_end = Some(i);
                    break;
                }
                _ => {}
            },
        }
    }
    let tag_end = tag_end?;
    if tag_end > 0 && buffer[tag_end - 1] == b'/' {
        return Some(tag_end + 1); // self-closing
    }
    // The matching `</entry>` close tag (entries do not nest in NVD feeds).
    const CLOSE: &[u8] = b"</entry";
    let mut from = tag_end + 1;
    while let Some(position) = find(&buffer[from..], CLOSE) {
        let at = from + position;
        // Skip whitespace between the name and `>`.
        let mut i = at + CLOSE.len();
        while matches!(buffer.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            i += 1;
        }
        match buffer.get(i) {
            None => return None, // `</entry` seen, `>` not yet arrived
            Some(b'>') => return Some(i + 1),
            Some(_) => from = at + CLOSE.len(), // e.g. `</entryset>`
        }
    }
    None
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_feed::FeedWriter;
    use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};

    fn feed(entries: usize) -> String {
        let entries: Vec<_> = (0..entries)
            .map(|i| {
                VulnerabilityEntry::builder(CveId::new(2000 + (i % 10) as u16, 1 + i as u32))
                    .summary(format!("Buffer overflow number {i} in the TCP/IP stack"))
                    .affects_os(if i % 2 == 0 {
                        OsDistribution::Debian
                    } else {
                        OsDistribution::OpenBsd
                    })
                    .build()
                    .unwrap()
            })
            .collect();
        FeedWriter::new().write_to_string(&entries).unwrap()
    }

    #[test]
    fn chunked_pushes_match_oneshot_ingestion_at_any_granularity() {
        let xml = feed(25);
        let oneshot = {
            let mut ingester = FeedIngester::new(IngestBudget::default());
            ingester.push(xml.as_bytes()).unwrap();
            ingester.finish().unwrap()
        };
        assert_eq!(oneshot.entries, 25);
        for chunk in [1usize, 3, 7, 64, 1024] {
            let mut ingester = FeedIngester::new(IngestBudget::default());
            for piece in xml.as_bytes().chunks(chunk) {
                ingester.push(piece).unwrap();
            }
            let outcome = ingester.finish().unwrap();
            assert_eq!(outcome.entries, 25, "chunk size {chunk}");
            assert_eq!(outcome.skipped, 0);
            assert_eq!(
                outcome.dataset.valid_count(),
                oneshot.dataset.valid_count(),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn the_buffer_stays_bounded_by_one_entry() {
        let xml = feed(200);
        let mut ingester = FeedIngester::new(IngestBudget::default());
        let mut peak = 0;
        for piece in xml.as_bytes().chunks(512) {
            ingester.push(piece).unwrap();
            peak = peak.max(ingester.buffered());
        }
        // The feed is tens of KB; the transient buffer must stay near one
        // entry (well under 4 KiB here), proving nothing accumulates.
        assert!(xml.len() > 16 * 1024);
        assert!(peak < 4 * 1024, "peak buffered bytes: {peak}");
        assert_eq!(ingester.finish().unwrap().entries, 200);
    }

    #[test]
    fn byte_and_entry_budgets_abort_ingestion() {
        let xml = feed(10);
        let mut ingester = FeedIngester::new(IngestBudget {
            max_bytes: 100,
            ..IngestBudget::default()
        });
        assert!(matches!(
            ingester.push(xml.as_bytes()).unwrap_err(),
            IngestError::BodyTooLarge { limit: 100 }
        ));

        let mut ingester = FeedIngester::new(IngestBudget {
            max_entries: 4,
            ..IngestBudget::default()
        });
        let error = ingester.push(xml.as_bytes()).unwrap_err();
        assert!(matches!(error, IngestError::TooManyEntries { limit: 4 }));
        assert_eq!(error.http_status(), 413);

        let mut ingester = FeedIngester::new(IngestBudget {
            max_entry_bytes: 64,
            ..IngestBudget::default()
        });
        assert!(matches!(
            ingester.push(xml.as_bytes()).unwrap_err(),
            IngestError::EntryTooLarge { limit: 64 }
        ));
    }

    #[test]
    fn truncated_and_empty_feeds_are_errors() {
        let xml = feed(3);
        let cut = xml.len() - 30;
        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester.push(&xml.as_bytes()[..cut]).unwrap();
        assert!(matches!(
            ingester.finish().unwrap_err(),
            IngestError::Truncated
        ));

        let mut ingester = FeedIngester::new(IngestBudget::default());
        ingester
            .push(b"<?xml version=\"1.0\"?><nvd></nvd>")
            .unwrap();
        let error = ingester.finish().unwrap_err();
        assert!(matches!(error, IngestError::Empty));
        assert_eq!(error.http_status(), 400);
    }

    #[test]
    fn duplicate_cves_merge_and_malformed_entries_are_skipped() {
        let xml = r#"<nvd>
          <entry id="CVE-2008-1447">
            <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
            <vuln:summary>DNS cache poisoning</vuln:summary>
          </entry>
          <entry id="NOT-A-CVE"><vuln:summary>broken</vuln:summary></entry>
          <entry id="CVE-2008-1447">
            <vuln:product>cpe:/o:freebsd:freebsd:6.3</vuln:product>
            <vuln:summary>DNS cache poisoning (republished)</vuln:summary>
          </entry>
        </nvd>"#;
        let mut ingester = FeedIngester::new(IngestBudget::default());
        for piece in xml.as_bytes().chunks(11) {
            ingester.push(piece).unwrap();
        }
        let outcome = ingester.finish().unwrap();
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.parsed, 2, "both valid elements parsed");
        assert_eq!(outcome.entries, 1, "entries counts distinct rows");
        assert_eq!(outcome.dataset.store().vulnerability_count(), 1);
        let row = outcome
            .dataset
            .store()
            .get_by_cve(CveId::new(2008, 1447))
            .unwrap();
        assert_eq!(row.os_set.len(), 2, "republished OS sets are unioned");
    }

    #[test]
    fn malformed_xml_inside_an_entry_is_a_feed_error() {
        let mut ingester = FeedIngester::new(IngestBudget::default());
        let error = ingester
            .push(b"<nvd><entry id=unquoted>x</entry></nvd>")
            .unwrap_err();
        assert!(matches!(error, IngestError::Feed(_)));
        assert_eq!(error.http_status(), 400);
    }
}
