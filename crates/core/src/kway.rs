//! k-OS combination analysis (Section IV-B).
//!
//! The paper extends the pairwise study to larger groups: how many
//! vulnerabilities are shared by three, four, five … operating systems at
//! once. This module reports, for every group size `k`:
//!
//! * the number of distinct vulnerabilities affecting at least `k` of the
//!   11 studied OSes;
//! * the best (fewest shared vulnerabilities) and worst groups of size `k`
//!   under a chosen server profile.

use nvd_model::{OsDistribution, OsSet};
use tabular::TextTable;

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::{Period, ServerProfile, StudyDataset};
use crate::params::{FromParams, Params};
use crate::study::Study;

/// Configuration of the combination analysis: the server profile and the
/// largest group size to enumerate. The default matches the combined
/// report's Fat Server run up to `k = 9`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KWayConfig {
    /// The server profile groups are evaluated under.
    pub profile: ServerProfile,
    /// Largest group size (inclusive).
    pub max_k: usize,
}

impl Default for KWayConfig {
    fn default() -> Self {
        KWayConfig {
            profile: ServerProfile::FatServer,
            max_k: 9,
        }
    }
}

/// The per-`k` result of the combination analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWayRow {
    /// The group size.
    pub k: usize,
    /// Number of distinct vulnerabilities affecting at least `k` OSes.
    pub vulnerabilities_at_least_k: usize,
    /// The group of size `k` sharing the fewest vulnerabilities, with its
    /// count (`None` when `k` exceeds the number of studied OSes).
    pub best_group: Option<(OsSet, usize)>,
    /// The group of size `k` sharing the most vulnerabilities, with its
    /// count.
    pub worst_group: Option<(OsSet, usize)>,
}

/// The full combination analysis.
#[derive(Debug, Clone)]
pub struct KWayAnalysis {
    profile: ServerProfile,
    rows: Vec<KWayRow>,
}

impl KWayAnalysis {
    /// Group enumeration is exhaustive (there are at most `C(11, 5) = 462`
    /// groups per size), matching the paper's methodology. Every count is
    /// an O(1) lookup against the dataset's memoized [`CountIndex`], so
    /// the whole analysis costs `Σ C(11, k)` table reads instead of as
    /// many full store scans.
    ///
    /// [`CountIndex`]: crate::index::CountIndex
    fn compute_impl(study: &StudyDataset, profile: ServerProfile, max_k: usize) -> Self {
        let index = study.count_index();
        let mut rows = Vec::new();
        let universe = OsSet::all();
        for k in 2..=max_k {
            let at_least_k = index.rows_with_at_least(profile, k);
            let mut best: Option<(OsSet, usize)> = None;
            let mut worst: Option<(OsSet, usize)> = None;
            if k <= OsDistribution::COUNT {
                for group in universe.subsets_of_size(k) {
                    let count = index
                        .count_common_in(group, profile, Period::Whole)
                        .unwrap_or_else(|| study.count_common_in(group, profile, Period::Whole));
                    if best.map(|(_, c)| count < c).unwrap_or(true) {
                        best = Some((group, count));
                    }
                    if worst.map(|(_, c)| count > c).unwrap_or(true) {
                        worst = Some((group, count));
                    }
                }
            }
            rows.push(KWayRow {
                k,
                vulnerabilities_at_least_k: at_least_k,
                best_group: best,
                worst_group: worst,
            });
        }
        KWayAnalysis { profile, rows }
    }

    /// The profile the analysis was run under.
    pub fn profile(&self) -> ServerProfile {
        self.profile
    }

    /// The per-`k` rows, in increasing `k`.
    pub fn rows(&self) -> &[KWayRow] {
        &self.rows
    }

    /// The row for a specific `k`.
    pub fn row(&self, k: usize) -> Option<&KWayRow> {
        self.rows.iter().find(|row| row.k == k)
    }

    /// The largest group size for which a group with zero shared
    /// vulnerabilities exists, if any — i.e. how many diverse replicas can
    /// be deployed without any common vulnerability at all.
    pub fn largest_clean_group(&self) -> Option<usize> {
        self.rows
            .iter()
            .filter(|row| matches!(row.best_group, Some((_, 0))))
            .map(|row| row.k)
            .max()
    }

    /// Renders the k-OS combination analysis (Section IV-B).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new([
            "k",
            "vulns affecting >= k OSes",
            "best group",
            "best count",
            "worst group",
            "worst count",
        ]);
        for row in self.rows() {
            let (best_group, best_count) = row
                .best_group
                .map(|(set, count)| (set.to_string(), count.to_string()))
                .unwrap_or_default();
            let (worst_group, worst_count) = row
                .worst_group
                .map(|(set, count)| (set.to_string(), count.to_string()))
                .unwrap_or_default();
            table.push_row([
                row.k.to_string(),
                row.vulnerabilities_at_least_k.to_string(),
                best_group,
                best_count,
                worst_group,
                worst_count,
            ]);
        }
        table
    }
}

impl Analysis for KWayAnalysis {
    type Config = KWayConfig;
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::KWay
    }

    fn run(study: &Study, config: &KWayConfig) -> Result<Self, AnalysisError> {
        Ok(Self::compute_impl(
            study.dataset(),
            config.profile,
            config.max_k,
        ))
    }
}

/// The Section IV-B section of the combined report.
pub(crate) fn sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    Ok(vec![Section::table(
        "Section IV-B: k-OS combinations",
        study.get::<KWayAnalysis>()?.to_table(),
    )])
}

/// Parameterized Section IV-B sections: `profile=` and `max_k=` select the
/// enumeration.
pub(crate) fn sections_with(study: &Study, params: &Params) -> Result<Vec<Section>, AnalysisError> {
    if params.is_empty() {
        return sections(study);
    }
    let config = KWayConfig::from_params(params)?;
    Ok(vec![Section::table(
        "Section IV-B: k-OS combinations",
        study.get_with::<KWayAnalysis>(&config)?.to_table(),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::CalibratedGenerator;
    use nvd_model::CveId;

    fn calibrated_study() -> Study {
        let dataset = CalibratedGenerator::new(7).generate();
        Study::from_entries(dataset.entries())
    }

    fn kway(study: &Study, profile: ServerProfile, max_k: usize) -> KWayAnalysis {
        study
            .get_with::<KWayAnalysis>(&KWayConfig { profile, max_k })
            .unwrap()
    }

    #[test]
    fn at_least_k_counts_are_monotonically_decreasing() {
        let study = calibrated_study();
        let analysis = kway(&study, ServerProfile::FatServer, 11);
        let counts: Vec<usize> = analysis
            .rows()
            .iter()
            .map(|row| row.vulnerabilities_at_least_k)
            .collect();
        for window in counts.windows(2) {
            assert!(window[0] >= window[1], "counts must decrease: {counts:?}");
        }
        assert_eq!(analysis.profile(), ServerProfile::FatServer);
    }

    #[test]
    fn named_multi_os_vulnerabilities_show_up_in_the_tail() {
        let study = calibrated_study();
        let analysis = kway(&study, ServerProfile::FatServer, 11);
        // Exactly one vulnerability (CVE-2008-4609) affects nine OSes, and
        // two more (DNS and DHCP) affect six.
        assert_eq!(analysis.row(9).unwrap().vulnerabilities_at_least_k, 1);
        assert_eq!(analysis.row(7).unwrap().vulnerabilities_at_least_k, 1);
        assert_eq!(analysis.row(6).unwrap().vulnerabilities_at_least_k, 3);
        assert_eq!(analysis.row(10).unwrap().vulnerabilities_at_least_k, 0);
        // The nine-OS vulnerability is the TCP denial of service.
        let nine = study.store().get_by_cve(CveId::new(2008, 4609)).unwrap();
        assert_eq!(nine.os_set.len(), 9);
    }

    #[test]
    fn best_groups_have_no_more_shared_vulnerabilities_than_worst() {
        let study = calibrated_study();
        let analysis = kway(&study, ServerProfile::IsolatedThinServer, 5);
        for row in analysis.rows() {
            let (best_set, best) = row.best_group.unwrap();
            let (worst_set, worst) = row.worst_group.unwrap();
            assert!(best <= worst, "k={}", row.k);
            assert_eq!(best_set.len(), row.k);
            assert_eq!(worst_set.len(), row.k);
        }
    }

    #[test]
    fn worst_pairs_are_intra_family() {
        let study = calibrated_study();
        let analysis = kway(&study, ServerProfile::FatServer, 2);
        let (worst, _) = analysis.row(2).unwrap().worst_group.unwrap();
        // The worst pair is the Windows 2000 / Windows 2003 pair (253 shared
        // vulnerabilities in the paper).
        assert_eq!(
            worst,
            OsSet::pair(OsDistribution::Windows2000, OsDistribution::Windows2003)
        );
    }

    #[test]
    fn clean_groups_exist_under_the_isolated_profile() {
        let study = calibrated_study();
        let analysis = kway(&study, ServerProfile::IsolatedThinServer, 6);
        // The paper's Section IV-C finds four-OS groups with zero or one
        // common vulnerability; at least a clean pair must exist.
        let clean = analysis.largest_clean_group();
        assert!(clean.is_some());
        assert!(clean.unwrap() >= 2, "largest clean group {clean:?}");
    }

    #[test]
    fn k_larger_than_universe_has_no_groups() {
        let study = calibrated_study();
        let analysis = kway(&study, ServerProfile::FatServer, 12);
        let row = analysis.row(12).unwrap();
        assert!(row.best_group.is_none());
        assert!(row.worst_group.is_none());
        assert_eq!(row.vulnerabilities_at_least_k, 0);
    }

    #[test]
    fn rendered_table_names_best_and_worst_groups() {
        let study = calibrated_study();
        let rendered = study.get::<KWayAnalysis>().unwrap().to_table().render();
        assert!(rendered.contains("worst group"));
    }

    #[test]
    fn sections_with_parses_profile_and_max_k() {
        let study = calibrated_study();
        let params = Params::from_pairs([("profile", "isolated"), ("max_k", "3")]);
        let sections = sections_with(&study, &params).unwrap();
        match &sections[0].artifact {
            crate::analysis::Artifact::Table(table) => assert_eq!(table.row_count(), 2),
            other => panic!("expected a table, got {other:?}"),
        }
        assert!(sections_with(&study, &Params::from_pairs([("k", "3")])).is_err());
    }
}
