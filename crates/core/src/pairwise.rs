//! Pairwise common-vulnerability analysis (Tables III and IV, and the
//! summary findings of Section IV-E).

use nvd_model::{OsDistribution, OsPart, OsSet};
use tabular::TextTable;

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::classes::ClassDistribution;
use crate::dataset::{Period, ServerProfile, StudyDataset};
use crate::params::{FromParams, Params};
use crate::study::Study;

/// One row of the Table III reproduction: an OS pair with its per-OS totals
/// and common counts under the three profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairRow {
    /// First OS of the pair.
    pub a: OsDistribution,
    /// Second OS of the pair.
    pub b: OsDistribution,
    /// `v(A)` under (Fat, Thin, Isolated Thin).
    pub v_a: (usize, usize, usize),
    /// `v(B)` under (Fat, Thin, Isolated Thin).
    pub v_b: (usize, usize, usize),
    /// `v(AB)` under (Fat, Thin, Isolated Thin).
    pub v_ab: (usize, usize, usize),
}

impl PairRow {
    /// The common count under a specific profile.
    pub fn common(&self, profile: ServerProfile) -> usize {
        match profile {
            ServerProfile::FatServer => self.v_ab.0,
            ServerProfile::ThinServer => self.v_ab.1,
            ServerProfile::IsolatedThinServer => self.v_ab.2,
        }
    }
}

/// One row of the Table IV reproduction: the per-class breakdown of the
/// Isolated Thin Server common vulnerabilities of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartBreakdownRow {
    /// First OS of the pair.
    pub a: OsDistribution,
    /// Second OS of the pair.
    pub b: OsDistribution,
    /// Shared driver vulnerabilities.
    pub driver: usize,
    /// Shared kernel vulnerabilities.
    pub kernel: usize,
    /// Shared system-software vulnerabilities.
    pub system_software: usize,
}

impl PartBreakdownRow {
    /// Total shared Isolated Thin Server vulnerabilities of the pair.
    pub fn total(&self) -> usize {
        self.driver + self.kernel + self.system_software
    }
}

/// The Section IV-E summary statistics derived from the pairwise analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseSummary {
    /// Number of OS pairs analysed (55 for the 11 studied OSes).
    pub pair_count: usize,
    /// Average relative reduction of common vulnerabilities when going from
    /// the Fat Server to the Isolated Thin Server configuration (the paper
    /// reports 56% on average). Pairs with zero Fat Server common
    /// vulnerabilities are excluded from the average.
    pub average_reduction: f64,
    /// Aggregate reduction: one minus the ratio between the total number of
    /// Isolated Thin Server common vulnerabilities (summed over pairs) and
    /// the total number of Fat Server common vulnerabilities. Less sensitive
    /// than `average_reduction` to pairs with very few vulnerabilities.
    pub total_reduction: f64,
    /// Number of pairs with at most one common vulnerability in the
    /// Isolated Thin Server configuration (the paper reports more than 50%
    /// of the 55 pairs).
    pub pairs_with_at_most_one_common: usize,
    /// Number of pairs with zero common vulnerabilities in the Fat Server
    /// configuration.
    pub pairs_with_no_common_at_all: usize,
}

/// The full pairwise analysis.
#[derive(Debug, Clone)]
pub struct PairwiseAnalysis {
    rows: Vec<PairRow>,
    breakdown: Vec<PartBreakdownRow>,
}

/// Configuration of the pairwise analysis: which OSes to pair up. The
/// default covers the paper's 11 distributions; the three server profiles
/// are always computed side by side (they are the columns of Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseConfig {
    /// The OSes whose pairs are analysed.
    pub oses: Vec<OsDistribution>,
}

impl Default for PairwiseConfig {
    fn default() -> Self {
        PairwiseConfig {
            oses: OsDistribution::ALL.to_vec(),
        }
    }
}

impl PairwiseAnalysis {
    fn compute_impl(study: &StudyDataset, oses: &[OsDistribution]) -> Self {
        let totals: Vec<(OsDistribution, (usize, usize, usize))> = oses
            .iter()
            .map(|&os| (os, per_profile_totals(study, OsSet::singleton(os))))
            .collect();
        // Table IV in a single pass over the store: instead of one
        // row-returning scan per pair (55 scans for the full study), walk
        // the retained Isolated Thin Server rows once and credit every
        // configured pair inside each row's affected set. Position of each
        // OS in the configured order (None: not part of this run).
        let mut position = [None; OsDistribution::COUNT];
        for (i, os) in oses.iter().enumerate() {
            position[os.index()] = Some(i);
        }
        let n = oses.len();
        let mut part_counts = vec![[0usize; 3]; n * n];
        for row in study.store().rows() {
            if !study.retains(row, ServerProfile::IsolatedThinServer)
                || !Period::Whole.contains(row.year())
            {
                continue;
            }
            let part = match row.part {
                Some(OsPart::Driver) => 0,
                Some(OsPart::Kernel) => 1,
                Some(OsPart::SystemSoftware) => 2,
                _ => continue,
            };
            let members: Vec<usize> = row
                .os_set
                .iter()
                .filter_map(|os| position[os.index()])
                .collect();
            for (i, &pi) in members.iter().enumerate() {
                for &pj in members.iter().skip(i + 1) {
                    let (lo, hi) = (pi.min(pj), pi.max(pj));
                    part_counts[lo * n + hi][part] += 1;
                }
            }
        }
        let mut rows = Vec::new();
        let mut breakdown = Vec::new();
        for (i, &(a, v_a)) in totals.iter().enumerate() {
            for (j, &(b, v_b)) in totals.iter().enumerate().skip(i + 1) {
                let pair = OsSet::pair(a, b);
                let v_ab = per_profile_totals(study, pair);
                rows.push(PairRow {
                    a,
                    b,
                    v_a,
                    v_b,
                    v_ab,
                });

                let [driver, kernel, system_software] = part_counts[i * n + j];
                let row = PartBreakdownRow {
                    a,
                    b,
                    driver,
                    kernel,
                    system_software,
                };
                if row.total() > 0 {
                    breakdown.push(row);
                }
            }
        }
        // Table IV is sorted by descending total.
        breakdown.sort_by_key(|row| std::cmp::Reverse(row.total()));
        PairwiseAnalysis { rows, breakdown }
    }

    /// The Table III rows (one per pair, in the paper's OS order).
    pub fn rows(&self) -> &[PairRow] {
        &self.rows
    }

    /// The Table IV rows (pairs with a non-zero Isolated Thin Server total,
    /// sorted by descending total).
    pub fn part_breakdown(&self) -> &[PartBreakdownRow] {
        &self.breakdown
    }

    /// The row of a specific pair (in either order).
    pub fn pair(&self, a: OsDistribution, b: OsDistribution) -> Option<&PairRow> {
        self.rows
            .iter()
            .find(|row| (row.a == a && row.b == b) || (row.a == b && row.b == a))
    }

    /// The Section IV-E summary statistics.
    pub fn summary(&self) -> PairwiseSummary {
        let mut reduction_sum = 0.0;
        let mut reduction_count = 0usize;
        let mut at_most_one = 0usize;
        let mut none_at_all = 0usize;
        let mut fat_total = 0usize;
        let mut isolated_total = 0usize;
        for row in &self.rows {
            let fat = row.v_ab.0;
            let isolated = row.v_ab.2;
            fat_total += fat;
            isolated_total += isolated;
            if fat > 0 {
                reduction_sum += 1.0 - (isolated as f64 / fat as f64);
                reduction_count += 1;
            } else {
                none_at_all += 1;
            }
            if isolated <= 1 {
                at_most_one += 1;
            }
        }
        PairwiseSummary {
            pair_count: self.rows.len(),
            average_reduction: if reduction_count == 0 {
                0.0
            } else {
                reduction_sum / reduction_count as f64
            },
            total_reduction: if fat_total == 0 {
                0.0
            } else {
                1.0 - isolated_total as f64 / fat_total as f64
            },
            pairs_with_at_most_one_common: at_most_one,
            pairs_with_no_common_at_all: none_at_all,
        }
    }

    /// Renders Table III (pairwise common vulnerabilities under the three
    /// filters).
    pub fn to_table3(&self) -> TextTable {
        let mut table = TextTable::new([
            "Pair (A-B)",
            "v(A) all",
            "v(B) all",
            "v(AB) all",
            "v(A) noapp",
            "v(B) noapp",
            "v(AB) noapp",
            "v(A) its",
            "v(B) its",
            "v(AB) its",
        ]);
        for row in self.rows() {
            table.push_row([
                format!("{}-{}", row.a.short_name(), row.b.short_name()),
                row.v_a.0.to_string(),
                row.v_b.0.to_string(),
                row.v_ab.0.to_string(),
                row.v_a.1.to_string(),
                row.v_b.1.to_string(),
                row.v_ab.1.to_string(),
                row.v_a.2.to_string(),
                row.v_b.2.to_string(),
                row.v_ab.2.to_string(),
            ]);
        }
        table
    }

    /// Renders Table IV (common vulnerabilities on Isolated Thin Servers,
    /// broken down by OS part).
    pub fn to_table4(&self) -> TextTable {
        let mut table = TextTable::new(["OS Pairs", "Driver", "Kernel", "Sys. Soft.", "Total"]);
        for row in self.part_breakdown() {
            table.push_row([
                format!("{}-{}", row.a.short_name(), row.b.short_name()),
                row.driver.to_string(),
                row.kernel.to_string(),
                row.system_software.to_string(),
                row.total().to_string(),
            ]);
        }
        table
    }

    /// Renders the Section IV-E summary findings. `valid_count` is the
    /// number of distinct valid vulnerabilities of the study and
    /// `driver_share` the driver-class percentage of Table II (both come
    /// from sibling analyses — see [`summary_section`] for the composed
    /// variant).
    pub fn summary_table(&self, valid_count: usize, driver_share: f64) -> TextTable {
        let summary = self.summary();
        let mut table = TextTable::new(["Finding", "Value"]);
        table.push_row([
            "Distinct valid vulnerabilities".to_string(),
            valid_count.to_string(),
        ]);
        table.push_row([
            "OS pairs analysed".to_string(),
            summary.pair_count.to_string(),
        ]);
        table.push_row([
            "Average reduction Fat -> Isolated Thin (per pair)".to_string(),
            format!("{:.0}%", summary.average_reduction * 100.0),
        ]);
        table.push_row([
            "Total reduction Fat -> Isolated Thin (summed)".to_string(),
            format!("{:.0}%", summary.total_reduction * 100.0),
        ]);
        table.push_row([
            "Pairs with <= 1 common vuln (Isolated Thin)".to_string(),
            summary.pairs_with_at_most_one_common.to_string(),
        ]);
        table.push_row([
            "Pairs with no common vuln at all".to_string(),
            summary.pairs_with_no_common_at_all.to_string(),
        ]);
        table.push_row([
            "Driver share of all vulnerabilities".to_string(),
            format!("{driver_share:.1}%"),
        ]);
        table
    }
}

impl Analysis for PairwiseAnalysis {
    type Config = PairwiseConfig;
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Pairwise
    }

    fn run(study: &Study, config: &PairwiseConfig) -> Result<Self, AnalysisError> {
        Ok(Self::compute_impl(study.dataset(), &config.oses))
    }
}

/// The Table III and Table IV sections of one analysis value.
fn tables_of(analysis: &PairwiseAnalysis) -> Vec<Section> {
    vec![
        Section::table(
            "Table III: pairwise common vulnerabilities",
            analysis.to_table3(),
        ),
        Section::table(
            "Table IV: isolated thin server breakdown",
            analysis.to_table4(),
        ),
    ]
}

/// The Section IV-E summary of one analysis value, composed with the
/// memoized class distribution and the dataset's valid count.
fn summary_of(study: &Study, analysis: &PairwiseAnalysis) -> Result<Section, AnalysisError> {
    let classes = study.get::<ClassDistribution>()?;
    let table = analysis.summary_table(
        study.dataset().valid_count(),
        classes.class_percentage(OsPart::Driver),
    );
    Ok(Section::table("Section IV-E: summary", table))
}

/// The Table III and Table IV sections (the analysis's report
/// contribution).
pub(crate) fn table_sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    let analysis = study.get::<PairwiseAnalysis>()?;
    Ok(tables_of(&analysis))
}

/// The Section IV-E summary, composed from the memoized pairwise and class
/// analyses plus the dataset's valid count.
pub(crate) fn summary_section(study: &Study) -> Result<Section, AnalysisError> {
    let pairwise = study.get::<PairwiseAnalysis>()?;
    summary_of(study, &pairwise)
}

/// Every pairwise deliverable: Tables III and IV plus the summary.
pub(crate) fn sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    let mut sections = table_sections(study)?;
    sections.push(summary_section(study)?);
    Ok(sections)
}

/// Parameterized pairwise sections: `oses=a,b,…` restricts the pairs.
pub(crate) fn sections_with(study: &Study, params: &Params) -> Result<Vec<Section>, AnalysisError> {
    if params.is_empty() {
        return sections(study);
    }
    let config = PairwiseConfig::from_params(params)?;
    let analysis = study.get_with::<PairwiseAnalysis>(&config)?;
    let mut sections = tables_of(&analysis);
    sections.push(summary_of(study, &analysis)?);
    Ok(sections)
}

fn per_profile_totals(study: &StudyDataset, group: OsSet) -> (usize, usize, usize) {
    (
        study.count_common(group, ServerProfile::FatServer),
        study.count_common(group, ServerProfile::ThinServer),
        study.count_common(group, ServerProfile::IsolatedThinServer),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::CalibratedGenerator;
    use nvd_model::{CveId, CvssV2, Date, OsPart, VulnerabilityEntry};

    fn study_from_paper_calibration() -> Study {
        let dataset = CalibratedGenerator::new(3).generate();
        Study::from_entries(dataset.entries())
    }

    #[test]
    fn produces_55_pairs_for_the_full_study() {
        let study = study_from_paper_calibration();
        let analysis = study.get::<PairwiseAnalysis>().unwrap();
        assert_eq!(analysis.rows().len(), 55);
    }

    #[test]
    fn filters_are_monotone_for_every_pair() {
        let study = study_from_paper_calibration();
        let analysis = study.get::<PairwiseAnalysis>().unwrap();
        for row in analysis.rows() {
            assert!(row.v_ab.0 >= row.v_ab.1);
            assert!(row.v_ab.1 >= row.v_ab.2);
            assert!(
                row.v_a.0 >= row.v_ab.0,
                "common cannot exceed per-OS totals"
            );
            assert!(row.v_b.0 >= row.v_ab.0);
            assert_eq!(row.common(ServerProfile::FatServer), row.v_ab.0);
        }
    }

    #[test]
    fn reproduces_the_calibrated_pair_counts() {
        let study = study_from_paper_calibration();
        let analysis = study.get::<PairwiseAnalysis>().unwrap();
        // Spot-check a few pairs against the paper's Table III (the
        // generator can exceed them by at most the named-vulnerability
        // slack of 2).
        let cases = [
            (
                OsDistribution::OpenBsd,
                OsDistribution::NetBsd,
                (40, 32, 16),
            ),
            (OsDistribution::Debian, OsDistribution::RedHat, (61, 26, 11)),
            (
                OsDistribution::Windows2000,
                OsDistribution::Windows2003,
                (253, 116, 81),
            ),
            (OsDistribution::NetBsd, OsDistribution::Ubuntu, (0, 0, 0)),
        ];
        for (a, b, (all, no_app, its)) in cases {
            let row = analysis.pair(a, b).unwrap();
            assert!(
                row.v_ab.0 >= all && row.v_ab.0 <= all + 2,
                "{a}-{b} all {:?}",
                row.v_ab
            );
            assert!(
                row.v_ab.1 >= no_app && row.v_ab.1 <= no_app + 2,
                "{a}-{b} noapp"
            );
            assert!(row.v_ab.2 >= its && row.v_ab.2 <= its + 2, "{a}-{b} its");
        }
    }

    #[test]
    fn part_breakdown_totals_match_isolated_counts() {
        let study = study_from_paper_calibration();
        let analysis = study.get::<PairwiseAnalysis>().unwrap();
        for row in analysis.part_breakdown() {
            let pair = analysis.pair(row.a, row.b).unwrap();
            assert_eq!(row.total(), pair.v_ab.2, "{}-{}", row.a, row.b);
            assert!(row.total() > 0);
        }
        // Sorted by descending total, and the largest pair is Win2000-Win2003.
        let first = &analysis.part_breakdown()[0];
        assert_eq!(
            OsSet::pair(first.a, first.b),
            OsSet::pair(OsDistribution::Windows2000, OsDistribution::Windows2003)
        );
    }

    #[test]
    fn summary_reproduces_the_papers_findings() {
        let study = study_from_paper_calibration();
        let summary = study.get::<PairwiseAnalysis>().unwrap().summary();
        assert_eq!(summary.pair_count, 55);
        // Finding 1: ~56% average reduction from Fat to Isolated Thin.
        assert!(
            (0.40..=0.75).contains(&summary.average_reduction),
            "average reduction {:.2} outside the expected band",
            summary.average_reduction
        );
        assert!(
            (0.45..=0.75).contains(&summary.total_reduction),
            "total reduction {:.2} outside the expected band",
            summary.total_reduction
        );
        // Finding 2: more than 50% of the pairs have at most one common
        // vulnerability after filtering.
        assert!(
            summary.pairs_with_at_most_one_common * 2 > summary.pair_count,
            "{} of {} pairs",
            summary.pairs_with_at_most_one_common,
            summary.pair_count
        );
    }

    #[test]
    fn compute_for_a_subset_only_produces_those_pairs() {
        let study = study_from_paper_calibration();
        let analysis = study
            .get_with::<PairwiseAnalysis>(&PairwiseConfig {
                oses: vec![
                    OsDistribution::Debian,
                    OsDistribution::RedHat,
                    OsDistribution::Ubuntu,
                ],
            })
            .unwrap();
        assert_eq!(analysis.rows().len(), 3);
        assert!(analysis
            .pair(OsDistribution::Debian, OsDistribution::Windows2000)
            .is_none());
    }

    #[test]
    fn empty_dataset_yields_zero_summary() {
        let study = Study::new(StudyDataset::new());
        let analysis = study.get::<PairwiseAnalysis>().unwrap();
        let summary = analysis.summary();
        assert_eq!(summary.average_reduction, 0.0);
        assert_eq!(summary.total_reduction, 0.0);
        assert_eq!(summary.pairs_with_no_common_at_all, 55);
    }

    #[test]
    fn handmade_dataset_matches_hand_computed_counts() {
        use OsDistribution::*;
        let entries = vec![
            VulnerabilityEntry::builder(CveId::new(2005, 1))
                .published(Date::new(2005, 1, 1).unwrap())
                .part(OsPart::Kernel)
                .cvss(CvssV2::typical_remote())
                .affects_os(OpenBsd)
                .affects_os(FreeBsd)
                .build()
                .unwrap(),
            VulnerabilityEntry::builder(CveId::new(2005, 2))
                .published(Date::new(2005, 1, 2).unwrap())
                .part(OsPart::Application)
                .cvss(CvssV2::typical_remote())
                .affects_os(OpenBsd)
                .affects_os(FreeBsd)
                .build()
                .unwrap(),
        ];
        let study = Study::from_entries(&entries);
        let analysis = study
            .get_with::<PairwiseAnalysis>(&PairwiseConfig {
                oses: vec![OpenBsd, FreeBsd],
            })
            .unwrap();
        let row = analysis.pair(OpenBsd, FreeBsd).unwrap();
        assert_eq!(row.v_ab, (2, 1, 1));
        let breakdown = analysis.part_breakdown();
        assert_eq!(breakdown.len(), 1);
        assert_eq!(breakdown[0].kernel, 1);
        assert_eq!(breakdown[0].driver, 0);
    }
}
