//! History / observed period analysis (Table V).
//!
//! The paper splits the data set into a *history* period (1994–2005, two
//! thirds of the valid vulnerabilities) used to select replica groups, and
//! an *observed* period (2006–2010) used to validate the selection. Table V
//! reports, for every pair of the eight OSes with enough history data, the
//! common Isolated Thin Server vulnerabilities in each period.

use nvd_model::{OsDistribution, OsSet};
use tabular::TextTable;

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::{Period, ServerProfile, StudyDataset};
use crate::params::{FromParams, Params};
use crate::study::Study;

/// The eight OSes of Table V (Ubuntu, OpenSolaris and Windows 2008 are
/// excluded for lack of meaningful history-period data).
pub const TABLE5_OSES: [OsDistribution; 8] = [
    OsDistribution::OpenBsd,
    OsDistribution::NetBsd,
    OsDistribution::FreeBsd,
    OsDistribution::Solaris,
    OsDistribution::Debian,
    OsDistribution::RedHat,
    OsDistribution::Windows2000,
    OsDistribution::Windows2003,
];

/// The Table V reproduction: a symmetric matrix of per-pair counts for the
/// history and observed periods.
#[derive(Debug, Clone)]
pub struct SplitMatrix {
    oses: Vec<OsDistribution>,
    profile: ServerProfile,
    /// `history[i][j]` = common vulnerabilities of (oses[i], oses[j]) in the
    /// history period (diagonal entries hold the per-OS totals).
    history: Vec<Vec<usize>>,
    observed: Vec<Vec<usize>>,
}

/// Configuration of the history/observed split: which OSes the matrix
/// covers and under which profile. The default reproduces Table V.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitConfig {
    /// The OSes of the matrix, in row/column order.
    pub oses: Vec<OsDistribution>,
    /// The server profile counts are taken under.
    pub profile: ServerProfile,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            oses: TABLE5_OSES.to_vec(),
            profile: ServerProfile::IsolatedThinServer,
        }
    }
}

impl SplitMatrix {
    fn compute_impl(study: &StudyDataset, oses: &[OsDistribution], profile: ServerProfile) -> Self {
        // Every cell is an O(1) lookup against the memoized count index
        // (with a scan fallback for coarse indexes).
        let index = study.count_index();
        let count = |group: OsSet, period: Period| {
            index
                .count_common_in(group, profile, period)
                .unwrap_or_else(|| study.count_common_in(group, profile, period))
        };
        let n = oses.len();
        let mut history = vec![vec![0usize; n]; n];
        let mut observed = vec![vec![0usize; n]; n];
        for (i, &a) in oses.iter().enumerate() {
            for (j, &b) in oses.iter().enumerate() {
                let group = if i == j {
                    OsSet::singleton(a)
                } else {
                    OsSet::pair(a, b)
                };
                history[i][j] = count(group, Period::History);
                observed[i][j] = count(group, Period::Observed);
            }
        }
        SplitMatrix {
            oses: oses.to_vec(),
            profile,
            history,
            observed,
        }
    }

    /// The OSes covered by the matrix, in row/column order.
    pub fn oses(&self) -> &[OsDistribution] {
        &self.oses
    }

    /// The profile the matrix was computed under.
    pub fn profile(&self) -> ServerProfile {
        self.profile
    }

    fn index_of(&self, os: OsDistribution) -> Option<usize> {
        self.oses.iter().position(|o| *o == os)
    }

    /// Common vulnerabilities of a pair (or per-OS total when `a == b`) in a
    /// period. Returns `None` when an OS is not part of the matrix.
    pub fn count(&self, a: OsDistribution, b: OsDistribution, period: Period) -> Option<usize> {
        let i = self.index_of(a)?;
        let j = self.index_of(b)?;
        match period {
            Period::History => Some(self.history[i][j]),
            Period::Observed => Some(self.observed[i][j]),
            Period::Whole => Some(self.history[i][j] + self.observed[i][j]),
        }
    }

    /// The pair with the fewest history-period common vulnerabilities
    /// (excluding the diagonal); ties are broken by the observed-period
    /// count.
    pub fn most_diverse_pair(&self) -> Option<(OsDistribution, OsDistribution, usize)> {
        let mut best: Option<(OsDistribution, OsDistribution, usize, usize)> = None;
        for (i, &a) in self.oses.iter().enumerate() {
            for (j, &b) in self.oses.iter().enumerate().skip(i + 1) {
                let history = self.history[i][j];
                let observed = self.observed[i][j];
                let better = match best {
                    None => true,
                    Some((_, _, h, o)) => history < h || (history == h && observed < o),
                };
                if better {
                    best = Some((a, b, history, observed));
                }
            }
        }
        best.map(|(a, b, h, _)| (a, b, h))
    }

    /// Renders Table V (history vs observed common vulnerabilities): history
    /// counts above the diagonal, observed counts below, `###` on the
    /// diagonal.
    pub fn to_table(&self) -> TextTable {
        let oses = self.oses();
        let mut header: Vec<String> = vec!["".to_string()];
        header.extend(oses.iter().map(|os| os.short_name().to_string()));
        let mut table = TextTable::new(header);
        for (i, &row_os) in oses.iter().enumerate() {
            let mut cells = vec![row_os.short_name().to_string()];
            for (j, &col_os) in oses.iter().enumerate() {
                let cell = if i == j {
                    "###".to_string()
                } else if j > i {
                    self.count(row_os, col_os, Period::History)
                        .expect("matrix covers its own OSes")
                        .to_string()
                } else {
                    self.count(row_os, col_os, Period::Observed)
                        .expect("matrix covers its own OSes")
                        .to_string()
                };
                cells.push(cell);
            }
            table.push_row(cells);
        }
        table
    }
}

impl Analysis for SplitMatrix {
    type Config = SplitConfig;
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Split
    }

    fn run(study: &Study, config: &SplitConfig) -> Result<Self, AnalysisError> {
        Ok(Self::compute_impl(
            study.dataset(),
            &config.oses,
            config.profile,
        ))
    }
}

/// The Table V section of the combined report.
pub(crate) fn sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    Ok(vec![Section::table(
        "Table V: history vs observed",
        study.get::<SplitMatrix>()?.to_table(),
    )])
}

/// Parameterized Table V sections: `oses=a,b,…` and `profile=` select the
/// matrix.
pub(crate) fn sections_with(study: &Study, params: &Params) -> Result<Vec<Section>, AnalysisError> {
    if params.is_empty() {
        return sections(study);
    }
    let config = SplitConfig::from_params(params)?;
    Ok(vec![Section::table(
        "Table V: history vs observed",
        study.get_with::<SplitMatrix>(&config)?.to_table(),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::calibration::table5_cell;
    use datagen::CalibratedGenerator;

    fn calibrated_study() -> Study {
        let dataset = CalibratedGenerator::new(8).generate();
        Study::from_entries(dataset.entries())
    }

    #[test]
    fn matrix_reproduces_table5_within_the_calibration_slack() {
        let study = calibrated_study();
        let matrix = study.get::<SplitMatrix>().unwrap();
        assert_eq!(matrix.oses().len(), 8);
        assert_eq!(matrix.profile(), ServerProfile::IsolatedThinServer);
        for (i, &a) in TABLE5_OSES.iter().enumerate() {
            for &b in TABLE5_OSES.iter().skip(i + 1) {
                let expected = table5_cell(a, b).unwrap();
                let history = matrix.count(a, b, Period::History).unwrap();
                let observed = matrix.count(a, b, Period::Observed).unwrap();
                assert!(
                    history.abs_diff(expected.history as usize) <= 3,
                    "{a}-{b} history: measured {history}, paper {}",
                    expected.history
                );
                assert!(
                    observed.abs_diff(expected.observed as usize) <= 3,
                    "{a}-{b} observed: measured {observed}, paper {}",
                    expected.observed
                );
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let study = calibrated_study();
        let matrix = study.get::<SplitMatrix>().unwrap();
        for &a in matrix.oses() {
            for &b in matrix.oses() {
                for period in [Period::History, Period::Observed, Period::Whole] {
                    assert_eq!(
                        matrix.count(a, b, period),
                        matrix.count(b, a, period),
                        "{a}-{b} {period:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn whole_period_is_the_sum_of_both_halves() {
        let study = calibrated_study();
        let matrix = study.get::<SplitMatrix>().unwrap();
        let a = OsDistribution::Windows2000;
        let b = OsDistribution::Windows2003;
        let whole = matrix.count(a, b, Period::Whole).unwrap();
        let history = matrix.count(a, b, Period::History).unwrap();
        let observed = matrix.count(a, b, Period::Observed).unwrap();
        assert_eq!(whole, history + observed);
    }

    #[test]
    fn diagonal_holds_per_os_totals() {
        let study = calibrated_study();
        let matrix = study.get::<SplitMatrix>().unwrap();
        let debian_history = matrix
            .count(
                OsDistribution::Debian,
                OsDistribution::Debian,
                Period::History,
            )
            .unwrap();
        let debian_observed = matrix
            .count(
                OsDistribution::Debian,
                OsDistribution::Debian,
                Period::Observed,
            )
            .unwrap();
        // The paper: Debian had 16 remotely exploitable base-system
        // vulnerabilities in the history period and 9 in the observed one.
        assert!(debian_history.abs_diff(16) <= 3, "history {debian_history}");
        assert!(
            debian_observed.abs_diff(9) <= 3,
            "observed {debian_observed}"
        );
    }

    #[test]
    fn unknown_os_returns_none() {
        let study = calibrated_study();
        let matrix = study.get::<SplitMatrix>().unwrap();
        assert_eq!(
            matrix.count(
                OsDistribution::Ubuntu,
                OsDistribution::Debian,
                Period::History
            ),
            None
        );
    }

    #[test]
    fn most_diverse_pair_has_a_small_history_count() {
        let study = calibrated_study();
        let matrix = study.get::<SplitMatrix>().unwrap();
        let (a, b, history) = matrix.most_diverse_pair().unwrap();
        assert!(
            history <= 1,
            "most diverse pair {a}-{b} has {history} common"
        );
        assert_ne!(a, b);
    }

    #[test]
    fn rendered_table_marks_the_diagonal() {
        let study = calibrated_study();
        let table = study.get::<SplitMatrix>().unwrap().to_table();
        assert_eq!(table.row_count(), TABLE5_OSES.len());
        assert_eq!(table.render().matches("###").count(), TABLE5_OSES.len());
    }

    #[test]
    fn sections_with_parses_oses_and_profile() {
        let study = calibrated_study();
        let params = Params::from_pairs([("oses", "debian,redhat"), ("profile", "fat")]);
        let sections = sections_with(&study, &params).unwrap();
        assert_eq!(sections.len(), 1);
        match &sections[0].artifact {
            crate::analysis::Artifact::Table(table) => assert_eq!(table.row_count(), 2),
            other => panic!("expected a table, got {other:?}"),
        }
        assert!(sections_with(&study, &Params::from_pairs([("nope", "1")])).is_err());
    }
}
