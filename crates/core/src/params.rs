//! Key/value configuration parsing: the bridge between untyped parameter
//! lists (HTTP query strings, CLI flags) and the typed [`Analysis::Config`]
//! values.
//!
//! Every analysis configuration implements [`FromParams`]: it names the
//! keys it accepts ([`FromParams::KEYS`]) and builds itself from a
//! [`Params`] list, filling unset keys from its `Default`. Unknown keys and
//! unparseable values are hard errors ([`AnalysisError::UnknownParam`] /
//! [`AnalysisError::InvalidParam`]) so a typo in a query string can never
//! silently fall back to the default configuration.
//!
//! [`Analysis::Config`]: crate::analysis::Analysis::Config
//!
//! # Example
//!
//! ```
//! use osdiv_core::{FromParams, Params, TemporalConfig};
//!
//! let params = Params::from_pairs([("first_year", "2000"), ("last_year", "2005")]);
//! let config = TemporalConfig::from_params(&params).unwrap();
//! assert_eq!((config.first_year, config.last_year), (2000, 2005));
//!
//! // Unknown keys are rejected, not ignored.
//! let typo = Params::from_pairs([("first_yaer", "2000")]);
//! assert!(TemporalConfig::from_params(&typo).is_err());
//! ```

use std::fmt::Display;
use std::str::FromStr;

use nvd_model::OsDistribution;

use crate::analysis::AnalysisError;
use crate::kway::KWayConfig;
use crate::pairwise::PairwiseConfig;
use crate::releases::ReleaseConfig;
use crate::selection::SelectionConfig;
use crate::split::SplitConfig;
use crate::temporal::TemporalConfig;

/// An ordered key/value parameter list (e.g. a parsed HTTP query string).
///
/// Lookups return the **last** value of a repeated key, matching the common
/// query-string convention. [`Params::canonical`] produces a stable,
/// sorted `key=value&…` form usable as a cache key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    pairs: Vec<(String, String)>,
}

impl Params {
    /// An empty parameter list (selects every default configuration).
    pub fn new() -> Self {
        Params::default()
    }

    /// Builds a list from `(key, value)` pairs, preserving order.
    pub fn from_pairs<K, V>(pairs: impl IntoIterator<Item = (K, V)>) -> Self
    where
        K: Into<String>,
        V: Into<String>,
    {
        Params {
            pairs: pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// Appends one pair.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.pairs.push((key.into(), value.into()));
    }

    /// Whether the list holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs (repeated keys count every occurrence).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// The pairs in insertion order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// The last value of a key, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Removes every occurrence of a key, returning the last (effective)
    /// value. Used by callers that peel routing-level keys (`format`,
    /// `dataset`) off a query string before handing the rest to an
    /// analysis configuration.
    pub fn take(&mut self, key: &str) -> Option<String> {
        let mut taken = None;
        self.pairs.retain(|(k, v)| {
            if k == key {
                taken = Some(v.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    /// A stable `key=value&…` form of the **effective** configuration: the
    /// last value of every key (matching [`Params::get`]), sorted by key.
    /// Two lists selecting the same configuration canonicalize
    /// identically — and two selecting different ones never do — so the
    /// result is usable as a cache key.
    pub fn canonical(&self) -> String {
        let mut effective: Vec<(&str, &str)> = Vec::new();
        for (key, value) in &self.pairs {
            match effective.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = value,
                None => effective.push((key, value)),
            }
        }
        effective.sort();
        let encoded: Vec<String> = effective.iter().map(|(k, v)| format!("{k}={v}")).collect();
        encoded.join("&")
    }

    /// Rejects any key outside `keys` with [`AnalysisError::UnknownParam`].
    pub fn check_known(&self, keys: &'static [&'static str]) -> Result<(), AnalysisError> {
        for (key, _) in &self.pairs {
            if !keys.contains(&key.as_str()) {
                return Err(AnalysisError::UnknownParam {
                    name: key.clone(),
                    expected: keys,
                });
            }
        }
        Ok(())
    }

    /// Parses the value of `key` (when present) with its `FromStr`.
    pub fn parse<T>(&self, key: &str) -> Result<Option<T>, AnalysisError>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e: T::Err| AnalysisError::InvalidParam {
                    name: key.to_string(),
                    value: raw.to_string(),
                    reason: e.to_string(),
                }),
        }
    }

    /// Parses a comma-separated list value (when present). An empty value
    /// or empty list items are invalid.
    pub fn parse_list<T>(&self, key: &str) -> Result<Option<Vec<T>>, AnalysisError>
    where
        T: FromStr,
        T::Err: Display,
    {
        let Some(raw) = self.get(key) else {
            return Ok(None);
        };
        let invalid = |reason: String| AnalysisError::InvalidParam {
            name: key.to_string(),
            value: raw.to_string(),
            reason,
        };
        let mut items = Vec::new();
        for piece in raw.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                return Err(invalid("empty list item".to_string()));
            }
            items.push(piece.parse().map_err(|e: T::Err| invalid(e.to_string()))?);
        }
        Ok(Some(items))
    }
}

/// Builds a typed configuration from an untyped parameter list.
///
/// Implementations fill unset keys from the configuration's `Default` (the
/// paper's setup) and reject unknown keys, so `from_params(&Params::new())`
/// always equals `Default::default()`.
pub trait FromParams: Sized {
    /// The keys this configuration accepts.
    const KEYS: &'static [&'static str];

    /// Parses the configuration, defaulting unset keys.
    fn from_params(params: &Params) -> Result<Self, AnalysisError>;
}

impl FromParams for () {
    const KEYS: &'static [&'static str] = &[];

    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)
    }
}

impl FromParams for TemporalConfig {
    const KEYS: &'static [&'static str] = &["first_year", "last_year"];

    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)?;
        let defaults = TemporalConfig::default();
        Ok(TemporalConfig {
            first_year: params.parse("first_year")?.unwrap_or(defaults.first_year),
            last_year: params.parse("last_year")?.unwrap_or(defaults.last_year),
        })
    }
}

impl FromParams for PairwiseConfig {
    const KEYS: &'static [&'static str] = &["oses"];

    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)?;
        let defaults = PairwiseConfig::default();
        Ok(PairwiseConfig {
            oses: params.parse_list("oses")?.unwrap_or(defaults.oses),
        })
    }
}

impl FromParams for SplitConfig {
    const KEYS: &'static [&'static str] = &["oses", "profile"];

    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)?;
        let defaults = SplitConfig::default();
        Ok(SplitConfig {
            oses: params.parse_list("oses")?.unwrap_or(defaults.oses),
            profile: params.parse("profile")?.unwrap_or(defaults.profile),
        })
    }
}

impl FromParams for ReleaseConfig {
    const KEYS: &'static [&'static str] = &["oses", "profile"];

    /// `oses` selects distributions whose **studied releases** are paired
    /// up (e.g. `oses=debian,redhat`); distributions without per-release
    /// data contribute no rows.
    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)?;
        let defaults = ReleaseConfig::default();
        let releases = match params.parse_list::<OsDistribution>("oses")? {
            None => defaults.releases,
            Some(distributions) => distributions
                .iter()
                .flat_map(|os| os.releases().iter().copied())
                .collect(),
        };
        Ok(ReleaseConfig {
            releases,
            profile: params.parse("profile")?.unwrap_or(defaults.profile),
        })
    }
}

/// The largest accepted `max_k` / `group_size` / `top`. The paper studies
/// 11 OSes, so anything past the OS count only appends empty rows — and
/// these parameters reach the analysis straight from unauthenticated HTTP
/// query strings, where an unbounded loop count would be a one-request
/// denial of service.
const MAX_GROUP_PARAM: usize = 32;

fn bounded(params: &Params, key: &str, default: usize) -> Result<usize, AnalysisError> {
    let value = params.parse(key)?.unwrap_or(default);
    if value > MAX_GROUP_PARAM {
        return Err(AnalysisError::InvalidParam {
            name: key.to_string(),
            value: value.to_string(),
            reason: format!("must be at most {MAX_GROUP_PARAM}"),
        });
    }
    Ok(value)
}

impl FromParams for KWayConfig {
    const KEYS: &'static [&'static str] = &["profile", "max_k"];

    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)?;
        let defaults = KWayConfig::default();
        Ok(KWayConfig {
            profile: params.parse("profile")?.unwrap_or(defaults.profile),
            max_k: bounded(params, "max_k", defaults.max_k)?,
        })
    }
}

impl FromParams for SelectionConfig {
    const KEYS: &'static [&'static str] = &["profile", "criterion", "oses", "group_size", "top"];

    fn from_params(params: &Params) -> Result<Self, AnalysisError> {
        params.check_known(Self::KEYS)?;
        let defaults = SelectionConfig::default();
        Ok(SelectionConfig {
            profile: params.parse("profile")?.unwrap_or(defaults.profile),
            criterion: params.parse("criterion")?.unwrap_or(defaults.criterion),
            candidates: params.parse_list("oses")?.unwrap_or(defaults.candidates),
            group_size: bounded(params, "group_size", defaults.group_size)?,
            top: bounded(params, "top", defaults.top)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ServerProfile;
    use crate::selection::SelectionCriterion;

    #[test]
    fn empty_params_reproduce_every_default() {
        let empty = Params::new();
        assert_eq!(
            TemporalConfig::from_params(&empty).unwrap(),
            TemporalConfig::default()
        );
        assert_eq!(
            PairwiseConfig::from_params(&empty).unwrap(),
            PairwiseConfig::default()
        );
        assert_eq!(
            SplitConfig::from_params(&empty).unwrap(),
            SplitConfig::default()
        );
        assert_eq!(
            ReleaseConfig::from_params(&empty).unwrap(),
            ReleaseConfig::default()
        );
        assert_eq!(
            KWayConfig::from_params(&empty).unwrap(),
            KWayConfig::default()
        );
        assert_eq!(
            SelectionConfig::from_params(&empty).unwrap(),
            SelectionConfig::default()
        );
        <() as FromParams>::from_params(&empty).unwrap();
    }

    #[test]
    fn unknown_keys_are_rejected_with_the_accepted_set() {
        let params = Params::from_pairs([("first_yaer", "2000")]);
        let err = TemporalConfig::from_params(&params).unwrap_err();
        assert_eq!(
            err,
            AnalysisError::UnknownParam {
                name: "first_yaer".to_string(),
                expected: TemporalConfig::KEYS,
            }
        );
        assert!(err.to_string().contains("first_year"));
        // The unit config rejects everything.
        let any = Params::from_pairs([("profile", "fat")]);
        assert!(<() as FromParams>::from_params(&any).is_err());
    }

    #[test]
    fn invalid_values_name_the_offending_key() {
        let params = Params::from_pairs([("first_year", "twothousand")]);
        match TemporalConfig::from_params(&params).unwrap_err() {
            AnalysisError::InvalidParam { name, value, .. } => {
                assert_eq!(name, "first_year");
                assert_eq!(value, "twothousand");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let params = Params::from_pairs([("oses", "debian,,redhat")]);
        assert!(PairwiseConfig::from_params(&params).is_err());
        let params = Params::from_pairs([("oses", "debian,atari")]);
        assert!(PairwiseConfig::from_params(&params).is_err());
    }

    #[test]
    fn typed_values_parse_through_their_fromstr() {
        let params = Params::from_pairs([("oses", "debian, redhat ,openbsd"), ("profile", "fat")]);
        let config = SplitConfig::from_params(&params).unwrap();
        assert_eq!(
            config.oses,
            vec![
                OsDistribution::Debian,
                OsDistribution::RedHat,
                OsDistribution::OpenBsd
            ]
        );
        assert_eq!(config.profile, ServerProfile::FatServer);

        let params = Params::from_pairs([("max_k", "4"), ("profile", "isolated")]);
        let config = KWayConfig::from_params(&params).unwrap();
        assert_eq!(config.max_k, 4);
        assert_eq!(config.profile, ServerProfile::IsolatedThinServer);

        let params = Params::from_pairs([("criterion", "pairwise-sum"), ("top", "3")]);
        let config = SelectionConfig::from_params(&params).unwrap();
        assert_eq!(config.criterion, SelectionCriterion::PairwiseSum);
        assert_eq!(config.top, 3);

        let params = Params::from_pairs([("oses", "debian")]);
        let config = ReleaseConfig::from_params(&params).unwrap();
        assert!(!config.releases.is_empty());
        assert!(config
            .releases
            .iter()
            .all(|r| r.distribution() == OsDistribution::Debian));
    }

    #[test]
    fn repeated_keys_take_the_last_value_and_canonicalize_stably() {
        let mut params = Params::new();
        params.insert("last_year", "2008");
        params.insert("first_year", "2000");
        params.insert("last_year", "2005");
        assert_eq!(params.get("last_year"), Some("2005"));
        assert_eq!(params.len(), 3);
        // The canonical form is the *effective* configuration, so it must
        // only keep the winning (last) value of a repeated key — anything
        // else would collide different configurations in response caches.
        assert_eq!(params.canonical(), "first_year=2000&last_year=2005");
        let mut flipped = Params::new();
        flipped.insert("last_year", "2005");
        flipped.insert("first_year", "2000");
        flipped.insert("last_year", "2008");
        assert_eq!(flipped.get("last_year"), Some("2008"));
        assert_ne!(flipped.canonical(), params.canonical());
        assert_eq!(Params::new().canonical(), "");
    }

    #[test]
    fn take_removes_every_occurrence_and_returns_the_effective_value() {
        let mut params = Params::from_pairs([
            ("format", "csv"),
            ("max_k", "4"),
            ("format", "json"),
            ("dataset", "alt"),
        ]);
        assert_eq!(params.take("format").as_deref(), Some("json"));
        assert_eq!(params.get("format"), None);
        assert_eq!(params.take("dataset").as_deref(), Some("alt"));
        assert_eq!(params.take("missing"), None);
        assert_eq!(params.canonical(), "max_k=4");
    }

    #[test]
    fn oversized_group_parameters_are_rejected() {
        let params = Params::from_pairs([("max_k", "18446744073709551615")]);
        assert!(KWayConfig::from_params(&params).is_err());
        let params = Params::from_pairs([("max_k", "4096")]);
        assert!(KWayConfig::from_params(&params).is_err());
        let params = Params::from_pairs([("group_size", "4096")]);
        assert!(SelectionConfig::from_params(&params).is_err());
        let params = Params::from_pairs([("top", "4096")]);
        assert!(SelectionConfig::from_params(&params).is_err());
        let params = Params::from_pairs([("max_k", "11")]);
        assert_eq!(KWayConfig::from_params(&params).unwrap().max_k, 11);
    }
}
