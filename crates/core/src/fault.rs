//! Deterministic fault injection: named failpoint sites compiled to a
//! no-op branch when disabled.
//!
//! A *failpoint* is a named site in a fault-handling code path (a snapshot
//! write, a journal append, an ingest parse boundary) that can be armed to
//! fail deterministically. Production code asks [`failpoint`] whether the
//! site should fire and maps a `true` into its own typed error — the
//! registry never panics, never sleeps and never fails on its own.
//!
//! # Cost when disabled
//!
//! The fast path is a single relaxed load of one process-global
//! [`AtomicBool`]: until something arms a trigger the registry holds no
//! state, takes no lock and touches no site name. Arming any site flips
//! the flag; [`clear_all`] flips it back.
//!
//! # Triggers
//!
//! | Spec | Meaning |
//! |---|---|
//! | `nth:N` | fire on exactly the Nth evaluation of the site (1-based) |
//! | `every:K` | fire on every Kth evaluation (K, 2K, 3K, …) |
//! | `prob:P:SEED` | fire with probability P permille, seeded — deterministic per site |
//! | `always` | shorthand for `every:1` |
//!
//! Sites are armed from tests via [`set`], or from the environment via
//! [`init_from_env`], which reads `OSDIV_FAILPOINTS` as a comma-separated
//! `site=trigger` list, e.g.:
//!
//! ```text
//! OSDIV_FAILPOINTS=persist.snapshot_write=nth:3,ingest.parse=prob:100:42
//! ```
//!
//! Every injected fault bumps a global counter (exposed as
//! `osdiv_faults_injected_total` by the serving layer, see
//! [`injected_total`]) and records a [`SpanKind::Fault`] span on the
//! flight recorder, so chaos runs are visible on the same observability
//! rails as real traffic.
//!
//! The registry is process-global: tests that arm sites must either run
//! in their own test binary or serialize around [`set`]/[`clear_all`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::obs::{self, SpanKind};

/// When a site armed with a trigger fires (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on exactly the Nth evaluation (1-based).
    Nth(u64),
    /// Fire on every Kth evaluation (K, 2K, 3K, …).
    EveryK(u64),
    /// Fire with `permille`/1000 probability, deterministically seeded.
    Probability {
        /// Probability in permille (0–1000).
        permille: u32,
        /// Seed of the per-site xorshift stream.
        seed: u64,
    },
}

/// A failed `site=trigger` parse (see [`configure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerParseError {
    /// The offending fragment of the spec string.
    pub fragment: String,
    /// What was wrong with it.
    pub detail: &'static str,
}

impl std::fmt::Display for TriggerParseError {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(out, "failpoint spec {:?}: {}", self.fragment, self.detail)
    }
}

impl std::error::Error for TriggerParseError {}

/// One armed site: its trigger plus how often it has been evaluated.
#[derive(Debug)]
struct SiteState {
    name: String,
    trigger: Trigger,
    hits: u64,
}

/// Whether any site is armed — the only state the disabled fast path
/// reads (one relaxed load).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Faults injected since process start, across every site.
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// The armed sites. A `Vec` (not a map) so the static needs no const
/// constructor; the list is tiny and only walked on the armed slow path.
static SITES: Mutex<Vec<SiteState>> = Mutex::new(Vec::new());

/// Evaluates a failpoint site: `true` means the caller should fail now.
///
/// Disabled (nothing armed anywhere) this is one relaxed atomic load.
/// Armed, it takes the registry lock, advances the site's hit counter and
/// evaluates its trigger; an unarmed site under an armed registry only
/// pays the lock and a short scan. An injection bumps
/// [`injected_total`] and records a zero-length [`SpanKind::Fault`] span
/// labelled with the site name.
pub fn failpoint(site: &str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    let fire = {
        let mut sites = SITES.lock();
        match sites.iter_mut().find(|state| state.name == site) {
            None => false,
            Some(state) => {
                state.hits = state.hits.saturating_add(1);
                evaluate(state.trigger, state.hits)
            }
        }
    };
    if fire {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        obs::record_span(SpanKind::Fault, site, obs::monotonic_us(), 0);
    }
    fire
}

/// Whether `trigger` fires on evaluation number `hit` (1-based).
fn evaluate(trigger: Trigger, hit: u64) -> bool {
    match trigger {
        Trigger::Nth(n) => hit == n,
        Trigger::EveryK(k) => k > 0 && hit.checked_rem(k) == Some(0),
        Trigger::Probability { permille, seed } => {
            // One xorshift64 step over (seed ⊕ hit): deterministic per
            // site and per evaluation, independent across sites.
            let mut x = seed ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            if x == 0 {
                x = 0x4d59_5df4_d0f3_3173;
            }
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.checked_rem(1000) < Some(u64::from(permille.min(1000)))
        }
    }
}

/// Arms (or re-arms) a site with a trigger, resetting its hit counter.
/// This is the builder API tests use; production arms via
/// [`init_from_env`].
pub fn set(site: &str, trigger: Trigger) {
    let mut sites = SITES.lock();
    match sites.iter_mut().find(|state| state.name == site) {
        Some(state) => {
            state.trigger = trigger;
            state.hits = 0;
        }
        None => sites.push(SiteState {
            name: site.to_string(),
            trigger,
            hits: 0,
        }),
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms one site (a no-op when it was never armed). The registry
/// stays enabled while any other site is armed.
pub fn clear(site: &str) {
    let mut sites = SITES.lock();
    sites.retain(|state| state.name != site);
    if sites.is_empty() {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Disarms every site and restores the zero-cost disabled fast path.
pub fn clear_all() {
    let mut sites = SITES.lock();
    sites.clear();
    ENABLED.store(false, Ordering::Relaxed);
}

/// Faults injected since process start, across every site (the
/// `osdiv_faults_injected_total` counter).
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Arms sites from a comma-separated `site=trigger` spec (the
/// `OSDIV_FAILPOINTS` syntax; see the module docs). Returns how many
/// sites were armed; on a parse error nothing before the bad fragment is
/// rolled back, matching "fail fast, fail loud" for operator typos.
pub fn configure(spec: &str) -> Result<usize, TriggerParseError> {
    let mut armed = 0usize;
    for fragment in spec.split(',') {
        let fragment = fragment.trim();
        if fragment.is_empty() {
            continue;
        }
        let Some((site, trigger)) = fragment.split_once('=') else {
            return Err(TriggerParseError {
                fragment: fragment.to_string(),
                detail: "expected site=trigger",
            });
        };
        let site = site.trim();
        if site.is_empty() {
            return Err(TriggerParseError {
                fragment: fragment.to_string(),
                detail: "empty site name",
            });
        }
        set(site, parse_trigger(trigger.trim(), fragment)?);
        armed = armed.saturating_add(1);
    }
    Ok(armed)
}

/// Parses one trigger spec (`nth:N`, `every:K`, `prob:P:SEED`, `always`).
fn parse_trigger(spec: &str, fragment: &str) -> Result<Trigger, TriggerParseError> {
    let error = |detail: &'static str| TriggerParseError {
        fragment: fragment.to_string(),
        detail,
    };
    if spec == "always" {
        return Ok(Trigger::EveryK(1));
    }
    let Some((kind, rest)) = spec.split_once(':') else {
        return Err(error("expected nth:N, every:K, prob:P:SEED or always"));
    };
    match kind {
        "nth" => rest
            .parse::<u64>()
            .ok()
            .filter(|n| *n > 0)
            .map(Trigger::Nth)
            .ok_or_else(|| error("nth expects a positive integer")),
        "every" => rest
            .parse::<u64>()
            .ok()
            .filter(|k| *k > 0)
            .map(Trigger::EveryK)
            .ok_or_else(|| error("every expects a positive integer")),
        "prob" => {
            let Some((permille, seed)) = rest.split_once(':') else {
                return Err(error("prob expects prob:PERMILLE:SEED"));
            };
            let permille = permille
                .parse::<u32>()
                .ok()
                .filter(|p| *p <= 1000)
                .ok_or_else(|| error("permille must be 0..=1000"))?;
            let seed = seed
                .parse::<u64>()
                .map_err(|_| error("seed must be a u64"))?;
            Ok(Trigger::Probability { permille, seed })
        }
        _ => Err(error("unknown trigger (nth, every, prob, always)")),
    }
}

/// Arms sites from the `OSDIV_FAILPOINTS` environment variable, if set.
/// Returns the number of sites armed (0 when unset or empty); parse
/// errors are returned so the caller can refuse to start with a typo'd
/// chaos configuration rather than silently running without it.
pub fn init_from_env() -> Result<usize, TriggerParseError> {
    match std::env::var("OSDIV_FAILPOINTS") {
        Ok(spec) => configure(&spec),
        Err(_) => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is shared by every test in this binary: each
    /// test runs under this lock and clears the registry on both ends.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated<R>(body: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock();
        clear_all();
        let result = body();
        clear_all();
        result
    }

    #[test]
    fn disabled_sites_never_fire() {
        isolated(|| {
            for _ in 0..100 {
                assert!(!failpoint("persist.snapshot_write"));
            }
        });
    }

    #[test]
    fn nth_fires_exactly_once() {
        isolated(|| {
            set("a.site", Trigger::Nth(3));
            let fired: Vec<bool> = (0..6).map(|_| failpoint("a.site")).collect();
            assert_eq!(fired, [false, false, true, false, false, false]);
        });
    }

    #[test]
    fn every_k_fires_periodically() {
        isolated(|| {
            set("b.site", Trigger::EveryK(2));
            let fired: Vec<bool> = (0..6).map(|_| failpoint("b.site")).collect();
            assert_eq!(fired, [false, true, false, true, false, true]);
        });
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        isolated(|| {
            set(
                "c.site",
                Trigger::Probability {
                    permille: 250,
                    seed: 42,
                },
            );
            let first: Vec<bool> = (0..400).map(|_| failpoint("c.site")).collect();
            set(
                "c.site",
                Trigger::Probability {
                    permille: 250,
                    seed: 42,
                },
            );
            let second: Vec<bool> = (0..400).map(|_| failpoint("c.site")).collect();
            assert_eq!(first, second, "same seed, same stream");
            let fired = first.iter().filter(|f| **f).count();
            assert!((50..=150).contains(&fired), "~25% of 400, got {fired}");
        });
    }

    #[test]
    fn armed_sites_do_not_leak_into_other_sites() {
        isolated(|| {
            set("only.this", Trigger::EveryK(1));
            assert!(failpoint("only.this"));
            assert!(!failpoint("not.that"));
        });
    }

    #[test]
    fn clear_restores_the_disabled_fast_path() {
        isolated(|| {
            set("x", Trigger::EveryK(1));
            set("y", Trigger::EveryK(1));
            clear("x");
            assert!(!failpoint("x"));
            assert!(failpoint("y"), "y stays armed after clearing x");
            clear("y");
            assert!(!failpoint("y"));
        });
    }

    #[test]
    fn injections_are_counted() {
        isolated(|| {
            let before = injected_total();
            set("counted", Trigger::EveryK(1));
            assert!(failpoint("counted"));
            assert!(failpoint("counted"));
            assert!(injected_total() >= before + 2);
        });
    }

    #[test]
    fn spec_parsing_round_trips() {
        isolated(|| {
            let armed = configure(
                "persist.snapshot_write=nth:3, ingest.parse=prob:100:42,journal.append=every:5,x=always",
            )
            .unwrap();
            assert_eq!(armed, 4);
            clear_all();
            assert_eq!(configure(""), Ok(0));
            assert!(configure("no-equals").is_err());
            assert!(configure("s=nth:0").is_err());
            assert!(configure("s=prob:2000:1").is_err());
            assert!(configure("s=sometimes").is_err());
            clear_all();
        });
    }

    #[test]
    fn parsed_triggers_match_their_specs() {
        assert_eq!(parse_trigger("nth:7", "t").unwrap(), Trigger::Nth(7));
        assert_eq!(parse_trigger("every:2", "t").unwrap(), Trigger::EveryK(2));
        assert_eq!(parse_trigger("always", "t").unwrap(), Trigger::EveryK(1));
        assert_eq!(
            parse_trigger("prob:500:9", "t").unwrap(),
            Trigger::Probability {
                permille: 500,
                seed: 9
            }
        );
    }
}
