//! The [`Study`] session: a [`StudyDataset`] plus a memoizing, thread-safe
//! analysis cache.
//!
//! A `Study` is the one object user code needs: build it from entries (or an
//! existing dataset), then ask for analyses by type. Results computed under
//! the default configuration are cached behind a `parking_lot` lock and
//! shared via [`Arc`], so repeated lookups — and the composed analyses that
//! reuse each other's outputs — pay for each computation once.
//! [`Study::run_all`] fans the whole registry out across scoped threads to
//! warm the cache in parallel.

use std::any::Any;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use nvd_model::VulnerabilityEntry;
use parking_lot::RwLock;

use crate::analysis::{registry, Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::StudyDataset;
use crate::render::{renderer, Format};

/// A study session: the dataset plus the memoized analysis results.
///
/// # Example
///
/// ```
/// use datagen::CalibratedGenerator;
/// use osdiv_core::{PairwiseAnalysis, Study};
///
/// let dataset = CalibratedGenerator::new(1).generate();
/// let study = Study::from_entries(dataset.entries());
/// let pairwise = study.get::<PairwiseAnalysis>().unwrap();
/// assert_eq!(pairwise.rows().len(), 55);
/// // The second lookup returns the cached value.
/// let again = study.get::<PairwiseAnalysis>().unwrap();
/// assert!(std::sync::Arc::ptr_eq(&pairwise, &again));
/// ```
#[derive(Debug, Default)]
pub struct Study {
    dataset: StudyDataset,
    cache: RwLock<HashMap<AnalysisId, Arc<dyn Any + Send + Sync>>>,
}

impl Study {
    /// Wraps an existing dataset in a session.
    pub fn new(dataset: StudyDataset) -> Self {
        Study {
            dataset,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Builds a session from parsed entries (duplicates are merged by CVE
    /// identifier, exactly like [`StudyDataset::from_entries`]).
    pub fn from_entries(entries: &[VulnerabilityEntry]) -> Self {
        Study::new(StudyDataset::from_entries(entries))
    }

    /// The underlying dataset. `Study` also derefs to [`StudyDataset`], so
    /// the filtered queries (`count_common`, `retains`, …) are available
    /// directly on the session.
    pub fn dataset(&self) -> &StudyDataset {
        &self.dataset
    }

    /// Consumes the session and returns the dataset, dropping the cache.
    pub fn into_dataset(self) -> StudyDataset {
        self.dataset
    }

    /// Runs an analysis under its **default** configuration, memoizing the
    /// result: the first call computes, every later call returns the same
    /// [`Arc`]. Concurrent first calls may compute twice, but all callers
    /// observe one winning value.
    pub fn get<A: Analysis>(&self) -> Result<Arc<A::Output>, AnalysisError> {
        let id = A::id();
        if let Some(hit) = self.cache.read().get(&id) {
            return Ok(Arc::clone(hit)
                .downcast::<A::Output>()
                .expect("cache entries hold their analysis's output type"));
        }
        let computed: Arc<A::Output> = Arc::new(A::run(self, &A::Config::default())?);
        let mut cache = self.cache.write();
        let winner = cache
            .entry(id)
            .or_insert_with(|| computed as Arc<dyn Any + Send + Sync>);
        Ok(Arc::clone(winner)
            .downcast::<A::Output>()
            .expect("cache entries hold their analysis's output type"))
    }

    /// Runs an analysis under an explicit configuration. Non-default runs
    /// are **not** cached — they are what-if queries, and caching them would
    /// require hashing every config type.
    pub fn get_with<A: Analysis>(&self, config: &A::Config) -> Result<A::Output, AnalysisError> {
        A::run(self, config)
    }

    /// Whether an analysis result is already memoized.
    pub fn is_cached(&self, id: AnalysisId) -> bool {
        self.cache.read().contains_key(&id)
    }

    /// The ids with memoized results, in registry order.
    pub fn cached_ids(&self) -> Vec<AnalysisId> {
        let cache = self.cache.read();
        AnalysisId::ALL
            .into_iter()
            .filter(|id| cache.contains_key(id))
            .collect()
    }

    /// Drops every memoized result (e.g. after mutating the dataset through
    /// [`Study::dataset_mut`]).
    pub fn invalidate(&self) {
        self.cache.write().clear();
    }

    /// Mutable access to the dataset. Invalidates the cache, since every
    /// memoized result may depend on the mutated rows.
    pub fn dataset_mut(&mut self) -> &mut StudyDataset {
        self.invalidate();
        &mut self.dataset
    }

    /// Runs **every** registered analysis under its default configuration,
    /// fanning out across scoped threads so independent analyses compute in
    /// parallel. After this returns `Ok`, every [`AnalysisId`] is memoized
    /// and later `get` calls are lock-read cheap.
    pub fn run_all(&self) -> Result<(), AnalysisError> {
        let mut first_error = None;
        // Scoped workers have fresh thread-local span stacks, so the
        // per-analysis spans take their parent (the caller's current span,
        // if any) explicitly.
        let (parent, trace) = crate::obs::current_context();
        std::thread::scope(|scope| {
            let handles: Vec<_> = registry()
                .iter()
                .map(|entry| {
                    scope.spawn(move || {
                        let _span = crate::obs::span_with_parent(
                            crate::obs::SpanKind::Analysis,
                            entry.id.name(),
                            parent,
                            trace,
                        );
                        (entry.prime)(self)
                    })
                })
                .collect();
            for handle in handles {
                if let Err(error) = handle.join().expect("analysis threads do not panic") {
                    first_error.get_or_insert(error);
                }
            }
        });
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// The section sequence of the combined report (see
    /// [`crate::analysis::report_sections`]).
    pub fn report_sections(&self) -> Result<Vec<Section>, AnalysisError> {
        crate::analysis::report_sections(self)
    }

    /// Renders the combined report in the requested format. The text format
    /// reproduces the historical `report::full_report` byte for byte.
    pub fn report(&self, format: Format) -> Result<String, AnalysisError> {
        Ok(renderer(format).document(&self.report_sections()?))
    }
}

// The serving layer shares one pre-warmed session across worker threads
// behind an `Arc<Study>`; keep that contract checked at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Study>();
};

impl Deref for Study {
    type Target = StudyDataset;

    fn deref(&self) -> &StudyDataset {
        &self.dataset
    }
}

impl From<StudyDataset> for Study {
    fn from(dataset: StudyDataset) -> Self {
        Study::new(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ValidityDistribution;
    use crate::pairwise::PairwiseAnalysis;
    use crate::temporal::{TemporalAnalysis, TemporalConfig};
    use datagen::CalibratedGenerator;

    fn calibrated_session() -> Study {
        let dataset = CalibratedGenerator::new(12).generate();
        Study::from_entries(dataset.entries())
    }

    #[test]
    fn get_memoizes_by_pointer_identity() {
        let study = calibrated_session();
        assert!(!study.is_cached(AnalysisId::Pairwise));
        let first = study.get::<PairwiseAnalysis>().unwrap();
        assert!(study.is_cached(AnalysisId::Pairwise));
        let second = study.get::<PairwiseAnalysis>().unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn get_with_is_uncached_and_config_driven() {
        let study = calibrated_session();
        let narrow = study
            .get_with::<TemporalAnalysis>(&TemporalConfig {
                first_year: 2000,
                last_year: 2005,
            })
            .unwrap();
        assert_eq!(narrow.first_year(), 2000);
        assert!(!study.is_cached(AnalysisId::Temporal));
        let invalid = study.get_with::<TemporalAnalysis>(&TemporalConfig {
            first_year: 2010,
            last_year: 1993,
        });
        assert_eq!(
            invalid.unwrap_err(),
            AnalysisError::InvalidYearRange {
                first: 2010,
                last: 1993
            }
        );
    }

    #[test]
    fn run_all_memoizes_every_registered_analysis() {
        let study = calibrated_session();
        study.run_all().unwrap();
        assert_eq!(study.cached_ids(), AnalysisId::ALL.to_vec());
    }

    #[test]
    fn deref_exposes_the_dataset_queries() {
        let study = calibrated_session();
        assert!(study.valid_count() > 1500);
        assert_eq!(study.dataset().valid_count(), study.valid_count());
    }

    #[test]
    fn dataset_mut_invalidates_the_cache() {
        let mut study = calibrated_session();
        let _ = study.get::<ValidityDistribution>().unwrap();
        assert!(study.is_cached(AnalysisId::Validity));
        let _ = study.dataset_mut();
        assert!(!study.is_cached(AnalysisId::Validity));
        assert!(study.cached_ids().is_empty());
    }

    #[test]
    fn text_report_contains_every_section() {
        let study = calibrated_session();
        let report = study.report(crate::render::Format::Text).unwrap();
        for section in [
            "Table I",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Table VI",
            "Figure 2 (BSD family)",
            "Figure 2 (Windows family)",
            "k-OS combinations",
            "summary",
        ] {
            assert!(report.contains(section), "missing section {section}");
        }
    }

    #[test]
    fn concurrent_gets_agree_on_one_value() {
        let study = calibrated_session();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| study.get::<PairwiseAnalysis>().unwrap()))
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for pair in results.windows(2) {
                assert!(Arc::ptr_eq(&pair[0], &pair[1]));
            }
        });
    }
}
