//! Diversity across OS releases (Section IV-D, Table VI).
//!
//! The paper's preliminary per-release analysis correlates NVD entries with
//! the security trackers of four distributions and asks how many common
//! vulnerabilities remain when *specific releases* are compared instead of
//! whole product lines. Only vulnerabilities with explicit per-release
//! version information contribute (the rest could not be correlated by the
//! paper either).

use nvd_model::{OsDistribution, OsRelease};
use tabular::TextTable;

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::{ServerProfile, StudyDataset};
use crate::params::{FromParams, Params};
use crate::study::Study;

/// Configuration of the per-release analysis: the releases to pair up and
/// the profile. The default reproduces Table VI (every studied Debian and
/// RedHat release, Isolated Thin Server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseConfig {
    /// The releases whose pairs are analysed.
    pub releases: Vec<OsRelease>,
    /// The server profile counts are taken under.
    pub profile: ServerProfile,
}

impl Default for ReleaseConfig {
    fn default() -> Self {
        ReleaseConfig {
            releases: OsDistribution::Debian
                .releases()
                .iter()
                .chain(OsDistribution::RedHat.releases())
                .copied()
                .collect(),
            profile: ServerProfile::IsolatedThinServer,
        }
    }
}

/// One row of the Table VI reproduction: a pair of `(OS, release)`
/// combinations and the number of vulnerabilities affecting both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleasePairRow {
    /// First release of the pair.
    pub a: OsRelease,
    /// Second release of the pair.
    pub b: OsRelease,
    /// Number of vulnerabilities (with per-release information) affecting
    /// both releases under the analysis profile.
    pub common: usize,
}

impl ReleasePairRow {
    /// Whether the two releases belong to the same distribution.
    pub fn same_distribution(&self) -> bool {
        self.a.distribution() == self.b.distribution()
    }
}

/// The per-release analysis.
#[derive(Debug, Clone)]
pub struct ReleaseAnalysis {
    rows: Vec<ReleasePairRow>,
    profile: ServerProfile,
}

impl ReleaseAnalysis {
    fn compute_impl(study: &StudyDataset, releases: &[OsRelease], profile: ServerProfile) -> Self {
        let mut rows = Vec::new();
        for (i, &a) in releases.iter().enumerate() {
            for &b in releases.iter().skip(i + 1) {
                let common = study
                    .store()
                    .rows()
                    .filter(|row| {
                        study.retains(row, profile)
                            && affects_release_explicitly(study, row.id, a)
                            && affects_release_explicitly(study, row.id, b)
                    })
                    .count();
                rows.push(ReleasePairRow { a, b, common });
            }
        }
        ReleaseAnalysis { rows, profile }
    }

    /// The release pairs analysed.
    pub fn rows(&self) -> &[ReleasePairRow] {
        &self.rows
    }

    /// The profile the analysis was run under.
    pub fn profile(&self) -> ServerProfile {
        self.profile
    }

    /// The row of a specific release pair (in either order).
    pub fn pair(&self, a: &OsRelease, b: &OsRelease) -> Option<&ReleasePairRow> {
        self.rows
            .iter()
            .find(|row| (&row.a == a && &row.b == b) || (&row.a == b && &row.b == a))
    }

    /// Number of release pairs with zero common vulnerabilities — the
    /// paper's point is that almost all of them are disjoint.
    pub fn disjoint_pairs(&self) -> usize {
        self.rows.iter().filter(|row| row.common == 0).count()
    }

    /// Renders Table VI (common vulnerabilities between OS releases).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(["OS Versions", "Total"]);
        for row in self.rows() {
            table.push_row([
                format!("{}-{}", row.a.label(), row.b.label()),
                row.common.to_string(),
            ]);
        }
        table
    }
}

impl Analysis for ReleaseAnalysis {
    type Config = ReleaseConfig;
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Releases
    }

    fn run(study: &Study, config: &ReleaseConfig) -> Result<Self, AnalysisError> {
        Ok(Self::compute_impl(
            study.dataset(),
            &config.releases,
            config.profile,
        ))
    }
}

/// The Table VI section of the combined report.
pub(crate) fn sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    Ok(vec![Section::table(
        "Table VI: OS releases",
        study.get::<ReleaseAnalysis>()?.to_table(),
    )])
}

/// Parameterized Table VI sections: `oses=` selects whose studied releases
/// are paired, `profile=` the filter.
pub(crate) fn sections_with(study: &Study, params: &Params) -> Result<Vec<Section>, AnalysisError> {
    if params.is_empty() {
        return sections(study);
    }
    let config = ReleaseConfig::from_params(params)?;
    Ok(vec![Section::table(
        "Table VI: OS releases",
        study.get_with::<ReleaseAnalysis>(&config)?.to_table(),
    )])
}

/// Whether a vulnerability affects a given release *with explicit version
/// information* (vulnerabilities without per-release data are skipped, like
/// the entries the paper could not correlate with the security trackers).
fn affects_release_explicitly(
    study: &StudyDataset,
    id: vulnstore::VulnId,
    release: OsRelease,
) -> bool {
    study.store().os_vuln_rows_for(id).iter().any(|row| {
        row.os == release.distribution()
            && !row.versions.is_empty()
            && row.versions.iter().any(|v| v == release.version())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::CalibratedGenerator;
    use nvd_model::{CveId, CvssV2, Date, OsPart, VulnerabilityEntry};

    fn calibrated_study() -> Study {
        let dataset = CalibratedGenerator::new(11).generate();
        Study::from_entries(dataset.entries())
    }

    fn release(os: OsDistribution, version: &str) -> OsRelease {
        *os.releases()
            .iter()
            .find(|r| r.version() == version)
            .expect("release exists")
    }

    #[test]
    fn reproduces_table6_on_the_calibrated_dataset() {
        let study = calibrated_study();
        let analysis = study.get::<ReleaseAnalysis>().unwrap();
        // 6 releases -> 15 pairs.
        assert_eq!(analysis.rows().len(), 15);
        // The non-zero cells of Table VI.
        let expectations = [
            (
                release(OsDistribution::Debian, "3.0"),
                release(OsDistribution::Debian, "4.0"),
                1,
            ),
            (
                release(OsDistribution::RedHat, "4.0"),
                release(OsDistribution::RedHat, "5.0"),
                1,
            ),
            (
                release(OsDistribution::Debian, "4.0"),
                release(OsDistribution::RedHat, "4.0"),
                1,
            ),
            (
                release(OsDistribution::Debian, "4.0"),
                release(OsDistribution::RedHat, "5.0"),
                1,
            ),
            // A zero cell for contrast.
            (
                release(OsDistribution::Debian, "2.1"),
                release(OsDistribution::RedHat, "6.2"),
                0,
            ),
        ];
        for (a, b, expected) in expectations {
            let row = analysis.pair(&a, &b).unwrap();
            assert_eq!(row.common, expected, "{a} vs {b}");
        }
        // 11 of the 15 pairs are disjoint, exactly as in Table VI.
        assert_eq!(analysis.disjoint_pairs(), 11);
    }

    #[test]
    fn same_distribution_flag_is_correct() {
        let study = calibrated_study();
        let analysis = study.get::<ReleaseAnalysis>().unwrap();
        for row in analysis.rows() {
            assert_eq!(
                row.same_distribution(),
                row.a.distribution() == row.b.distribution()
            );
        }
    }

    #[test]
    fn vulnerabilities_without_version_information_do_not_count() {
        // One vulnerability affecting Debian (all versions) and RedHat (all
        // versions) but with no explicit release tags: it must not appear in
        // the per-release analysis.
        let entry = VulnerabilityEntry::builder(CveId::new(2007, 900))
            .published(Date::new(2007, 5, 5).unwrap())
            .part(OsPart::Kernel)
            .cvss(CvssV2::typical_remote())
            .affects_os(OsDistribution::Debian)
            .affects_os(OsDistribution::RedHat)
            .build()
            .unwrap();
        let study = Study::from_entries(&[entry]);
        let analysis = study.get::<ReleaseAnalysis>().unwrap();
        assert_eq!(analysis.disjoint_pairs(), analysis.rows().len());
    }

    #[test]
    fn explicitly_tagged_vulnerabilities_count_for_their_releases_only() {
        let entry = VulnerabilityEntry::builder(CveId::new(2007, 901))
            .published(Date::new(2007, 6, 6).unwrap())
            .part(OsPart::SystemSoftware)
            .cvss(CvssV2::typical_remote())
            .affects_os_version(OsDistribution::Debian, "4.0")
            .affects_os_version(OsDistribution::RedHat, "5.0")
            .build()
            .unwrap();
        let study = Study::from_entries(&[entry]);
        let analysis = study.get::<ReleaseAnalysis>().unwrap();
        let hit = analysis
            .pair(
                &release(OsDistribution::Debian, "4.0"),
                &release(OsDistribution::RedHat, "5.0"),
            )
            .unwrap();
        assert_eq!(hit.common, 1);
        let miss = analysis
            .pair(
                &release(OsDistribution::Debian, "3.0"),
                &release(OsDistribution::RedHat, "5.0"),
            )
            .unwrap();
        assert_eq!(miss.common, 0);
    }

    #[test]
    fn local_only_vulnerabilities_are_filtered_by_the_profile() {
        let entry = VulnerabilityEntry::builder(CveId::new(2007, 902))
            .published(Date::new(2007, 7, 7).unwrap())
            .part(OsPart::Kernel)
            .cvss(CvssV2::typical_local())
            .affects_os_version(OsDistribution::Debian, "4.0")
            .affects_os_version(OsDistribution::RedHat, "5.0")
            .build()
            .unwrap();
        let study = Study::from_entries(&[entry]);
        let isolated = study.get::<ReleaseAnalysis>().unwrap();
        assert_eq!(isolated.disjoint_pairs(), isolated.rows().len());
        // Under the Thin Server profile (local attacks allowed) it counts.
        let thin = study
            .get_with::<ReleaseAnalysis>(&ReleaseConfig {
                profile: ServerProfile::ThinServer,
                ..ReleaseConfig::default()
            })
            .unwrap();
        assert_eq!(thin.rows().len() - thin.disjoint_pairs(), 1);
        assert_eq!(thin.profile(), ServerProfile::ThinServer);
    }

    #[test]
    fn sections_with_restricts_the_release_pool() {
        let study = calibrated_study();
        let params = Params::from_pairs([("oses", "debian")]);
        let sections = sections_with(&study, &params).unwrap();
        match &sections[0].artifact {
            crate::analysis::Artifact::Table(table) => {
                // 3 Debian releases -> 3 pairs.
                assert_eq!(table.row_count(), 3);
            }
            other => panic!("expected a table, got {other:?}"),
        }
        assert!(sections_with(&study, &Params::from_pairs([("releases", "x")])).is_err());
    }
}
