//! Dependency-free observability primitives: a lock-free log-bucketed
//! latency histogram, Prometheus histogram rendering, and a structured
//! JSON-lines event log.
//!
//! # The histogram
//!
//! [`LatencyHistogram`] records durations in **microseconds** into a fixed
//! table of relaxed [`AtomicU64`] buckets — recording is wait-free, never
//! allocates, and takes `&self`, so one histogram is safely shared across
//! every worker thread of a server. The bucket layout is HDR-style
//! log-linear:
//!
//! * values `0..64` µs land in one exact bucket each;
//! * every octave above (`64..128`, `128..256`, …) is split into 64
//!   linear sub-buckets, bounding the relative quantile error by
//!   `1/64 ≈ 1.6%` (about two significant digits);
//! * the range is capped at [`MAX_TRACKED_US`] (60 s) — longer values
//!   clamp into the last bucket, with the exact total still available
//!   through the `_sum` term.
//!
//! That is 64 + 20·64 = 1344 buckets, ~10.5 KiB per histogram.
//!
//! [`HistogramSnapshot`] is a point-in-time copy for reading: quantiles
//! ([`quantile_us`](HistogramSnapshot::quantile_us)), the mean, and the
//! Prometheus histogram exposition
//! ([`render_prometheus`](HistogramSnapshot::render_prometheus)) all work
//! on the snapshot so a scrape observes one consistent view.
//!
//! # The event log
//!
//! [`EventLog`] writes one JSON object per line (built with [`JsonLine`],
//! escaped by [`json_escape_into`]) to a file or stdout. Request-derived
//! strings pass through the escaper, so a hostile path or header can never
//! break the line framing of the log.

use std::fmt;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// The histogram range cap in microseconds (60 s). Longer values clamp
/// into the final bucket; `_sum` keeps the exact total.
pub const MAX_TRACKED_US: u64 = 60_000_000;

/// Exact one-microsecond buckets below the first octave.
const LINEAR_BUCKETS: usize = 64;

/// Log-linear octaves covering `64 µs .. 2^26 µs` (the cap rounds into the
/// last one): exponents 6 through 25 inclusive.
const OCTAVES: usize = 20;

/// Total bucket table length.
const BUCKET_TABLE: usize = LINEAR_BUCKETS + OCTAVES * LINEAR_BUCKETS;

/// Coarse `le` boundaries (in microseconds) used for the Prometheus
/// exposition — the in-process resolution stays 1/64, but a scrape gets a
/// conventional ~22-bucket series from 5 µs to 60 s.
pub const PROMETHEUS_BOUNDS_US: [u64; 22] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// The fine-bucket slot a (clamped) microsecond value lands in.
fn bucket_slot(value_us: u64) -> usize {
    let value = value_us.min(MAX_TRACKED_US);
    if value < LINEAR_BUCKETS as u64 {
        value as usize
    } else {
        // 64 ≤ value < 2^26, so the leading-bit exponent is 6..=25.
        let exponent = 63 - value.leading_zeros() as usize;
        let shift = exponent - 6;
        LINEAR_BUCKETS + shift * LINEAR_BUCKETS + ((value >> shift) as usize & 63)
    }
}

/// The largest microsecond value that lands in `slot` (the inclusive
/// upper edge of the fine bucket).
fn bucket_limit(slot: usize) -> u64 {
    if slot < LINEAR_BUCKETS {
        slot as u64
    } else {
        let shift = (slot - LINEAR_BUCKETS) / LINEAR_BUCKETS;
        let sub = (slot - LINEAR_BUCKETS) % LINEAR_BUCKETS;
        (((LINEAR_BUCKETS + sub + 1) as u64) << shift) - 1 // guard: allow(arith) — sub < 64 and shift ≤ 19: the shift tops out at 129 << 19 < 2^27 and is ≥ 65, so neither overflow nor underflow is possible.
    }
}

/// A lock-free, log-bucketed latency histogram (see the module docs for
/// the bucket layout). Recording is wait-free and allocation-free; reads
/// go through [`snapshot`](LatencyHistogram::snapshot).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("sum_us", &self.sum_us.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKET_TABLE).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation of `value_us` microseconds. Values past
    /// [`MAX_TRACKED_US`] clamp into the last bucket but contribute their
    /// exact value to the sum.
    pub fn record_us(&self, value_us: u64) {
        self.sum_us.fetch_add(value_us, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(bucket_slot(value_us)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one observation of a [`Duration`] (saturating to the u64
    /// microsecond range).
    pub fn record(&self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Folds every observation of `other` into `self`. Merging while both
    /// histograms keep recording is safe; the merge then lands somewhere
    /// between the two instants it spans.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let filled = theirs.load(Ordering::Relaxed);
            if filled > 0 {
                mine.fetch_add(filled, Ordering::Relaxed);
            }
        }
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile queries and rendering. Buckets
    /// are read bucket-by-bucket while writers proceed, so the copy is
    /// only approximately atomic — fine for monitoring, which is its job.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        // Derive the totals from the copied buckets so the snapshot is
        // internally consistent (sum/total race one increment otherwise).
        let counted: u64 = buckets.iter().sum();
        let mut sum_us = self.sum_us.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        if counted < total {
            // A writer got between our bucket pass and the total load;
            // scale the sum back onto the counted population.
            sum_us = if total > 0 {
                (sum_us / total.max(1)) * counted // guard: allow(arith) — average-times-counted under a positive total; division first, no overflow.
            } else {
                0
            };
        }
        HistogramSnapshot {
            buckets,
            sum_us,
            total: counted,
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], internally consistent
/// (its `_count` always equals the bucket total).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum_us: u64,
    total: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact sum of every recorded microsecond value.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean recorded value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// The `q`-quantile in microseconds (`q` clamps into `0.0..=1.0`):
    /// the upper edge of the first bucket whose cumulative population
    /// reaches `ceil(q · total)`, so the answer over-reports by at most
    /// one bucket width (≈1.6% relative). Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let goal = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let goal = goal.clamp(1, self.total);
        let mut seen = 0u64;
        for (slot, filled) in self.buckets.iter().enumerate() {
            seen += filled;
            if seen >= goal {
                return bucket_limit(slot);
            }
        }
        MAX_TRACKED_US
    }

    /// Appends the Prometheus histogram exposition for this snapshot:
    /// cumulative `{name}_bucket{…,le="…"}` lines over
    /// [`PROMETHEUS_BOUNDS_US`] plus `+Inf`, then `{name}_sum` (seconds)
    /// and `{name}_count`. `labels` is either empty or a ready-made
    /// `key="value"` list without braces. A fine bucket counts under a
    /// boundary only when it fits entirely, so the series is conservative
    /// by at most one fine bucket (≈1.6%) and always monotone.
    pub fn render_prometheus(&self, name: &str, labels: &str, out: &mut String) {
        let mut fine = self.buckets.iter().copied().enumerate().peekable();
        let mut cumulative = 0u64;
        for bound in PROMETHEUS_BOUNDS_US {
            while let Some(&(slot, filled)) = fine.peek() {
                if bucket_limit(slot) > bound {
                    break;
                }
                cumulative += filled;
                fine.next();
            }
            out.push_str(name);
            out.push_str("_bucket{");
            if !labels.is_empty() {
                out.push_str(labels);
                out.push(',');
            }
            out.push_str("le=\"");
            push_seconds(out, bound);
            out.push_str("\"} ");
            push_u64(out, cumulative);
            out.push('\n');
        }
        out.push_str(name);
        out.push_str("_bucket{");
        if !labels.is_empty() {
            out.push_str(labels);
            out.push(',');
        }
        out.push_str("le=\"+Inf\"} ");
        push_u64(out, self.total);
        out.push('\n');
        out.push_str(name);
        out.push_str("_sum");
        push_label_block(out, labels);
        out.push(' ');
        push_seconds(out, self.sum_us);
        out.push('\n');
        out.push_str(name);
        out.push_str("_count");
        push_label_block(out, labels);
        out.push(' ');
        push_u64(out, self.total);
        out.push('\n');
    }
}

/// Appends `{labels}` when labels are present (for `_sum`/`_count` lines).
fn push_label_block(out: &mut String, labels: &str) {
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
}

/// Appends a decimal u64.
fn push_u64(out: &mut String, value: u64) {
    use fmt::Write as _;
    let _ = write!(out, "{value}");
}

/// Appends a microsecond quantity as decimal **seconds** with no float
/// round-trip: `17` → `0.000017`, `2_500_000` → `2.5`, `60_000_000` → `60`.
fn push_seconds(out: &mut String, us: u64) {
    use fmt::Write as _;
    let whole = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        let _ = write!(out, "{whole}");
    } else {
        let digits = format!("{frac:06}");
        let _ = write!(out, "{whole}.{}", digits.trim_end_matches('0'));
    }
}

/// Escapes `value` into `out` as the interior of a JSON string literal:
/// quotes and backslashes are escaped, control characters become `\uXXXX`
/// (with the conventional short forms for `\n`, `\r`, `\t`). Multi-byte
/// UTF-8 passes through unchanged — the output is valid JSON whatever the
/// (request-derived) input was.
pub fn json_escape_into(out: &mut String, value: &str) {
    use fmt::Write as _;
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            control if control < ' ' => {
                let _ = write!(out, "\\u{:04x}", control as u32);
            }
            other => out.push(other),
        }
    }
}

/// Builds one JSON object on a single line, field by field. Keys and
/// string values both pass through [`json_escape_into`].
///
/// ```
/// use osdiv_core::obs::JsonLine;
/// let mut line = JsonLine::new();
/// line.str_field("event", "request");
/// line.u64_field("status", 200);
/// assert_eq!(line.finish(), r#"{"event":"request","status":200}"#);
/// ```
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
    first: bool,
}

impl Default for JsonLine {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonLine {
    /// An empty object, opened.
    pub fn new() -> Self {
        JsonLine {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        json_escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        json_escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, name: &str, value: u64) {
        use fmt::Write as _;
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a float field (JSON number; non-finite values become 0).
    pub fn f64_field(&mut self, name: &str, value: f64) {
        use fmt::Write as _;
        self.key(name);
        let value = if value.is_finite() { value } else { 0.0 };
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A shared sink for JSON-lines events (the access log, lifecycle
/// events). Writes are serialized by a mutex and line-buffered;
/// [`emit`](EventLog::emit) is best-effort — a full disk must never take
/// the serving path down with it.
pub struct EventLog {
    writer: Mutex<LineWriter<Box<dyn Write + Send>>>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog").finish_non_exhaustive()
    }
}

impl EventLog {
    /// An event log over an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        EventLog {
            writer: Mutex::new(LineWriter::new(writer)),
        }
    }

    /// An event log appending to standard output.
    pub fn stdout() -> Self {
        Self::to_writer(Box::new(io::stdout()))
    }

    /// An event log appending to the file at `path` (created if missing).
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Writes one event line (the newline is added here). Errors are
    /// swallowed by design: observability must not fail the observed.
    pub fn emit(&self, line: &str) {
        let mut writer = self.writer.lock();
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_and_log_slots_roundtrip_their_limits() {
        for slot in 0..BUCKET_TABLE {
            let limit = bucket_limit(slot);
            assert_eq!(
                bucket_slot(limit.min(MAX_TRACKED_US)),
                if limit >= MAX_TRACKED_US {
                    bucket_slot(MAX_TRACKED_US)
                } else {
                    slot
                },
                "slot {slot} limit {limit}"
            );
        }
    }

    #[test]
    fn bucket_limits_are_strictly_increasing() {
        let mut previous = None;
        for slot in 0..BUCKET_TABLE {
            let limit = bucket_limit(slot);
            if let Some(prev) = previous {
                assert!(limit > prev, "slot {slot}: {limit} <= {prev}");
            }
            previous = Some(limit);
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Above the linear region, every bucket's width is at most 1/64
        // of its lower edge.
        for slot in LINEAR_BUCKETS..BUCKET_TABLE {
            let hi = bucket_limit(slot);
            let lo = bucket_limit(slot - 1) + 1;
            let width = hi - lo + 1;
            assert!(
                width * 64 <= lo + 64,
                "slot {slot}: width {width} vs lower edge {lo}"
            );
        }
    }

    #[test]
    fn quantiles_and_sum_are_exact_on_small_values() {
        let hist = LatencyHistogram::new();
        for v in [1u64, 2, 3, 10, 63] {
            hist.record_us(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.sum_us(), 79);
        assert_eq!(snap.quantile_us(0.0), 1);
        assert_eq!(snap.quantile_us(0.5), 3);
        assert_eq!(snap.quantile_us(1.0), 63);
    }

    #[test]
    fn values_past_the_cap_clamp_but_keep_their_exact_sum() {
        let hist = LatencyHistogram::new();
        hist.record_us(10 * MAX_TRACKED_US);
        let snap = hist.snapshot();
        assert_eq!(snap.total(), 1);
        assert_eq!(snap.sum_us(), 10 * MAX_TRACKED_US);
        assert!(snap.quantile_us(1.0) <= bucket_limit(BUCKET_TABLE - 1));
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_consistent() {
        let hist = LatencyHistogram::new();
        for v in [3u64, 17, 90, 1_500, 40_000, 2_000_000] {
            hist.record_us(v);
        }
        let mut out = String::new();
        hist.snapshot()
            .render_prometheus("test_hist", "route=\"x\"", &mut out);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("test_hist_bucket{route=\"x\",le=\"") {
                let value: u64 = rest
                    .split("\"} ")
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .expect("bucket line parses");
                assert!(value >= last, "non-monotone at {line:?}");
                last = value;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, PROMETHEUS_BOUNDS_US.len() + 1);
        assert_eq!(last, 6, "+Inf equals the count");
        assert!(out.contains("test_hist_count{route=\"x\"} 6"));
        assert!(out.contains("test_hist_sum{route=\"x\"} 2.04161"));
    }

    #[test]
    fn seconds_formatting_has_no_float_roundtrip() {
        let mut out = String::new();
        push_seconds(&mut out, 17);
        out.push(' ');
        push_seconds(&mut out, 2_500_000);
        out.push(' ');
        push_seconds(&mut out, 60_000_000);
        assert_eq!(out, "0.000017 2.5 60");
    }

    #[test]
    fn json_lines_escape_hostile_strings() {
        let mut line = JsonLine::new();
        line.str_field("path", "/v1/\"evil\"\\\n\u{1}");
        line.u64_field("status", 400);
        line.bool_field("slow", false);
        assert_eq!(
            line.finish(),
            "{\"path\":\"/v1/\\\"evil\\\"\\\\\\n\\u0001\",\"status\":400,\"slow\":false}"
        );
    }

    #[test]
    fn event_log_writes_one_line_per_emit() {
        use std::sync::{Arc, Mutex as StdMutex};

        #[derive(Clone)]
        struct Sink(Arc<StdMutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let bytes = Arc::new(StdMutex::new(Vec::new()));
        let log = EventLog::to_writer(Box::new(Sink(Arc::clone(&bytes))));
        log.emit("{\"a\":1}");
        log.emit("{\"b\":2}");
        log.flush();
        let written = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        assert_eq!(written, "{\"a\":1}\n{\"b\":2}\n");
    }
}
