//! Dependency-free observability primitives: a lock-free log-bucketed
//! latency histogram, Prometheus histogram rendering, and a structured
//! JSON-lines event log.
//!
//! # The histogram
//!
//! [`LatencyHistogram`] records durations in **microseconds** into a fixed
//! table of relaxed [`AtomicU64`] buckets — recording is wait-free, never
//! allocates, and takes `&self`, so one histogram is safely shared across
//! every worker thread of a server. The bucket layout is HDR-style
//! log-linear:
//!
//! * values `0..64` µs land in one exact bucket each;
//! * every octave above (`64..128`, `128..256`, …) is split into 64
//!   linear sub-buckets, bounding the relative quantile error by
//!   `1/64 ≈ 1.6%` (about two significant digits);
//! * the range is capped at [`MAX_TRACKED_US`] (60 s) — longer values
//!   clamp into the last bucket, with the exact total still available
//!   through the `_sum` term.
//!
//! That is 64 + 20·64 = 1344 buckets, ~10.5 KiB per histogram.
//!
//! [`HistogramSnapshot`] is a point-in-time copy for reading: quantiles
//! ([`quantile_us`](HistogramSnapshot::quantile_us)), the mean, and the
//! Prometheus histogram exposition
//! ([`render_prometheus`](HistogramSnapshot::render_prometheus)) all work
//! on the snapshot so a scrape observes one consistent view.
//!
//! # The event log
//!
//! [`EventLog`] writes one JSON object per line (built with [`JsonLine`],
//! escaped by [`json_escape_into`]) to a file or stdout. Request-derived
//! strings pass through the escaper, so a hostile path or header can never
//! break the line framing of the log.
//!
//! # The flight recorder
//!
//! [`FlightRecorder`] is a fixed-capacity ring of structured span records
//! ([`SpanRecord`]): id, parent id, trace (request) id, [`SpanKind`],
//! start offset and duration in microseconds, and a short label. Spans
//! are recorded either through the RAII guard returned by [`span`] (which
//! nests under the calling thread's current span automatically) or
//! explicitly via [`record_span`]. Recording claims a unique slot with one
//! `fetch_add` and takes that slot's lock with `try_lock`, so the hot path
//! never blocks: the only possible contention is a reader (or a writer a
//! full ring-lap behind) holding the same slot, in which case the write is
//! skipped and counted under `contended`. History lost to wrap-around is
//! exact: `dropped = total_claims - capacity`.
//!
//! [`RingSnapshot`] is the read side — a sorted copy of the live records
//! plus the drop/contention counters and a `work` figure (slots examined,
//! always the ring capacity) that the complexity guard pins, and a
//! [`to_chrome_trace`](RingSnapshot::to_chrome_trace) renderer producing
//! Chrome-trace-event JSON loadable in `chrome://tracing` or Perfetto.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

/// The histogram range cap in microseconds (60 s). Longer values clamp
/// into the final bucket; `_sum` keeps the exact total.
pub const MAX_TRACKED_US: u64 = 60_000_000;

/// Exact one-microsecond buckets below the first octave.
const LINEAR_BUCKETS: usize = 64;

/// Log-linear octaves covering `64 µs .. 2^26 µs` (the cap rounds into the
/// last one): exponents 6 through 25 inclusive.
const OCTAVES: usize = 20;

/// Total bucket table length.
const BUCKET_TABLE: usize = LINEAR_BUCKETS + OCTAVES * LINEAR_BUCKETS;

/// Coarse `le` boundaries (in microseconds) used for the Prometheus
/// exposition — the in-process resolution stays 1/64, but a scrape gets a
/// conventional ~22-bucket series from 5 µs to 60 s.
pub const PROMETHEUS_BOUNDS_US: [u64; 22] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// The fine-bucket slot a (clamped) microsecond value lands in.
fn bucket_slot(value_us: u64) -> usize {
    let value = value_us.min(MAX_TRACKED_US);
    if value < LINEAR_BUCKETS as u64 {
        value as usize
    } else {
        // 64 ≤ value < 2^26, so the leading-bit exponent is 6..=25.
        let exponent = 63 - value.leading_zeros() as usize;
        let shift = exponent - 6;
        LINEAR_BUCKETS + shift * LINEAR_BUCKETS + ((value >> shift) as usize & 63)
    }
}

/// The largest microsecond value that lands in `slot` (the inclusive
/// upper edge of the fine bucket).
fn bucket_limit(slot: usize) -> u64 {
    if slot < LINEAR_BUCKETS {
        slot as u64
    } else {
        let shift = (slot - LINEAR_BUCKETS) / LINEAR_BUCKETS;
        let sub = (slot - LINEAR_BUCKETS) % LINEAR_BUCKETS;
        (((LINEAR_BUCKETS + sub + 1) as u64) << shift) - 1 // guard: allow(arith) — sub < 64 and shift ≤ 19: the shift tops out at 129 << 19 < 2^27 and is ≥ 65, so neither overflow nor underflow is possible.
    }
}

/// A lock-free, log-bucketed latency histogram (see the module docs for
/// the bucket layout). Recording is wait-free and allocation-free; reads
/// go through [`snapshot`](LatencyHistogram::snapshot).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("sum_us", &self.sum_us.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKET_TABLE).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation of `value_us` microseconds. Values past
    /// [`MAX_TRACKED_US`] clamp into the last bucket but contribute their
    /// exact value to the sum.
    pub fn record_us(&self, value_us: u64) {
        self.sum_us.fetch_add(value_us, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(bucket_slot(value_us)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one observation of a [`Duration`] (saturating to the u64
    /// microsecond range).
    pub fn record(&self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Folds every observation of `other` into `self`. Merging while both
    /// histograms keep recording is safe; the merge then lands somewhere
    /// between the two instants it spans.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let filled = theirs.load(Ordering::Relaxed);
            if filled > 0 {
                mine.fetch_add(filled, Ordering::Relaxed);
            }
        }
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile queries and rendering. Buckets
    /// are read bucket-by-bucket while writers proceed, so the copy is
    /// only approximately atomic — fine for monitoring, which is its job.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        // Derive the totals from the copied buckets so the snapshot is
        // internally consistent (sum/total race one increment otherwise).
        let counted: u64 = buckets.iter().sum();
        let mut sum_us = self.sum_us.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        if counted < total {
            // A writer got between our bucket pass and the total load;
            // scale the sum back onto the counted population.
            sum_us = if total > 0 {
                (sum_us / total.max(1)) * counted // guard: allow(arith) — average-times-counted under a positive total; division first, no overflow.
            } else {
                0
            };
        }
        HistogramSnapshot {
            buckets,
            sum_us,
            total: counted,
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], internally consistent
/// (its `_count` always equals the bucket total).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum_us: u64,
    total: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact sum of every recorded microsecond value.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean recorded value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// The `q`-quantile in microseconds (`q` clamps into `0.0..=1.0`):
    /// the upper edge of the first bucket whose cumulative population
    /// reaches `ceil(q · total)`, so the answer over-reports by at most
    /// one bucket width (≈1.6% relative). Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let goal = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let goal = goal.clamp(1, self.total);
        let mut seen = 0u64;
        for (slot, filled) in self.buckets.iter().enumerate() {
            seen += filled;
            if seen >= goal {
                return bucket_limit(slot);
            }
        }
        MAX_TRACKED_US
    }

    /// Appends the Prometheus histogram exposition for this snapshot:
    /// cumulative `{name}_bucket{…,le="…"}` lines over
    /// [`PROMETHEUS_BOUNDS_US`] plus `+Inf`, then `{name}_sum` (seconds)
    /// and `{name}_count`. `labels` is either empty or a ready-made
    /// `key="value"` list without braces. A fine bucket counts under a
    /// boundary only when it fits entirely, so the series is conservative
    /// by at most one fine bucket (≈1.6%) and always monotone.
    pub fn render_prometheus(&self, name: &str, labels: &str, out: &mut String) {
        let mut fine = self.buckets.iter().copied().enumerate().peekable();
        let mut cumulative = 0u64;
        for bound in PROMETHEUS_BOUNDS_US {
            while let Some(&(slot, filled)) = fine.peek() {
                if bucket_limit(slot) > bound {
                    break;
                }
                cumulative += filled;
                fine.next();
            }
            out.push_str(name);
            out.push_str("_bucket{");
            if !labels.is_empty() {
                out.push_str(labels);
                out.push(',');
            }
            out.push_str("le=\"");
            push_seconds(out, bound);
            out.push_str("\"} ");
            push_u64(out, cumulative);
            out.push('\n');
        }
        out.push_str(name);
        out.push_str("_bucket{");
        if !labels.is_empty() {
            out.push_str(labels);
            out.push(',');
        }
        out.push_str("le=\"+Inf\"} ");
        push_u64(out, self.total);
        out.push('\n');
        out.push_str(name);
        out.push_str("_sum");
        push_label_block(out, labels);
        out.push(' ');
        push_seconds(out, self.sum_us);
        out.push('\n');
        out.push_str(name);
        out.push_str("_count");
        push_label_block(out, labels);
        out.push(' ');
        push_u64(out, self.total);
        out.push('\n');
    }
}

/// Appends `{labels}` when labels are present (for `_sum`/`_count` lines).
fn push_label_block(out: &mut String, labels: &str) {
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
}

/// Appends a decimal u64.
fn push_u64(out: &mut String, value: u64) {
    use fmt::Write as _;
    let _ = write!(out, "{value}");
}

/// Appends a microsecond quantity as decimal **seconds** with no float
/// round-trip: `17` → `0.000017`, `2_500_000` → `2.5`, `60_000_000` → `60`.
fn push_seconds(out: &mut String, us: u64) {
    use fmt::Write as _;
    let whole = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        let _ = write!(out, "{whole}");
    } else {
        let digits = format!("{frac:06}");
        let _ = write!(out, "{whole}.{}", digits.trim_end_matches('0'));
    }
}

/// Escapes `value` into `out` as the interior of a JSON string literal:
/// quotes and backslashes are escaped, control characters become `\uXXXX`
/// (with the conventional short forms for `\n`, `\r`, `\t`). Multi-byte
/// UTF-8 passes through unchanged — the output is valid JSON whatever the
/// (request-derived) input was.
pub fn json_escape_into(out: &mut String, value: &str) {
    use fmt::Write as _;
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            control if control < ' ' => {
                let _ = write!(out, "\\u{:04x}", control as u32);
            }
            other => out.push(other),
        }
    }
}

/// Builds one JSON object on a single line, field by field. Keys and
/// string values both pass through [`json_escape_into`].
///
/// ```
/// use osdiv_core::obs::JsonLine;
/// let mut line = JsonLine::new();
/// line.str_field("event", "request");
/// line.u64_field("status", 200);
/// assert_eq!(line.finish(), r#"{"event":"request","status":200}"#);
/// ```
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
    first: bool,
}

impl Default for JsonLine {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonLine {
    /// An empty object, opened.
    pub fn new() -> Self {
        JsonLine {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        json_escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        json_escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, name: &str, value: u64) {
        use fmt::Write as _;
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a float field (JSON number; non-finite values become 0).
    pub fn f64_field(&mut self, name: &str, value: f64) {
        use fmt::Write as _;
        self.key(name);
        let value = if value.is_finite() { value } else { 0.0 };
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds a pre-rendered JSON value verbatim (for nesting one object
    /// inside another). The caller is responsible for `value` being valid
    /// JSON — pass the output of another [`JsonLine::finish`].
    pub fn raw_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push_str(value);
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A shared sink for JSON-lines events (the access log, lifecycle
/// events). Writes are serialized by a mutex and line-buffered;
/// [`emit`](EventLog::emit) is best-effort — a full disk must never take
/// the serving path down with it.
pub struct EventLog {
    writer: Mutex<LineWriter<Box<dyn Write + Send>>>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog").finish_non_exhaustive()
    }
}

impl EventLog {
    /// An event log over an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        EventLog {
            writer: Mutex::new(LineWriter::new(writer)),
        }
    }

    /// An event log appending to standard output.
    pub fn stdout() -> Self {
        Self::to_writer(Box::new(io::stdout()))
    }

    /// An event log appending to the file at `path` (created if missing).
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Writes one event line (the newline is added here). Errors are
    /// swallowed by design: observability must not fail the observed.
    pub fn emit(&self, line: &str) {
        let mut writer = self.writer.lock();
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// Microseconds since the Unix epoch (0 if the clock is before 1970,
/// saturating at `u64::MAX`). This is the `ts` field of every event-log
/// line and the wall-clock anchor of a [`RingSnapshot`].
pub fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Microseconds on the global flight recorder's monotonic clock — the
/// time base every [`SpanRecord::start_us`] is expressed in. Use this to
/// capture a start time for a later [`record_span`] call.
pub fn monotonic_us() -> u64 {
    FlightRecorder::global().now_us()
}

/// Default slot count of the global flight recorder: enough for a few
/// thousand spans (a busy second of serving) in ~300 KiB of memory.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Bytes of label stored inline in a [`SpanRecord`] (longer labels are
/// truncated on a UTF-8 character boundary).
pub const LABEL_BYTES: usize = 24;

/// What a span measures. `name()` is the Chrome-trace event name prefix,
/// `category()` the `cat` field Perfetto groups tracks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole HTTP request, first byte to response written.
    Request,
    /// One analysis computed by `Study::run_all` or a report render.
    Analysis,
    /// A lazy `CountIndex` build.
    IndexBuild,
    /// Ingestion: carving `<entry>` elements from the feed stream.
    IngestCarve,
    /// Ingestion: parsing carved entries (worker-queue wait included).
    IngestParse,
    /// Ingestion: inserting parsed entries in feed order.
    IngestInsert,
    /// Writing a tenant snapshot to disk.
    SnapshotWrite,
    /// Loading a tenant snapshot from disk.
    SnapshotLoad,
    /// Appending a request's feed bytes to the ingestion journal.
    JournalAppend,
    /// Replaying a journal at boot.
    JournalReplay,
    /// Whole boot-recovery pass over a data directory.
    Recovery,
    /// Render-cache lookup on an analysis route.
    CacheLookup,
    /// Rendering an analysis document (cache miss).
    Render,
    /// An injected fault fired at a failpoint site (`osdiv_core::fault`).
    Fault,
}

impl SpanKind {
    /// The event-name prefix (`analysis`, `ingest_parse`, …).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Analysis => "analysis",
            SpanKind::IndexBuild => "index_build",
            SpanKind::IngestCarve => "ingest_carve",
            SpanKind::IngestParse => "ingest_parse",
            SpanKind::IngestInsert => "ingest_insert",
            SpanKind::SnapshotWrite => "snapshot_write",
            SpanKind::SnapshotLoad => "snapshot_load",
            SpanKind::JournalAppend => "journal_append",
            SpanKind::JournalReplay => "journal_replay",
            SpanKind::Recovery => "recovery",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Render => "render",
            SpanKind::Fault => "fault",
        }
    }

    /// The Chrome-trace `cat` field.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Request | SpanKind::CacheLookup | SpanKind::Render => "serve",
            SpanKind::Analysis | SpanKind::IndexBuild => "compute",
            SpanKind::IngestCarve | SpanKind::IngestParse | SpanKind::IngestInsert => "ingest",
            SpanKind::SnapshotWrite
            | SpanKind::SnapshotLoad
            | SpanKind::JournalAppend
            | SpanKind::JournalReplay
            | SpanKind::Recovery => "persist",
            SpanKind::Fault => "fault",
        }
    }
}

/// One recorded span. `id == 0` marks an empty ring slot; `parent == 0`
/// means "root" and `trace == 0` means "no owning request". `start_us` is
/// on the recorder's monotonic clock (see [`monotonic_us`]); add the
/// snapshot's `epoch_unix_us` for wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Unique span id (never 0 for a real record).
    pub id: u64,
    /// The enclosing span's id, or 0 at the root.
    pub parent: u64,
    /// The owning request's numeric trace id, or 0 outside a request.
    pub trace: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Recorder-assigned thread id (stable per OS thread, first-use order).
    pub tid: u64,
    /// Start offset on the recorder's monotonic clock, microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// NUL-padded UTF-8 label (tenant, analysis id, file name…).
    pub label: [u8; LABEL_BYTES],
}

impl SpanRecord {
    fn empty() -> Self {
        SpanRecord {
            id: 0,
            parent: 0,
            trace: 0,
            kind: SpanKind::Request,
            tid: 0,
            start_us: 0,
            dur_us: 0,
            label: [0; LABEL_BYTES],
        }
    }

    /// The label with NUL padding trimmed (lossy if truncation split a
    /// character, which [`span`] avoids by cutting on a boundary).
    pub fn label_str(&self) -> String {
        let used = self
            .label
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(LABEL_BYTES);
        match self.label.get(..used) {
            Some(bytes) => String::from_utf8_lossy(bytes).into_owned(),
            None => String::new(),
        }
    }

    /// The Chrome-trace event name: `kind` alone, or `kind:label`.
    pub fn display_name(&self) -> String {
        let label = self.label_str();
        if label.is_empty() {
            self.kind.name().to_string()
        } else {
            format!("{}:{label}", self.kind.name())
        }
    }
}

/// Packs a label into its inline array, truncating on a char boundary.
fn pack_label(label: &str) -> [u8; LABEL_BYTES] {
    let mut out = [0u8; LABEL_BYTES];
    let mut cut = label.len().min(LABEL_BYTES);
    while cut > 0 && !label.is_char_boundary(cut) {
        cut = cut.saturating_sub(1);
    }
    if let (Some(src), Some(dst)) = (label.as_bytes().get(..cut), out.get_mut(..cut)) {
        dst.copy_from_slice(src);
    }
    out
}

/// Formats a numeric trace id the way the server prints `X-Request-Id`:
/// `{prefix:08x}-{sequence:08x}` over the high and low 32 bits.
pub fn format_trace_id(trace: u64) -> String {
    format!("{:08x}-{:08x}", (trace >> 32) as u32, trace as u32)
}

/// The span ring buffer (see the module docs). One global instance backs
/// the [`span`]/[`record_span`] free functions; tests build private rings
/// with [`with_capacity`](FlightRecorder::with_capacity).
pub struct FlightRecorder {
    slots: Box<[Mutex<SpanRecord>]>,
    claims: AtomicU64,
    contended: AtomicU64,
    next_id: AtomicU64,
    epoch: Instant,
    epoch_unix_us: u64,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("total", &self.claims.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A ring with `capacity` slots (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| Mutex::new(SpanRecord::empty()))
                .collect(),
            claims: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            epoch_unix_us: unix_micros(),
        }
    }

    /// The process-wide recorder every [`span`] feeds.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_RING_CAPACITY))
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Mints the next unique span id (monotonic, never 0).
    pub fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds since this recorder's epoch (monotonic).
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Wall-clock anchor: [`unix_micros`] at construction time.
    pub fn epoch_unix_us(&self) -> u64 {
        self.epoch_unix_us
    }

    /// Stores one record. Wait-free: the slot is claimed with one
    /// `fetch_add`, and if its lock is momentarily held (a reader, or a
    /// writer a whole ring-lap behind) the write is skipped and counted
    /// under [`contended`](FlightRecorder::contended) rather than waited
    /// for. Each slot keeps exactly one of its claimants, so wrap-around
    /// loss stays `total - capacity` regardless of who wins.
    pub fn record(&self, record: SpanRecord) {
        let claim = self.claims.fetch_add(1, Ordering::Relaxed);
        let slot = (claim % self.slots.len() as u64) as usize;
        if let Some(cell) = self.slots.get(slot) {
            if let Some(mut held) = cell.try_lock() {
                *held = record;
            } else {
                self.contended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Spans ever recorded (including those since overwritten).
    pub fn recorded_total(&self) -> u64 {
        self.claims.load(Ordering::Relaxed)
    }

    /// Spans lost to ring wrap-around — exact, because every slot retains
    /// exactly one of its claimants: `total - capacity`, floored at 0.
    pub fn dropped(&self) -> u64 {
        self.recorded_total()
            .saturating_sub(self.slots.len() as u64)
    }

    /// Writes skipped because the claimed slot's lock was held (the
    /// overwritten slot then keeps its previous record; nothing blocks).
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// A sorted point-in-time copy of the live ring. Cost is O(capacity)
    /// — independent of how many spans were ever recorded — and the
    /// snapshot's `work` field proves it.
    pub fn snapshot(&self) -> RingSnapshot {
        let mut records = Vec::with_capacity(self.slots.len());
        let mut work = 0u64;
        for cell in self.slots.iter() {
            work += 1;
            let copied = *cell.lock();
            if copied.id != 0 {
                records.push(copied);
            }
        }
        records.sort_by_key(|r| (r.start_us, r.id));
        RingSnapshot {
            records,
            total: self.recorded_total(),
            dropped: self.dropped(),
            contended: self.contended(),
            work,
            epoch_unix_us: self.epoch_unix_us,
        }
    }
}

/// A point-in-time copy of a [`FlightRecorder`]'s ring, sorted by start
/// time, plus its counters. Produced in O(ring capacity).
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Live records, sorted by `(start_us, id)`.
    pub records: Vec<SpanRecord>,
    /// Spans ever recorded (claims), including overwritten ones.
    pub total: u64,
    /// Spans lost to wrap-around (`total - capacity`, floored at 0).
    pub dropped: u64,
    /// Writes skipped on a momentarily held slot lock.
    pub contended: u64,
    /// Slots examined to build this snapshot (== ring capacity) — the
    /// complexity-guard work counter.
    pub work: u64,
    /// Wall-clock microseconds at recorder construction; add to
    /// `start_us` for absolute time.
    pub epoch_unix_us: u64,
}

impl RingSnapshot {
    /// Renders the snapshot as Chrome-trace-event JSON (the
    /// `{"traceEvents":[…]}` format `chrome://tracing` and Perfetto
    /// load). Every event is a complete (`"ph":"X"`) span carrying
    /// `args.span`/`args.parent` for nesting and, inside a request,
    /// `args.request` formatted exactly like the `X-Request-Id` header so
    /// traces join to access-log lines.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.records.len().saturating_mul(192) + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for record in &self.records {
            if !first {
                out.push(',');
            }
            first = false;
            let mut args = JsonLine::new();
            args.u64_field("span", record.id);
            args.u64_field("parent", record.parent);
            if record.trace != 0 {
                args.str_field("request", &format_trace_id(record.trace));
            }
            let mut event = JsonLine::new();
            event.str_field("name", &record.display_name());
            event.str_field("cat", record.kind.category());
            event.str_field("ph", "X");
            event.u64_field("ts", record.start_us);
            event.u64_field("dur", record.dur_us);
            event.u64_field("pid", 1);
            event.u64_field("tid", record.tid);
            event.raw_field("args", &args.finish());
            out.push_str(&event.finish());
        }
        out.push_str("],\"otherData\":{");
        let mut other = JsonLine::new();
        other.u64_field("total", self.total);
        other.u64_field("dropped", self.dropped);
        other.u64_field("contended", self.contended);
        other.u64_field("work", self.work);
        other.u64_field("epoch_unix_us", self.epoch_unix_us);
        let rendered = other.finish();
        out.push_str(rendered.trim_start_matches('{').trim_end_matches('}'));
        out.push_str("}}");
        out
    }
}

thread_local! {
    /// Stack of `(span id, trace id)` context frames for this thread.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// This thread's recorder tid (0 = not yet assigned).
    static THREAD_TID: Cell<u64> = const { Cell::new(0) };
}

/// Next recorder thread id (ids are assigned on first record per thread).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn current_tid() -> u64 {
    THREAD_TID.with(|cell| {
        let mut tid = cell.get();
        if tid == 0 {
            tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(tid);
        }
        tid
    })
}

/// The calling thread's current `(span id, trace id)` context — what a
/// new span would nest under. `(0, 0)` outside any span.
pub fn current_context() -> (u64, u64) {
    SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or((0, 0)))
}

/// Opens a span nested under the calling thread's current context and
/// returns the guard that records it (into the global recorder) on drop.
pub fn span(kind: SpanKind, label: &str) -> SpanGuard {
    let (parent, trace) = current_context();
    span_with_parent(kind, label, parent, trace)
}

/// Opens a span under an explicit parent/trace — for work handed to
/// another thread (e.g. `run_all`'s scoped workers), where thread-local
/// context does not carry over.
pub fn span_with_parent(kind: SpanKind, label: &str, parent: u64, trace: u64) -> SpanGuard {
    let recorder = FlightRecorder::global();
    let id = recorder.next_span_id();
    SPAN_STACK.with(|stack| stack.borrow_mut().push((id, trace)));
    SpanGuard {
        recorder,
        id,
        parent,
        trace,
        kind,
        label: pack_label(label),
        start_us: recorder.now_us(),
    }
}

/// Records one already-measured span (explicit start and duration on the
/// recorder clock — see [`monotonic_us`]) under the calling thread's
/// current context. Returns the new span's id.
pub fn record_span(kind: SpanKind, label: &str, start_us: u64, dur_us: u64) -> u64 {
    let recorder = FlightRecorder::global();
    let (parent, trace) = current_context();
    let id = recorder.next_span_id();
    recorder.record(SpanRecord {
        id,
        parent,
        trace,
        kind,
        tid: current_tid(),
        start_us,
        dur_us,
        label: pack_label(label),
    });
    id
}

/// Records a request **root** span under a pre-minted id (from
/// [`FlightRecorder::next_span_id`]): the server opens a [`trace_scope`]
/// with the id so child spans nest under it, measures the request from
/// head parse through response write, and only then records the root —
/// after its children, which is fine, because Chrome-trace nesting is
/// reconstructed from `args.parent`, not record order.
pub fn record_request_span(id: u64, trace: u64, label: &str, start_us: u64, dur_us: u64) {
    FlightRecorder::global().record(SpanRecord {
        id,
        parent: 0,
        trace,
        kind: SpanKind::Request,
        tid: current_tid(),
        start_us,
        dur_us,
        label: pack_label(label),
    });
}

/// Pushes a pre-minted span context (id + trace) onto the calling
/// thread's stack **without** recording anything — the server uses this
/// to make router- and ingester-side spans nest under the request span it
/// records itself after the response is written.
pub fn trace_scope(span_id: u64, trace: u64) -> TraceScope {
    SPAN_STACK.with(|stack| stack.borrow_mut().push((span_id, trace)));
    TraceScope { span_id }
}

/// An open span: measures from construction to drop, then records into
/// the global [`FlightRecorder`]. Create with [`span`] or
/// [`span_with_parent`].
#[derive(Debug)]
pub struct SpanGuard {
    recorder: &'static FlightRecorder,
    id: u64,
    parent: u64,
    trace: u64,
    kind: SpanKind,
    label: [u8; LABEL_BYTES],
    start_us: u64,
}

impl SpanGuard {
    /// This span's id (pass to [`span_with_parent`] on another thread).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace id this span inherited.
    pub fn trace(&self) -> u64 {
        self.trace
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut frames = stack.borrow_mut();
            if frames.last().map(|&(id, _)| id) == Some(self.id) {
                frames.pop();
            }
        });
        let ended = self.recorder.now_us();
        self.recorder.record(SpanRecord {
            id: self.id,
            parent: self.parent,
            trace: self.trace,
            kind: self.kind,
            tid: current_tid(),
            start_us: self.start_us,
            dur_us: ended.saturating_sub(self.start_us),
            label: self.label,
        });
    }
}

/// A context frame pushed by [`trace_scope`]; pops on drop, records
/// nothing.
#[derive(Debug)]
pub struct TraceScope {
    span_id: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut frames = stack.borrow_mut();
            if frames.last().map(|&(id, _)| id) == Some(self.span_id) {
                frames.pop();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_and_log_slots_roundtrip_their_limits() {
        for slot in 0..BUCKET_TABLE {
            let limit = bucket_limit(slot);
            assert_eq!(
                bucket_slot(limit.min(MAX_TRACKED_US)),
                if limit >= MAX_TRACKED_US {
                    bucket_slot(MAX_TRACKED_US)
                } else {
                    slot
                },
                "slot {slot} limit {limit}"
            );
        }
    }

    #[test]
    fn bucket_limits_are_strictly_increasing() {
        let mut previous = None;
        for slot in 0..BUCKET_TABLE {
            let limit = bucket_limit(slot);
            if let Some(prev) = previous {
                assert!(limit > prev, "slot {slot}: {limit} <= {prev}");
            }
            previous = Some(limit);
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Above the linear region, every bucket's width is at most 1/64
        // of its lower edge.
        for slot in LINEAR_BUCKETS..BUCKET_TABLE {
            let hi = bucket_limit(slot);
            let lo = bucket_limit(slot - 1) + 1;
            let width = hi - lo + 1;
            assert!(
                width * 64 <= lo + 64,
                "slot {slot}: width {width} vs lower edge {lo}"
            );
        }
    }

    #[test]
    fn quantiles_and_sum_are_exact_on_small_values() {
        let hist = LatencyHistogram::new();
        for v in [1u64, 2, 3, 10, 63] {
            hist.record_us(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.sum_us(), 79);
        assert_eq!(snap.quantile_us(0.0), 1);
        assert_eq!(snap.quantile_us(0.5), 3);
        assert_eq!(snap.quantile_us(1.0), 63);
    }

    #[test]
    fn values_past_the_cap_clamp_but_keep_their_exact_sum() {
        let hist = LatencyHistogram::new();
        hist.record_us(10 * MAX_TRACKED_US);
        let snap = hist.snapshot();
        assert_eq!(snap.total(), 1);
        assert_eq!(snap.sum_us(), 10 * MAX_TRACKED_US);
        assert!(snap.quantile_us(1.0) <= bucket_limit(BUCKET_TABLE - 1));
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_consistent() {
        let hist = LatencyHistogram::new();
        for v in [3u64, 17, 90, 1_500, 40_000, 2_000_000] {
            hist.record_us(v);
        }
        let mut out = String::new();
        hist.snapshot()
            .render_prometheus("test_hist", "route=\"x\"", &mut out);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("test_hist_bucket{route=\"x\",le=\"") {
                let value: u64 = rest
                    .split("\"} ")
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .expect("bucket line parses");
                assert!(value >= last, "non-monotone at {line:?}");
                last = value;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, PROMETHEUS_BOUNDS_US.len() + 1);
        assert_eq!(last, 6, "+Inf equals the count");
        assert!(out.contains("test_hist_count{route=\"x\"} 6"));
        assert!(out.contains("test_hist_sum{route=\"x\"} 2.04161"));
    }

    #[test]
    fn seconds_formatting_has_no_float_roundtrip() {
        let mut out = String::new();
        push_seconds(&mut out, 17);
        out.push(' ');
        push_seconds(&mut out, 2_500_000);
        out.push(' ');
        push_seconds(&mut out, 60_000_000);
        assert_eq!(out, "0.000017 2.5 60");
    }

    #[test]
    fn json_lines_escape_hostile_strings() {
        let mut line = JsonLine::new();
        line.str_field("path", "/v1/\"evil\"\\\n\u{1}");
        line.u64_field("status", 400);
        line.bool_field("slow", false);
        assert_eq!(
            line.finish(),
            "{\"path\":\"/v1/\\\"evil\\\"\\\\\\n\\u0001\",\"status\":400,\"slow\":false}"
        );
    }

    #[test]
    fn ring_keeps_newest_records_and_counts_drops_exactly() {
        let ring = FlightRecorder::with_capacity(4);
        for i in 1..=10u64 {
            let mut record = SpanRecord::empty();
            record.id = ring.next_span_id();
            record.start_us = i;
            ring.record(record);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.total, 10);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.contended, 0);
        assert_eq!(snap.work, 4);
        let starts: Vec<u64> = snap.records.iter().map(|r| r.start_us).collect();
        assert_eq!(starts, vec![7, 8, 9, 10], "newest four survive");
    }

    #[test]
    fn dropped_is_zero_under_capacity() {
        let ring = FlightRecorder::with_capacity(8);
        let mut record = SpanRecord::empty();
        record.id = ring.next_span_id();
        ring.record(record);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.recorded_total(), 1);
    }

    #[test]
    fn labels_truncate_on_char_boundaries() {
        let exact = pack_label("abc");
        let mut record = SpanRecord::empty();
        record.id = 1;
        record.label = exact;
        assert_eq!(record.label_str(), "abc");
        // 23 ASCII bytes then a 2-byte char: the char would straddle the
        // 24-byte edge and must be dropped whole.
        let long = format!("{}é", "x".repeat(23));
        record.label = pack_label(&long);
        assert_eq!(record.label_str(), "x".repeat(23));
    }

    #[test]
    fn chrome_trace_renders_events_with_request_join_key() {
        let ring = FlightRecorder::with_capacity(8);
        let trace = (0xabcd_1234u64 << 32) | 7;
        let mut record = SpanRecord::empty();
        record.id = ring.next_span_id();
        record.trace = trace;
        record.kind = SpanKind::IngestParse;
        record.label = pack_label("smoke");
        record.start_us = 5;
        record.dur_us = 11;
        record.tid = 3;
        ring.record(record);
        let json = ring.snapshot().to_chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"ingest_parse:smoke\""));
        assert!(json.contains("\"cat\":\"ingest\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":5,\"dur\":11"));
        assert!(json.contains("\"request\":\"abcd1234-00000007\""));
        assert!(json.contains("\"otherData\":{\"total\":1,\"dropped\":0"));
    }

    #[test]
    fn span_guards_nest_through_thread_local_context() {
        let outer = span(SpanKind::Request, "outer");
        let outer_id = outer.id();
        assert_eq!(current_context().0, outer_id);
        let inner = span(SpanKind::Render, "inner");
        let inner_id = inner.id();
        drop(inner);
        drop(outer);
        assert_eq!(current_context(), (0, 0));
        let snap = FlightRecorder::global().snapshot();
        let find = |id: u64| snap.records.iter().find(|r| r.id == id);
        let inner_rec = find(inner_id).expect("inner span recorded");
        assert_eq!(inner_rec.parent, outer_id);
        let outer_rec = find(outer_id).expect("outer span recorded");
        assert_eq!(outer_rec.parent, 0);
    }

    #[test]
    fn trace_scope_sets_context_without_recording() {
        let recorder = FlightRecorder::global();
        let minted = recorder.next_span_id();
        {
            let _scope = trace_scope(minted, 42);
            assert_eq!(current_context(), (minted, 42));
            let child = record_span(SpanKind::JournalAppend, "t", 0, 1);
            let snap = recorder.snapshot();
            let rec = snap
                .records
                .iter()
                .find(|r| r.id == child)
                .expect("child recorded");
            assert_eq!(rec.parent, minted);
            assert_eq!(rec.trace, 42);
        }
        assert_eq!(current_context(), (0, 0));
        // The scope itself never records: no ring record carries its id.
        let snap = recorder.snapshot();
        assert!(snap.records.iter().all(|r| r.id != minted));
    }

    #[test]
    fn event_log_writes_one_line_per_emit() {
        use std::sync::{Arc, Mutex as StdMutex};

        #[derive(Clone)]
        struct Sink(Arc<StdMutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let bytes = Arc::new(StdMutex::new(Vec::new()));
        let log = EventLog::to_writer(Box::new(Sink(Arc::clone(&bytes))));
        log.emit("{\"a\":1}");
        log.emit("{\"b\":2}");
        log.flush();
        let written = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        assert_eq!(written, "{\"a\":1}\n{\"b\":2}\n");
    }
}
