//! Deprecated compatibility layer over the renderer-based API.
//!
//! The free functions of this module predate the [`Study`](crate::Study)
//! session and the [`Render`](crate::render::Render) sinks; each one now
//! delegates to the table builder that moved into its analysis's module
//! (`ValidityDistribution::to_table`, `PairwiseAnalysis::to_table3`, …).
//! They are kept for one release so downstream code can migrate — see
//! `MIGRATION.md` at the repository root for the old → new mapping.

#![allow(deprecated)]

use nvd_model::{OsDistribution, OsFamily, OsPart};
use tabular::{SeriesSet, TextTable};

use crate::classes::{ClassDistribution, ValidityDistribution};
use crate::dataset::StudyDataset;
use crate::kway::KWayAnalysis;
use crate::pairwise::PairwiseAnalysis;
use crate::releases::ReleaseAnalysis;
use crate::render::Format;
use crate::selection::ConfigurationOutcome;
use crate::split::SplitMatrix;
use crate::study::Study;
use crate::temporal::TemporalAnalysis;

/// Renders Table I (distribution of OS vulnerabilities by validity).
#[deprecated(since = "0.2.0", note = "use `ValidityDistribution::to_table`")]
pub fn table1(distribution: &ValidityDistribution) -> TextTable {
    distribution.to_table()
}

/// Renders Table II (vulnerabilities per OS component class).
#[deprecated(since = "0.2.0", note = "use `ClassDistribution::to_table`")]
pub fn table2(distribution: &ClassDistribution) -> TextTable {
    distribution.to_table()
}

/// Renders Table III (pairwise common vulnerabilities under the three
/// filters).
#[deprecated(since = "0.2.0", note = "use `PairwiseAnalysis::to_table3`")]
pub fn table3(analysis: &PairwiseAnalysis) -> TextTable {
    analysis.to_table3()
}

/// Renders Table IV (common vulnerabilities on Isolated Thin Servers,
/// broken down by OS part).
#[deprecated(since = "0.2.0", note = "use `PairwiseAnalysis::to_table4`")]
pub fn table4(analysis: &PairwiseAnalysis) -> TextTable {
    analysis.to_table4()
}

/// Renders Table V (history vs observed common vulnerabilities).
#[deprecated(since = "0.2.0", note = "use `SplitMatrix::to_table`")]
pub fn table5(matrix: &SplitMatrix) -> TextTable {
    matrix.to_table()
}

/// Renders Table VI (common vulnerabilities between OS releases).
#[deprecated(since = "0.2.0", note = "use `ReleaseAnalysis::to_table`")]
pub fn table6(analysis: &ReleaseAnalysis) -> TextTable {
    analysis.to_table()
}

/// Renders one family sub-plot of Figure 2 as a CSV series set.
#[deprecated(since = "0.2.0", note = "use `TemporalAnalysis::family_series`")]
pub fn figure2(temporal: &TemporalAnalysis, family: OsFamily) -> SeriesSet {
    temporal.family_series(family)
}

/// Renders Figure 3 (replica configurations, history vs observed counts).
#[deprecated(since = "0.2.0", note = "use `selection::figure3_table`")]
pub fn figure3(outcomes: &[ConfigurationOutcome]) -> TextTable {
    crate::selection::figure3_table(outcomes)
}

/// Renders the k-OS combination analysis (Section IV-B).
#[deprecated(since = "0.2.0", note = "use `KWayAnalysis::to_table`")]
pub fn kway_table(analysis: &KWayAnalysis) -> TextTable {
    analysis.to_table()
}

/// Renders the Section IV-E summary findings.
#[deprecated(since = "0.2.0", note = "use `PairwiseAnalysis::summary_table`")]
pub fn summary_table(study: &StudyDataset, analysis: &PairwiseAnalysis) -> TextTable {
    let driver_share = ClassDistribution::compute(study).class_percentage(OsPart::Driver);
    analysis.summary_table(study.valid_count(), driver_share)
}

/// Renders the whole study as one multi-section plain-text report.
///
/// The output is byte-identical to `Study::report(Format::Text)`; prefer
/// that method — it memoizes the analyses and runs them in parallel via
/// `Study::run_all`, while this shim clones the dataset into a throwaway
/// session.
#[deprecated(since = "0.2.0", note = "use `Study::report(Format::Text)`")]
pub fn full_report(study: &StudyDataset) -> String {
    let session = Study::new(study.clone());
    session
        .report(Format::Text)
        .expect("default analysis configurations are valid")
}

/// Convenience: the number of OSes in the study (used by callers that size
/// tables without importing `nvd_model`).
pub fn os_count() -> usize {
    OsDistribution::COUNT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ServerProfile;
    use crate::selection::ReplicaSelection;
    use datagen::CalibratedGenerator;

    fn calibrated_study() -> StudyDataset {
        let dataset = CalibratedGenerator::new(12).generate();
        StudyDataset::from_entries(dataset.entries())
    }

    #[test]
    fn table_renderers_produce_the_expected_row_counts() {
        let study = calibrated_study();
        let validity = ValidityDistribution::compute(&study);
        assert_eq!(table1(&validity).row_count(), 12); // 11 OSes + distinct row
        let classes = ClassDistribution::compute(&study);
        assert_eq!(table2(&classes).row_count(), 12); // 11 OSes + percentage row
        let pairwise = PairwiseAnalysis::compute(&study);
        assert_eq!(table3(&pairwise).row_count(), 55);
        assert!(table4(&pairwise).row_count() >= 30);
        let matrix = SplitMatrix::compute(&study);
        assert_eq!(table5(&matrix).row_count(), 8);
        let releases = ReleaseAnalysis::compute(&study);
        assert_eq!(table6(&releases).row_count(), 15);
    }

    #[test]
    fn table5_rendering_has_diagonal_markers() {
        let study = calibrated_study();
        let matrix = SplitMatrix::compute(&study);
        let rendered = table5(&matrix).render();
        assert_eq!(rendered.matches("###").count(), 8);
    }

    #[test]
    fn figure_renderers_cover_all_series() {
        let study = calibrated_study();
        let temporal = TemporalAnalysis::compute(&study);
        let bsd = figure2(&temporal, OsFamily::Bsd);
        assert_eq!(bsd.series().len(), 3);
        let selection = ReplicaSelection::new(&study);
        let fig3 = figure3(&selection.figure3());
        assert_eq!(fig3.row_count(), 5);
        assert!(fig3.render().contains("Set4"));
    }

    #[test]
    fn kway_and_summary_tables_render() {
        let study = calibrated_study();
        let kway = KWayAnalysis::compute(&study, ServerProfile::FatServer, 9);
        let rendered = kway_table(&kway).render();
        assert!(rendered.contains("worst group"));
        let pairwise = PairwiseAnalysis::compute(&study);
        let summary = summary_table(&study, &pairwise).render();
        assert!(summary.contains("Average reduction"));
        assert!(summary.contains('%'));
    }

    #[test]
    fn full_report_contains_every_section() {
        let study = calibrated_study();
        let report = full_report(&study);
        for section in [
            "Table I",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Table VI",
            "Figure 2 (BSD family)",
            "Figure 2 (Windows family)",
            "k-OS combinations",
            "summary",
        ] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert_eq!(os_count(), 11);
    }

    #[test]
    fn full_report_matches_the_session_report() {
        let study = calibrated_study();
        let session = Study::new(study.clone());
        assert_eq!(full_report(&study), session.report(Format::Text).unwrap());
    }
}
