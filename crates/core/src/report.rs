//! Rendering the analyses as text tables and CSV series, in the layout of
//! the paper's tables and figures.

use nvd_model::{OsDistribution, OsFamily, OsPart};
use tabular::{SeriesSet, TextTable};

use crate::classes::{ClassDistribution, ValidityDistribution};
use crate::dataset::{Period, ServerProfile, StudyDataset};
use crate::kway::KWayAnalysis;
use crate::pairwise::PairwiseAnalysis;
use crate::releases::ReleaseAnalysis;
use crate::selection::ConfigurationOutcome;
use crate::split::SplitMatrix;
use crate::temporal::TemporalAnalysis;

/// Renders Table I (distribution of OS vulnerabilities by validity).
pub fn table1(distribution: &ValidityDistribution) -> TextTable {
    let mut table = TextTable::new(["OS", "Valid", "Unknown", "Unspecified", "Disputed"]);
    for (os, counts) in distribution.per_os() {
        table.push_row([
            os.short_name().to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
        ]);
    }
    let distinct = distribution.distinct();
    table.push_row([
        "# distinct vuln.".to_string(),
        distinct[0].to_string(),
        distinct[1].to_string(),
        distinct[2].to_string(),
        distinct[3].to_string(),
    ]);
    table
}

/// Renders Table II (vulnerabilities per OS component class).
pub fn table2(distribution: &ClassDistribution) -> TextTable {
    let mut table = TextTable::new(["OS", "Driver", "Kernel", "Sys. Soft.", "App.", "Total"]);
    for (os, counts) in distribution.per_os() {
        let total: usize = counts.iter().sum();
        table.push_row([
            os.short_name().to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            total.to_string(),
        ]);
    }
    let percentages = distribution.class_percentages();
    table.push_row([
        "% Total".to_string(),
        format!("{:.1}%", percentages[0]),
        format!("{:.1}%", percentages[1]),
        format!("{:.1}%", percentages[2]),
        format!("{:.1}%", percentages[3]),
        String::new(),
    ]);
    table
}

/// Renders Table III (pairwise common vulnerabilities under the three
/// filters).
pub fn table3(analysis: &PairwiseAnalysis) -> TextTable {
    let mut table = TextTable::new([
        "Pair (A-B)",
        "v(A) all",
        "v(B) all",
        "v(AB) all",
        "v(A) noapp",
        "v(B) noapp",
        "v(AB) noapp",
        "v(A) its",
        "v(B) its",
        "v(AB) its",
    ]);
    for row in analysis.rows() {
        table.push_row([
            format!("{}-{}", row.a.short_name(), row.b.short_name()),
            row.v_a.0.to_string(),
            row.v_b.0.to_string(),
            row.v_ab.0.to_string(),
            row.v_a.1.to_string(),
            row.v_b.1.to_string(),
            row.v_ab.1.to_string(),
            row.v_a.2.to_string(),
            row.v_b.2.to_string(),
            row.v_ab.2.to_string(),
        ]);
    }
    table
}

/// Renders Table IV (common vulnerabilities on Isolated Thin Servers,
/// broken down by OS part).
pub fn table4(analysis: &PairwiseAnalysis) -> TextTable {
    let mut table = TextTable::new(["OS Pairs", "Driver", "Kernel", "Sys. Soft.", "Total"]);
    for row in analysis.part_breakdown() {
        table.push_row([
            format!("{}-{}", row.a.short_name(), row.b.short_name()),
            row.driver.to_string(),
            row.kernel.to_string(),
            row.system_software.to_string(),
            row.total().to_string(),
        ]);
    }
    table
}

/// Renders Table V (history vs observed common vulnerabilities): history
/// counts above the diagonal, observed counts below, `###` on the diagonal.
pub fn table5(matrix: &SplitMatrix) -> TextTable {
    let oses = matrix.oses();
    let mut header: Vec<String> = vec!["".to_string()];
    header.extend(oses.iter().map(|os| os.short_name().to_string()));
    let mut table = TextTable::new(header);
    for (i, &row_os) in oses.iter().enumerate() {
        let mut cells = vec![row_os.short_name().to_string()];
        for (j, &col_os) in oses.iter().enumerate() {
            let cell = if i == j {
                "###".to_string()
            } else if j > i {
                matrix
                    .count(row_os, col_os, Period::History)
                    .expect("matrix covers its own OSes")
                    .to_string()
            } else {
                matrix
                    .count(row_os, col_os, Period::Observed)
                    .expect("matrix covers its own OSes")
                    .to_string()
            };
            cells.push(cell);
        }
        table.push_row(cells);
    }
    table
}

/// Renders Table VI (common vulnerabilities between OS releases).
pub fn table6(analysis: &ReleaseAnalysis) -> TextTable {
    let mut table = TextTable::new(["OS Versions", "Total"]);
    for row in analysis.rows() {
        table.push_row([
            format!("{}-{}", row.a.label(), row.b.label()),
            row.common.to_string(),
        ]);
    }
    table
}

/// Renders one family sub-plot of Figure 2 as a CSV series set.
pub fn figure2(temporal: &TemporalAnalysis, family: OsFamily) -> SeriesSet {
    temporal.family_series(family)
}

/// Renders Figure 3 (replica configurations, history vs observed counts).
pub fn figure3(outcomes: &[ConfigurationOutcome]) -> TextTable {
    let mut table = TextTable::new(["Configuration", "OSes", "History", "Observed"]);
    for outcome in outcomes {
        let oses = if outcome.oses.len() == 1 {
            format!("{} x4 (homogeneous)", outcome.oses)
        } else {
            outcome.oses.to_string()
        };
        table.push_row([
            outcome.label.clone(),
            oses,
            outcome.history.to_string(),
            outcome.observed.to_string(),
        ]);
    }
    table
}

/// Renders the k-OS combination analysis (Section IV-B).
pub fn kway_table(analysis: &KWayAnalysis) -> TextTable {
    let mut table = TextTable::new([
        "k",
        "vulns affecting >= k OSes",
        "best group",
        "best count",
        "worst group",
        "worst count",
    ]);
    for row in analysis.rows() {
        let (best_group, best_count) = row
            .best_group
            .map(|(set, count)| (set.to_string(), count.to_string()))
            .unwrap_or_default();
        let (worst_group, worst_count) = row
            .worst_group
            .map(|(set, count)| (set.to_string(), count.to_string()))
            .unwrap_or_default();
        table.push_row([
            row.k.to_string(),
            row.vulnerabilities_at_least_k.to_string(),
            best_group,
            best_count,
            worst_group,
            worst_count,
        ]);
    }
    table
}

/// Renders the Section IV-E summary findings.
pub fn summary_table(study: &StudyDataset, analysis: &PairwiseAnalysis) -> TextTable {
    let summary = analysis.summary();
    let mut table = TextTable::new(["Finding", "Value"]);
    table.push_row([
        "Distinct valid vulnerabilities".to_string(),
        study.valid_count().to_string(),
    ]);
    table.push_row([
        "OS pairs analysed".to_string(),
        summary.pair_count.to_string(),
    ]);
    table.push_row([
        "Average reduction Fat -> Isolated Thin (per pair)".to_string(),
        format!("{:.0}%", summary.average_reduction * 100.0),
    ]);
    table.push_row([
        "Total reduction Fat -> Isolated Thin (summed)".to_string(),
        format!("{:.0}%", summary.total_reduction * 100.0),
    ]);
    table.push_row([
        "Pairs with <= 1 common vuln (Isolated Thin)".to_string(),
        summary.pairs_with_at_most_one_common.to_string(),
    ]);
    table.push_row([
        "Pairs with no common vuln at all".to_string(),
        summary.pairs_with_no_common_at_all.to_string(),
    ]);
    let driver_share = ClassDistribution::compute(study).class_percentages()[OsPart::ALL
        .iter()
        .position(|p| *p == OsPart::Driver)
        .expect("driver class exists")];
    table.push_row([
        "Driver share of all vulnerabilities".to_string(),
        format!("{driver_share:.1}%"),
    ]);
    table
}

/// Renders the whole study as one multi-section plain-text report
/// (convenient for the example binaries and for snapshotting in tests).
pub fn full_report(study: &StudyDataset) -> String {
    let mut out = String::new();
    let validity = ValidityDistribution::compute(study);
    let classes = ClassDistribution::compute(study);
    let pairwise = PairwiseAnalysis::compute(study);
    let temporal = TemporalAnalysis::compute(study);
    let matrix = SplitMatrix::compute(study);
    let kway = KWayAnalysis::compute(study, ServerProfile::FatServer, 9);
    let releases = ReleaseAnalysis::compute(study);

    let section = |title: &str, body: String, out: &mut String| {
        out.push_str(&format!("== {title} ==\n{body}\n"));
    };
    section(
        "Table I: validity distribution",
        table1(&validity).render(),
        &mut out,
    );
    section(
        "Table II: component classes",
        table2(&classes).render(),
        &mut out,
    );
    section(
        "Table III: pairwise common vulnerabilities",
        table3(&pairwise).render(),
        &mut out,
    );
    section(
        "Table IV: isolated thin server breakdown",
        table4(&pairwise).render(),
        &mut out,
    );
    section(
        "Table V: history vs observed",
        table5(&matrix).render(),
        &mut out,
    );
    section(
        "Table VI: OS releases",
        table6(&releases).render(),
        &mut out,
    );
    for family in OsFamily::ALL {
        section(
            &format!("Figure 2 ({family} family)"),
            figure2(&temporal, family).to_csv(),
            &mut out,
        );
    }
    section(
        "Section IV-B: k-OS combinations",
        kway_table(&kway).render(),
        &mut out,
    );
    section(
        "Section IV-E: summary",
        summary_table(study, &pairwise).render(),
        &mut out,
    );
    out
}

/// Convenience: the number of OSes in the study (used by callers that size
/// tables without importing `nvd_model`).
pub fn os_count() -> usize {
    OsDistribution::COUNT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::ReplicaSelection;
    use datagen::CalibratedGenerator;

    fn calibrated_study() -> StudyDataset {
        let dataset = CalibratedGenerator::new(12).generate();
        StudyDataset::from_entries(dataset.entries())
    }

    #[test]
    fn table_renderers_produce_the_expected_row_counts() {
        let study = calibrated_study();
        let validity = ValidityDistribution::compute(&study);
        assert_eq!(table1(&validity).row_count(), 12); // 11 OSes + distinct row
        let classes = ClassDistribution::compute(&study);
        assert_eq!(table2(&classes).row_count(), 12); // 11 OSes + percentage row
        let pairwise = PairwiseAnalysis::compute(&study);
        assert_eq!(table3(&pairwise).row_count(), 55);
        assert!(table4(&pairwise).row_count() >= 30);
        let matrix = SplitMatrix::compute(&study);
        assert_eq!(table5(&matrix).row_count(), 8);
        let releases = ReleaseAnalysis::compute(&study);
        assert_eq!(table6(&releases).row_count(), 15);
    }

    #[test]
    fn table5_rendering_has_diagonal_markers() {
        let study = calibrated_study();
        let matrix = SplitMatrix::compute(&study);
        let rendered = table5(&matrix).render();
        assert_eq!(rendered.matches("###").count(), 8);
    }

    #[test]
    fn figure_renderers_cover_all_series() {
        let study = calibrated_study();
        let temporal = TemporalAnalysis::compute(&study);
        let bsd = figure2(&temporal, OsFamily::Bsd);
        assert_eq!(bsd.series().len(), 3);
        let selection = ReplicaSelection::new(&study);
        let fig3 = figure3(&selection.figure3());
        assert_eq!(fig3.row_count(), 5);
        assert!(fig3.render().contains("Set4"));
    }

    #[test]
    fn kway_and_summary_tables_render() {
        let study = calibrated_study();
        let kway = KWayAnalysis::compute(&study, ServerProfile::FatServer, 9);
        let rendered = kway_table(&kway).render();
        assert!(rendered.contains("worst group"));
        let pairwise = PairwiseAnalysis::compute(&study);
        let summary = summary_table(&study, &pairwise).render();
        assert!(summary.contains("Average reduction"));
        assert!(summary.contains('%'));
    }

    #[test]
    fn full_report_contains_every_section() {
        let study = calibrated_study();
        let report = full_report(&study);
        for section in [
            "Table I",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Table VI",
            "Figure 2 (BSD family)",
            "Figure 2 (Windows family)",
            "k-OS combinations",
            "summary",
        ] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert_eq!(os_count(), 11);
    }
}
