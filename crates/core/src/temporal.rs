//! Temporal distribution of vulnerability publications (Figure 2).

use nvd_model::{OsDistribution, OsFamily, OsSet};
use tabular::{Series, SeriesSet, YearHistogram};

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::{ServerProfile, StudyDataset};
use crate::params::{FromParams, Params};
use crate::study::Study;

/// Configuration of the temporal analysis: the inclusive year range of the
/// histograms. The default matches the x axis of Figure 2 (1993–2010).
///
/// The range is validated when the analysis runs: `first_year` after
/// `last_year` is an [`AnalysisError::InvalidYearRange`] instead of the
/// silent empty series the old `compute_over` produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalConfig {
    /// First year of the histograms (inclusive).
    pub first_year: u16,
    /// Last year of the histograms (inclusive).
    pub last_year: u16,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        TemporalConfig {
            first_year: 1993,
            last_year: 2010,
        }
    }
}

impl TemporalConfig {
    /// Checks `first_year <= last_year`.
    pub fn validate(&self) -> Result<(), AnalysisError> {
        if self.first_year > self.last_year {
            return Err(AnalysisError::InvalidYearRange {
                first: self.first_year,
                last: self.last_year,
            });
        }
        Ok(())
    }
}

/// The Figure 2 reproduction: per-OS, per-year publication counts, grouped
/// by OS family.
#[derive(Debug, Clone)]
pub struct TemporalAnalysis {
    first_year: u16,
    last_year: u16,
    histograms: Vec<(OsDistribution, YearHistogram)>,
}

impl TemporalAnalysis {
    fn compute_impl(study: &StudyDataset, first_year: u16, last_year: u16) -> Self {
        // Per-(OS, year) counts are O(1) lookups against the memoized count
        // index (Fat Server retention is exactly the validity filter this
        // analysis applies). The boundary buckets absorb the years outside
        // the configured axis, matching [`YearHistogram::add`]'s clamping.
        let mut histograms = Vec::with_capacity(OsDistribution::COUNT);
        for os in OsDistribution::ALL {
            let mut histogram = YearHistogram::new(first_year, last_year);
            let group = OsSet::singleton(os);
            for year in first_year..=last_year {
                let from = if year == first_year { 0 } else { year };
                let to = if year == last_year { u16::MAX } else { year };
                let count = study.count_common_years(group, ServerProfile::FatServer, from, to);
                histogram.add_n(year, count as u64);
            }
            histograms.push((os, histogram));
        }
        TemporalAnalysis {
            first_year,
            last_year,
            histograms,
        }
    }

    /// The first year of the analysis range.
    pub fn first_year(&self) -> u16 {
        self.first_year
    }

    /// The last year of the analysis range.
    pub fn last_year(&self) -> u16 {
        self.last_year
    }

    /// The histogram of one OS.
    pub fn histogram(&self, os: OsDistribution) -> &YearHistogram {
        &self
            .histograms
            .iter()
            .find(|(o, _)| *o == os)
            .expect("histograms cover every distribution")
            .1
    }

    /// The number of vulnerabilities published for `os` in `year`.
    pub fn count(&self, os: OsDistribution, year: u16) -> u64 {
        self.histogram(os).count(year)
    }

    /// The year in which `os` had the most publications.
    pub fn peak_year(&self, os: OsDistribution) -> u16 {
        self.histogram(os).peak_year()
    }

    /// One sub-plot of Figure 2: the per-year series of every OS of a
    /// family.
    pub fn family_series(&self, family: OsFamily) -> SeriesSet {
        let mut set = SeriesSet::new(format!("{family} family"));
        for os in family.members() {
            let mut series = Series::new(os.short_name());
            for (year, count) in self.histogram(*os).iter() {
                series.push(i64::from(year), count as f64);
            }
            set.push(series);
        }
        set
    }

    /// The Pearson correlation between the per-year series of two OSes —
    /// used to verify the paper's observation that the members of the
    /// Windows and Linux families have strongly correlated peaks and
    /// valleys. Returns `None` when either series is constant.
    pub fn correlation(&self, a: OsDistribution, b: OsDistribution) -> Option<f64> {
        let xs: Vec<f64> = self.histogram(a).iter().map(|(_, c)| c as f64).collect();
        let ys: Vec<f64> = self.histogram(b).iter().map(|(_, c)| c as f64).collect();
        pearson(&xs, &ys)
    }
}

impl Analysis for TemporalAnalysis {
    type Config = TemporalConfig;
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Temporal
    }

    fn run(study: &Study, config: &TemporalConfig) -> Result<Self, AnalysisError> {
        config.validate()?;
        Ok(Self::compute_impl(
            study.dataset(),
            config.first_year,
            config.last_year,
        ))
    }
}

/// The four Figure 2 sections of one analysis value.
fn sections_of(temporal: &TemporalAnalysis) -> Vec<Section> {
    OsFamily::ALL
        .into_iter()
        .map(|family| {
            Section::series(
                format!("Figure 2 ({family} family)"),
                temporal.family_series(family),
            )
        })
        .collect()
}

/// The four Figure 2 sections (one per OS family, in the paper's order).
pub(crate) fn sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    let temporal = study.get::<TemporalAnalysis>()?;
    Ok(sections_of(&temporal))
}

/// Parameterized Figure 2 sections: `first_year=`/`last_year=` select the
/// (validated) year range.
pub(crate) fn sections_with(study: &Study, params: &Params) -> Result<Vec<Section>, AnalysisError> {
    if params.is_empty() {
        return sections(study);
    }
    let config = TemporalConfig::from_params(params)?;
    Ok(sections_of(&study.get_with::<TemporalAnalysis>(&config)?))
}

/// Pearson correlation coefficient of two equally long samples.
fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / n;
    let mean_y: f64 = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x * var_y).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::CalibratedGenerator;

    fn calibrated_study() -> Study {
        let dataset = CalibratedGenerator::new(6).generate();
        Study::from_entries(dataset.entries())
    }

    #[test]
    fn per_os_totals_match_the_valid_counts() {
        let study = calibrated_study();
        let temporal = study.get::<TemporalAnalysis>().unwrap();
        for os in OsDistribution::ALL {
            let total: u64 = temporal.histogram(os).total();
            let expected = study
                .store()
                .vulnerabilities_for_os(os)
                .iter()
                .filter(|r| r.is_valid())
                .count() as u64;
            assert_eq!(total, expected, "{os}");
        }
    }

    #[test]
    fn recent_oses_have_no_early_vulnerabilities() {
        let study = calibrated_study();
        let temporal = study.get::<TemporalAnalysis>().unwrap();
        // Windows 2008 and OpenSolaris were released in 2008; the generator
        // assigns them no vulnerabilities before their first release.
        for year in 1993..2007 {
            assert_eq!(
                temporal.count(OsDistribution::Windows2008, year),
                0,
                "{year}"
            );
            assert_eq!(
                temporal.count(OsDistribution::OpenSolaris, year),
                0,
                "{year}"
            );
        }
        assert!(temporal.peak_year(OsDistribution::Windows2008) >= 2008);
    }

    #[test]
    fn family_series_contains_one_series_per_member() {
        let study = calibrated_study();
        let temporal = study.get::<TemporalAnalysis>().unwrap();
        for family in OsFamily::ALL {
            let set = temporal.family_series(family);
            assert_eq!(set.series().len(), family.members().len());
            let csv = set.to_csv();
            assert!(csv.lines().count() > 10, "family {family} CSV too short");
        }
    }

    #[test]
    fn windows_family_peaks_are_correlated() {
        let study = calibrated_study();
        let temporal = study.get::<TemporalAnalysis>().unwrap();
        let corr = temporal
            .correlation(OsDistribution::Windows2000, OsDistribution::Windows2003)
            .unwrap();
        assert!(corr > 0.3, "Windows 2000/2003 correlation {corr:.2}");
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let study = calibrated_study();
        let temporal = study.get::<TemporalAnalysis>().unwrap();
        for a in OsDistribution::ALL {
            for b in OsDistribution::ALL {
                if let Some(corr) = temporal.correlation(a, b) {
                    assert!((-1.0..=1.0 + 1e-9).contains(&corr));
                    let reverse = temporal.correlation(b, a).unwrap();
                    assert!((corr - reverse).abs() < 1e-9);
                }
            }
        }
        let self_corr = temporal
            .correlation(OsDistribution::FreeBsd, OsDistribution::FreeBsd)
            .unwrap();
        assert!((self_corr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_edge_cases() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        let perfect = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        assert!((perfect - 1.0).abs() < 1e-12);
        let inverse = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((inverse + 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_histograms_are_zero() {
        let study = Study::new(StudyDataset::new());
        let temporal = study.get::<TemporalAnalysis>().unwrap();
        assert_eq!(temporal.histogram(OsDistribution::Debian).total(), 0);
        assert_eq!(temporal.first_year(), 1993);
        assert_eq!(temporal.last_year(), 2010);
    }

    #[test]
    fn sections_with_selects_and_validates_the_year_range() {
        let study = calibrated_study();
        let params = Params::from_pairs([("first_year", "2000"), ("last_year", "2005")]);
        let sections = sections_with(&study, &params).unwrap();
        assert_eq!(sections.len(), OsFamily::ALL.len());
        let inverted = Params::from_pairs([("first_year", "2010"), ("last_year", "1993")]);
        assert_eq!(
            sections_with(&study, &inverted).unwrap_err(),
            AnalysisError::InvalidYearRange {
                first: 2010,
                last: 1993
            }
        );
    }
}
