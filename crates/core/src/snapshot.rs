//! The `OSDV` snapshot container: durable, versioned, checksummed
//! serialization of a [`StudyDataset`] and its memoized [`CountIndex`].
//!
//! The byte-level layout is specified in `docs/SNAPSHOT_FORMAT.md`; the
//! golden-fixture test in `tests/snapshot_roundtrip.rs` parses a written
//! snapshot against the documented offsets, so the spec and this module
//! cannot silently drift apart. In brief:
//!
//! ```text
//! offset 0   magic  "OSDV"
//! offset 4   container format version (u16 LE)
//! offset 6   section count            (u16 LE)
//! offset 8   section table, 24 bytes per entry:
//!              +0  section id      (u16 LE)
//!              +2  section version (u16 LE)
//!              +4  payload offset  (u64 LE, from start of file)
//!              +12 payload length  (u64 LE)
//!              +20 payload CRC-32  (u32 LE, IEEE polynomial)
//! ```
//!
//! Section payloads follow the table, in table order. Three sections are
//! written today: `STORE` (the relational tables, encoded by
//! [`vulnstore::snapshot`]), `INDEX` (the transformed count tables) and
//! `META` (string key/value annotations for the registry).
//!
//! **Compatibility promise** (also documented in the spec): a reader
//! encountering an `INDEX` section with an unknown version — or a
//! malformed `INDEX` payload — must *rebuild* the index from the rows
//! instead of failing the load; only the `STORE` section is
//! load-bearing. Unknown section ids are skipped entirely, so future
//! writers can add sections without breaking old readers.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

use vulnstore::{snapshot as rows, RowCodecError, STORE_SECTION_VERSION};

use crate::dataset::StudyDataset;
use crate::index::CountIndex;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"OSDV";

/// The container format version this module writes.
pub const FORMAT_VERSION: u16 = 1;

/// Section id of the relational tables (required).
pub const SECTION_STORE: u16 = 1;

/// Section id of the memoized count index (optional: rebuilt if absent,
/// unknown-versioned or malformed).
pub const SECTION_INDEX: u16 = 2;

/// Section id of the key/value annotations (optional).
pub const SECTION_META: u16 = 3;

/// The `INDEX` section version this module writes.
pub const INDEX_SECTION_VERSION: u16 = 1;

/// The `META` section version this module writes.
pub const META_SECTION_VERSION: u16 = 1;

/// Bytes before the section table (magic + format version + count).
pub const HEADER_BYTES: usize = 8;

/// Bytes per section-table entry.
pub const SECTION_ENTRY_BYTES: usize = 24;

/// Typed snapshot failures. Corrupted, truncated and wrong-version
/// inputs each answer their own variant — never a panic, never a
/// partially loaded dataset.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The file does not start with the `OSDV` magic.
    BadMagic,
    /// The container (or the required `STORE` section) declares a format
    /// version this reader does not understand.
    UnsupportedVersion {
        /// What declared the version.
        what: &'static str,
        /// The declared version.
        found: u16,
    },
    /// The file ends before a declared structure is complete.
    Truncated {
        /// The structure being read.
        what: &'static str,
    },
    /// A section payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// The corrupted section's id.
        section: u16,
    },
    /// The required `STORE` section is missing.
    MissingStore,
    /// The `STORE` payload failed to decode into a consistent store.
    Rows(RowCodecError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(error) => write!(f, "snapshot I/O failed: {error}"),
            SnapshotError::BadMagic => {
                write!(f, "not a snapshot: the OSDV magic bytes are missing")
            }
            SnapshotError::UnsupportedVersion { what, found } => {
                write!(f, "unsupported {what} version {found}")
            }
            SnapshotError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "section {section} does not match its CRC-32")
            }
            SnapshotError::MissingStore => write!(f, "the required STORE section is missing"),
            SnapshotError::Rows(error) => write!(f, "STORE section is corrupt: {error}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(error) => Some(error),
            SnapshotError::Rows(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(error: io::Error) -> Self {
        SnapshotError::Io(error)
    }
}

impl From<RowCodecError> for SnapshotError {
    fn from(error: RowCodecError) -> Self {
        SnapshotError::Rows(error)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the per-section checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc; // guard: allow(index) — const-eval table build, i < 256 by loop bound
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        // guard: allow(index) — index is masked `& 0xFF`, table length is 256
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Reads a little-endian `u16` at `pos`, `None` past the end.
fn le_u16(bytes: &[u8], pos: usize) -> Option<u16> {
    bytes
        .get(pos..pos.checked_add(2)?)
        .and_then(|s| <[u8; 2]>::try_from(s).ok())
        .map(u16::from_le_bytes)
}

/// Reads a little-endian `u32` at `pos`, `None` past the end.
fn le_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    bytes
        .get(pos..pos.checked_add(4)?)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
}

/// Reads a little-endian `u64` at `pos`, `None` past the end.
fn le_u64(bytes: &[u8], pos: usize) -> Option<u64> {
    bytes
        .get(pos..pos.checked_add(8)?)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_le_bytes)
}

/// A loaded snapshot: the dataset (with its count index pre-seeded when
/// the `INDEX` section was readable) plus the writer's annotations.
#[derive(Debug)]
pub struct Snapshot {
    /// The reconstructed dataset.
    pub dataset: StudyDataset,
    /// Key/value annotations from the `META` section, in written order.
    pub meta: Vec<(String, String)>,
    /// Whether the count index was loaded from the snapshot (`false`
    /// means it was absent/unknown-versioned/corrupt and will be rebuilt
    /// lazily — the compatibility promise, not an error).
    pub index_loaded: bool,
}

impl Snapshot {
    /// Serializes a dataset (building and including its count index) and
    /// annotations into `writer`.
    ///
    /// # Errors
    ///
    /// Only I/O errors: every dataset is serializable.
    pub fn write(
        dataset: &StudyDataset,
        meta: &[(String, String)],
        writer: &mut impl Write,
    ) -> io::Result<()> {
        writer.write_all(&Snapshot::to_bytes(dataset, meta))
    }

    /// Serializes a dataset and annotations to an in-memory snapshot.
    pub fn to_bytes(dataset: &StudyDataset, meta: &[(String, String)]) -> Vec<u8> {
        let mut store_payload = Vec::new();
        rows::encode_store(dataset.store(), &mut store_payload);
        // Building the index here is the point: a reloaded tenant serves
        // its first count query from the persisted tables.
        let mut index_payload = Vec::new();
        dataset.count_index().encode(&mut index_payload);
        let mut meta_payload = Vec::new();
        meta_payload.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        for (key, value) in meta {
            for piece in [key, value] {
                meta_payload.extend_from_slice(&(piece.len() as u32).to_le_bytes());
                meta_payload.extend_from_slice(piece.as_bytes());
            }
        }

        let sections: [(u16, u16, &[u8]); 3] = [
            (SECTION_STORE, STORE_SECTION_VERSION, &store_payload),
            (SECTION_INDEX, INDEX_SECTION_VERSION, &index_payload),
            (SECTION_META, META_SECTION_VERSION, &meta_payload),
        ];
        let mut out = Vec::with_capacity(
            HEADER_BYTES
                // guard: allow(arith) — exactly three fixed sections, cannot overflow
                + sections.len() * SECTION_ENTRY_BYTES
                + sections.iter().map(|(_, _, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
        // guard: allow(arith) — exactly three fixed sections, cannot overflow
        let mut offset = (HEADER_BYTES + sections.len() * SECTION_ENTRY_BYTES) as u64;
        for (id, version, payload) in &sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, _, payload) in &sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Reads and reconstructs a snapshot from `reader`.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`] — every malformed input answers a typed
    /// error, and a load either succeeds completely or not at all.
    pub fn read(reader: &mut impl Read) -> Result<Snapshot, SnapshotError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Reconstructs a snapshot from in-memory bytes (see
    /// [`read`](Snapshot::read)).
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let sections = parse_sections(bytes)?;
        for section in &sections {
            let payload = section.payload(bytes)?;
            if crc32(payload) != section.crc32 {
                return Err(SnapshotError::ChecksumMismatch {
                    section: section.id,
                });
            }
        }

        let store = sections
            .iter()
            .find(|s| s.id == SECTION_STORE)
            .ok_or(SnapshotError::MissingStore)?;
        if store.version != STORE_SECTION_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                what: "STORE section",
                found: store.version,
            });
        }
        let dataset = StudyDataset::from_store(rows::decode_store(store.payload(bytes)?)?);

        // The compatibility promise: an unknown INDEX version or payload
        // downgrades to a lazy rebuild, never a failed load.
        let mut index_loaded = false;
        if let Some(section) = sections.iter().find(|s| s.id == SECTION_INDEX) {
            if section.version == INDEX_SECTION_VERSION {
                if let Some(index) = CountIndex::decode(section.payload(bytes)?) {
                    dataset.preload_index(Arc::new(index));
                    index_loaded = true;
                }
            }
        }

        let mut meta = Vec::new();
        if let Some(section) = sections.iter().find(|s| s.id == SECTION_META) {
            if section.version == META_SECTION_VERSION {
                meta = decode_meta(section.payload(bytes)?)
                    .ok_or(SnapshotError::Truncated { what: "META pairs" })?;
            }
        }

        Ok(Snapshot {
            dataset,
            meta,
            index_loaded,
        })
    }

    /// Decodes only the `META` annotations — verifying the `META`
    /// section's CRC but never touching the (much larger) `STORE`
    /// payload — so a registry boot scan can list recovered tenants
    /// without reconstructing their datasets.
    ///
    /// # Errors
    ///
    /// Structural failures plus a `META` checksum mismatch; a snapshot
    /// without a `META` section answers an empty list.
    pub fn read_meta(bytes: &[u8]) -> Result<Vec<(String, String)>, SnapshotError> {
        let sections = parse_sections(bytes)?;
        let Some(section) = sections
            .iter()
            .find(|s| s.id == SECTION_META && s.version == META_SECTION_VERSION)
        else {
            return Ok(Vec::new());
        };
        let payload = section.payload(bytes)?;
        if crc32(payload) != section.crc32 {
            return Err(SnapshotError::ChecksumMismatch {
                section: section.id,
            });
        }
        decode_meta(payload).ok_or(SnapshotError::Truncated { what: "META pairs" })
    }

    /// Parses the header and section table — verifying per-section CRCs
    /// but decoding no payload — for `osdiv snapshot inspect` and other
    /// cheap introspection.
    ///
    /// # Errors
    ///
    /// Structural failures only (bad magic, unsupported container
    /// version, truncation); CRC mismatches are *reported* per section,
    /// not raised.
    pub fn inspect(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
        let sections = parse_sections(bytes)?;
        let infos = sections
            .iter()
            .map(|section| SectionInfo {
                id: section.id,
                name: section_name(section.id),
                version: section.version,
                offset: section.offset,
                length: section.length,
                crc32: section.crc32,
                crc_ok: section
                    .payload(bytes)
                    .map(|payload| crc32(payload) == section.crc32)
                    .unwrap_or(false),
            })
            .collect();
        Ok(SnapshotInfo {
            format_version: FORMAT_VERSION,
            total_bytes: bytes.len() as u64,
            sections: infos,
        })
    }
}

/// The human name of a section id (`unknown` for ids this reader does
/// not know — which it skips, per the forward-compatibility rule).
pub fn section_name(id: u16) -> &'static str {
    match id {
        SECTION_STORE => "store",
        SECTION_INDEX => "index",
        SECTION_META => "meta",
        _ => "unknown",
    }
}

/// One section-table entry, as parsed (offsets not yet bounds-checked).
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    id: u16,
    version: u16,
    offset: u64,
    length: u64,
    crc32: u32,
}

impl SectionEntry {
    /// The section's payload slice, bounds-checked against the file.
    fn payload<'a>(&self, bytes: &'a [u8]) -> Result<&'a [u8], SnapshotError> {
        let start = usize::try_from(self.offset).ok();
        let len = usize::try_from(self.length).ok();
        start
            .zip(len)
            .and_then(|(start, len)| start.checked_add(len).map(|end| (start, end)))
            .and_then(|(start, end)| bytes.get(start..end))
            .ok_or(SnapshotError::Truncated {
                what: "section payload",
            })
    }
}

/// Parses the fixed header and the section table.
fn parse_sections(bytes: &[u8]) -> Result<Vec<SectionEntry>, SnapshotError> {
    let truncated_header = || SnapshotError::Truncated { what: "header" };
    let Some(magic) = bytes.get(..4) else {
        return Err(truncated_header());
    };
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let format_version = le_u16(bytes, 4).ok_or_else(truncated_header)?;
    if format_version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            what: "snapshot container",
            found: format_version,
        });
    }
    let count = le_u16(bytes, 6).ok_or_else(truncated_header)? as usize;
    let table = count
        .checked_mul(SECTION_ENTRY_BYTES)
        .and_then(|table_bytes| HEADER_BYTES.checked_add(table_bytes))
        .and_then(|table_end| bytes.get(HEADER_BYTES..table_end))
        .ok_or(SnapshotError::Truncated {
            what: "section table",
        })?;
    let mut sections = Vec::with_capacity(count);
    for entry in table.chunks_exact(SECTION_ENTRY_BYTES) {
        let parsed = le_u16(entry, 0).zip(le_u16(entry, 2)).zip(
            le_u64(entry, 4)
                .zip(le_u64(entry, 12))
                .zip(le_u32(entry, 20)),
        );
        let Some(((id, version), ((offset, length), crc32))) = parsed else {
            // Unreachable: chunks_exact yields full 24-byte entries.
            return Err(SnapshotError::Truncated {
                what: "section table",
            });
        };
        sections.push(SectionEntry {
            id,
            version,
            offset,
            length,
            crc32,
        });
    }
    Ok(sections)
}

/// Decodes the META payload (pair count, then length-prefixed strings).
fn decode_meta(payload: &[u8]) -> Option<Vec<(String, String)>> {
    let mut pos = 0usize;
    let read_u32 = |pos: &mut usize| -> Option<u32> {
        let value = le_u32(payload, *pos)?;
        *pos = pos.checked_add(4)?;
        Some(value)
    };
    let count = read_u32(&mut pos)?;
    let mut pairs = Vec::new();
    for _ in 0..count {
        let mut pieces = [String::new(), String::new()];
        for piece in pieces.iter_mut() {
            let len = read_u32(&mut pos)? as usize;
            let bytes = payload.get(pos..pos + len)?;
            pos += len;
            *piece = String::from_utf8(bytes.to_vec()).ok()?;
        }
        let [key, value] = pieces;
        pairs.push((key, value));
    }
    (pos == payload.len()).then_some(pairs)
}

/// A parsed section-table entry, for inspection output.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section id.
    pub id: u16,
    /// Human name of the id (`unknown` for foreign sections).
    pub name: &'static str,
    /// Declared section version.
    pub version: u16,
    /// Payload offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
    /// Recorded CRC-32 of the payload.
    pub crc32: u32,
    /// Whether the payload matches the recorded CRC-32.
    pub crc_ok: bool,
}

/// Header/section-table summary produced by [`Snapshot::inspect`].
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// The container format version.
    pub format_version: u16,
    /// Total file size in bytes.
    pub total_bytes: u64,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The classic CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let dataset = StudyDataset::new();
        let bytes = Snapshot::to_bytes(&dataset, &[("source".into(), "test".into())]);
        assert_eq!(&bytes[..4], b"OSDV");
        let snapshot = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot.dataset.valid_count(), 0);
        assert!(snapshot.index_loaded);
        assert_eq!(snapshot.meta, vec![("source".into(), "test".into())]);
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        assert!(matches!(
            Snapshot::from_bytes(b"NOPE\x01\x00\x00\x00"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"OS"),
            Err(SnapshotError::Truncated { .. })
        ));
        let bytes = Snapshot::to_bytes(&StudyDataset::new(), &[]);
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..HEADER_BYTES + 3]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn unsupported_container_version_is_typed() {
        let mut bytes = Snapshot::to_bytes(&StudyDataset::new(), &[]);
        bytes[4] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_its_section_checksum() {
        let mut bytes = Snapshot::to_bytes(&StudyDataset::new(), &[]);
        let payload_start = HEADER_BYTES + 3 * SECTION_ENTRY_BYTES;
        bytes[payload_start] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // inspect still parses, reporting the bad section.
        let info = Snapshot::inspect(&bytes).unwrap();
        assert!(info.sections.iter().any(|s| !s.crc_ok));
    }

    #[test]
    fn unknown_index_version_downgrades_to_rebuild() {
        let bytes = Snapshot::to_bytes(&StudyDataset::new(), &[]);
        let mut patched = bytes.clone();
        // The INDEX section is the second table entry; bump its version.
        let entry = HEADER_BYTES + SECTION_ENTRY_BYTES;
        patched[entry + 2] = 0xFE;
        let snapshot = Snapshot::from_bytes(&patched).unwrap();
        assert!(!snapshot.index_loaded, "unknown version must not load");
    }
}
