//! The [`CountIndex`]: O(1) group-count queries via zeta transforms.
//!
//! Every diversity statistic of the paper reduces to one of two counting
//! questions about an OS group `g` under a server profile and a year
//! period:
//!
//! * how many vulnerabilities affect **all** members of `g`
//!   ([`StudyDataset::count_common_in`]) — rows whose `os_set ⊇ g`;
//! * how many affect **at least two** members of `g`
//!   ([`StudyDataset::count_shared_within`]) — rows with
//!   `|os_set ∩ g| ≥ 2`.
//!
//! An [`OsSet`] is an 11-bit mask, so both questions are answerable from
//! per-mask histograms: the index bins every retained row by its exact
//! `os_set` bits and publication year, accumulates the bins cumulatively
//! over years, and runs the classic O(2ⁿ·n) sum-over-supersets (zeta)
//! transform on each year layer. Two transformed tables are kept per
//! profile and layer:
//!
//! * `superset[mask]` — rows whose `os_set` is a **superset** of `mask`
//!   (answers `count_common_in` directly);
//! * `shared2[mask]` — rows whose `os_set` **intersects `mask` in ≥ 2
//!   members** (answers `count_shared_within`), derived from the dual
//!   sum-over-subsets transform by inclusion–exclusion:
//!   `shared2[g] = total − disjoint(g) − exactly_one(g)` with
//!   `disjoint(g) = subset[!g]` and
//!   `exactly_one(g) = Σ_{os∈g} subset[!g | os] − subset[!g]`.
//!
//! After the build every group count is a table lookup — the k-way
//! enumeration of Section IV-B drops from `C(11,k)` full store scans per
//! size to `C(11,k)` array reads.
//!
//! Year layers are kept per **distinct publication year present in the
//! data** (≈ 18 for the study period). A pathological dataset with more
//! than [`MAX_YEAR_LAYERS`] distinct years (only reachable through crafted
//! feeds) degrades to a single whole-range layer instead of allocating
//! unbounded tables; queries the coarse layer cannot answer return `None`
//! and the caller falls back to a scan.

use nvd_model::{OsDistribution, OsSet};

use crate::dataset::{Period, ServerProfile, StudyDataset};

/// Number of distinct masks an 11-OS universe produces.
const MASKS: usize = 1 << OsDistribution::COUNT;

/// Upper bound on per-year layers before the index degrades to one
/// whole-range layer (memory guard against crafted feeds claiming hundreds
/// of distinct publication years).
pub const MAX_YEAR_LAYERS: usize = 256;

/// The per-profile transformed tables (see the module docs).
#[derive(Debug, Clone, Default)]
struct ProfileTables {
    /// `superset[layer * MASKS + mask]`: retained rows with year ≤ the
    /// layer's year whose `os_set ⊇ mask`.
    superset: Vec<u32>,
    /// `shared2[layer * MASKS + mask]`: retained rows with year ≤ the
    /// layer's year whose `os_set` intersects `mask` in at least two
    /// members.
    shared2: Vec<u32>,
    /// `at_least[k]`: retained rows (any year) whose `os_set` has at least
    /// `k` members.
    at_least: [u32; OsDistribution::COUNT + 1],
}

/// The memoized count index of a [`StudyDataset`] (see the module docs).
///
/// Built lazily by [`StudyDataset::count_index`] and shared behind an
/// [`Arc`](std::sync::Arc); a dataset mutation
/// ([`StudyDataset::classify_unlabelled`]) drops it so the next query
/// rebuilds against the new rows.
#[derive(Debug, Clone)]
pub struct CountIndex {
    /// The distinct publication years of retained rows, ascending. One
    /// cumulative table layer per entry — except in coarse mode, where a
    /// single layer covers the whole range.
    years: Vec<u16>,
    /// Whether the tables were collapsed to one whole-range layer (see
    /// [`MAX_YEAR_LAYERS`]).
    coarse: bool,
    /// One table set per [`ServerProfile`], in [`ServerProfile::ALL`]
    /// order.
    profiles: [ProfileTables; 3],
}

/// The index position of a profile in [`CountIndex::profiles`].
fn profile_slot(profile: ServerProfile) -> usize {
    match profile {
        ServerProfile::FatServer => 0,
        ServerProfile::ThinServer => 1,
        ServerProfile::IsolatedThinServer => 2,
    }
}

/// In-place sum over supersets: afterwards `f[mask] = Σ f[m]` over all
/// `m ⊇ mask`.
fn zeta_supersets(f: &mut [u32]) {
    for bit in 0..OsDistribution::COUNT {
        let bit = 1usize << bit;
        for mask in 0..MASKS {
            if mask & bit == 0 {
                f[mask] += f[mask | bit];
            }
        }
    }
}

/// In-place sum over subsets: afterwards `f[mask] = Σ f[m]` over all
/// `m ⊆ mask`.
fn zeta_subsets(f: &mut [u32]) {
    for bit in 0..OsDistribution::COUNT {
        let bit = 1usize << bit;
        for mask in 0..MASKS {
            if mask & bit != 0 {
                f[mask] += f[mask & !bit];
            }
        }
    }
}

/// Derives the intersects-in-≥2 table of one layer from its
/// sum-over-subsets table (see the module docs for the
/// inclusion–exclusion identity).
fn shared2_from_subsets(subset: &[u32], out: &mut [u32]) {
    let full = MASKS - 1;
    let total = subset[full];
    for (group, slot) in out.iter_mut().enumerate() {
        let complement = full & !group;
        let disjoint = subset[complement];
        let mut exactly_one = 0u32;
        let mut bits = group;
        while bits != 0 {
            let bit = bits & bits.wrapping_neg();
            exactly_one += subset[complement | bit] - disjoint;
            bits &= bits - 1;
        }
        *slot = total - disjoint - exactly_one;
    }
}

impl CountIndex {
    /// Builds the index from a dataset in one pass over the store plus the
    /// per-layer transforms (O(rows + layers · 2ⁿ · n)).
    pub fn build(dataset: &StudyDataset) -> CountIndex {
        // One pass over the store: bin every row by (profile, year, mask).
        let mut facts: Vec<(u16, u16, [bool; 3])> = Vec::new();
        let mut years: Vec<u16> = Vec::new();
        for (row, remote) in dataset.store().rows_with_remote() {
            if !row.is_valid() {
                continue;
            }
            let thin = row.part.map(|p| p.is_base_system()).unwrap_or(true);
            let retained = [true, thin, thin && remote];
            facts.push((row.year(), row.os_set.bits(), retained));
            years.push(row.year());
        }
        years.sort_unstable();
        years.dedup();
        let coarse = years.len() > MAX_YEAR_LAYERS;
        let layers = if years.is_empty() {
            0
        } else if coarse {
            1
        } else {
            years.len()
        };

        let mut profiles: [ProfileTables; 3] = Default::default();
        for (slot, tables) in profiles.iter_mut().enumerate() {
            // Per-layer histogram of exact masks, cumulative over layers.
            let mut histogram = vec![0u32; layers * MASKS];
            for &(year, mask, retained) in &facts {
                if !retained[slot] {
                    continue;
                }
                let layer = if coarse {
                    0
                } else {
                    years.partition_point(|&y| y < year)
                };
                histogram[layer * MASKS + mask as usize] += 1;
                let members = mask.count_ones() as usize;
                for count in tables.at_least.iter_mut().take(members + 1) {
                    *count += 1;
                }
            }
            tables.superset = vec![0u32; layers * MASKS];
            tables.shared2 = vec![0u32; layers * MASKS];
            let mut accumulated = vec![0u32; MASKS];
            let mut scratch = vec![0u32; MASKS];
            for layer in 0..layers {
                let slice = layer * MASKS..(layer + 1) * MASKS;
                for (acc, h) in accumulated.iter_mut().zip(&histogram[slice.clone()]) {
                    *acc += *h;
                }
                let superset = &mut tables.superset[slice.clone()];
                superset.copy_from_slice(&accumulated);
                zeta_supersets(superset);
                scratch.copy_from_slice(&accumulated);
                zeta_subsets(&mut scratch);
                shared2_from_subsets(&scratch, &mut tables.shared2[slice]);
            }
        }
        CountIndex {
            years,
            coarse,
            profiles,
        }
    }

    /// The distinct publication years the index has layers for.
    pub fn year_count(&self) -> usize {
        self.years.len()
    }

    /// Serializes the index tables for the snapshot `INDEX` section (see
    /// `docs/SNAPSHOT_FORMAT.md`): little-endian, years then the
    /// coarse flag then the three profile table sets in
    /// [`ServerProfile::ALL`] order.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.coarse));
        out.extend_from_slice(&(self.years.len() as u32).to_le_bytes());
        for year in &self.years {
            out.extend_from_slice(&year.to_le_bytes());
        }
        for tables in &self.profiles {
            for count in &tables.at_least {
                out.extend_from_slice(&count.to_le_bytes());
            }
            for table in [&tables.superset, &tables.shared2] {
                out.extend_from_slice(&(table.len() as u32).to_le_bytes());
                for value in table.iter() {
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
    }

    /// Decodes an `INDEX` section payload written by
    /// [`encode`](CountIndex::encode). Returns `None` for any malformed
    /// or dimensionally inconsistent payload — the caller falls back to
    /// rebuilding the index from the rows, per the snapshot format's
    /// compatibility promise.
    pub(crate) fn decode(payload: &[u8]) -> Option<CountIndex> {
        struct Reader<'a> {
            bytes: &'a [u8],
            pos: usize,
        }
        impl Reader<'_> {
            fn u8(&mut self) -> Option<u8> {
                let value = *self.bytes.get(self.pos)?;
                self.pos += 1;
                Some(value)
            }
            fn u16(&mut self) -> Option<u16> {
                let bytes = self.bytes.get(self.pos..self.pos + 2)?;
                self.pos += 2;
                Some(u16::from_le_bytes([bytes[0], bytes[1]]))
            }
            fn u32(&mut self) -> Option<u32> {
                let bytes = self.bytes.get(self.pos..self.pos + 4)?;
                self.pos += 4;
                Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
            }
            fn u32_vec(&mut self, expected: usize) -> Option<Vec<u32>> {
                if self.u32()? as usize != expected {
                    return None;
                }
                let mut values = Vec::with_capacity(expected.min(self.bytes.len() / 4));
                for _ in 0..expected {
                    values.push(self.u32()?);
                }
                Some(values)
            }
        }
        let mut reader = Reader {
            bytes: payload,
            pos: 0,
        };
        let coarse = match reader.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let year_count = reader.u32()? as usize;
        // Years are bounded by the u16 domain; a larger claim is corrupt.
        if year_count > usize::from(u16::MAX) {
            return None;
        }
        let mut years = Vec::with_capacity(year_count.min(payload.len() / 2));
        for _ in 0..year_count {
            years.push(reader.u16()?);
        }
        if years.windows(2).any(|pair| pair[0] >= pair[1]) {
            return None; // must be strictly ascending, as built
        }
        if coarse != (years.len() > MAX_YEAR_LAYERS) {
            return None;
        }
        let layers = if years.is_empty() {
            0
        } else if coarse {
            1
        } else {
            years.len()
        };
        let mut profiles: [ProfileTables; 3] = Default::default();
        for tables in profiles.iter_mut() {
            for count in tables.at_least.iter_mut() {
                *count = reader.u32()?;
            }
            tables.superset = reader.u32_vec(layers * MASKS)?;
            tables.shared2 = reader.u32_vec(layers * MASKS)?;
        }
        if reader.pos != payload.len() {
            return None;
        }
        Some(CountIndex {
            years,
            coarse,
            profiles,
        })
    }

    /// Whether the index degraded to a single whole-range layer (see
    /// [`MAX_YEAR_LAYERS`]).
    pub fn is_coarse(&self) -> bool {
        self.coarse
    }

    /// Resolves an inclusive year window to the pair of cumulative layer
    /// boundaries `(lower, upper)` such that the answer is
    /// `layer(upper − 1) − layer(lower − 1)`. Returns `None` when the
    /// coarse index cannot answer the window exactly.
    fn window(&self, first: u16, last: u16) -> Option<(usize, usize)> {
        if self.years.is_empty() || first > last {
            return Some((0, 0));
        }
        if self.coarse {
            let (min, max) = (self.years[0], *self.years.last().expect("non-empty"));
            return if first <= min && last >= max {
                Some((0, 1))
            } else if last < min || first > max {
                Some((0, 0))
            } else {
                None
            };
        }
        let lower = self.years.partition_point(|&y| y < first);
        let upper = self.years.partition_point(|&y| y <= last);
        Some((lower, upper))
    }

    /// Reads a cumulative table cell, treating the virtual layer `0` as
    /// all-zero.
    fn cell(table: &[u32], boundary: usize, mask: usize) -> u32 {
        if boundary == 0 {
            0
        } else {
            table[(boundary - 1) * MASKS + mask]
        }
    }

    /// Rows retained under `profile` with `os_set ⊇ group` and publication
    /// year in `first..=last`. `None` when a coarse index cannot answer the
    /// window exactly (the caller falls back to a scan).
    pub fn count_common_years(
        &self,
        group: OsSet,
        profile: ServerProfile,
        first: u16,
        last: u16,
    ) -> Option<usize> {
        let (lower, upper) = self.window(first, last)?;
        if upper <= lower {
            return Some(0);
        }
        let table = &self.profiles[profile_slot(profile)].superset;
        let mask = group.bits() as usize;
        Some((Self::cell(table, upper, mask) - Self::cell(table, lower, mask)) as usize)
    }

    /// Rows retained under `profile` with `os_set ⊇ group` inside `period`.
    pub fn count_common_in(
        &self,
        group: OsSet,
        profile: ServerProfile,
        period: Period,
    ) -> Option<usize> {
        let (first, last) = period.years();
        self.count_common_years(group, profile, first, last)
    }

    /// Rows retained under `profile` whose `os_set` intersects `group` in
    /// at least two members, year in `first..=last`. Groups of one (or
    /// zero) members fall back to the superset count, mirroring
    /// [`StudyDataset::count_shared_within`]'s homogeneous-configuration
    /// semantics.
    pub fn count_shared_within_years(
        &self,
        group: OsSet,
        profile: ServerProfile,
        first: u16,
        last: u16,
    ) -> Option<usize> {
        if group.len() <= 1 {
            return self.count_common_years(group, profile, first, last);
        }
        let (lower, upper) = self.window(first, last)?;
        if upper <= lower {
            return Some(0);
        }
        let table = &self.profiles[profile_slot(profile)].shared2;
        let mask = group.bits() as usize;
        Some((Self::cell(table, upper, mask) - Self::cell(table, lower, mask)) as usize)
    }

    /// Rows retained under `profile` whose `os_set` intersects `group` in
    /// at least two members, inside `period`.
    pub fn count_shared_within(
        &self,
        group: OsSet,
        profile: ServerProfile,
        period: Period,
    ) -> Option<usize> {
        let (first, last) = period.years();
        self.count_shared_within_years(group, profile, first, last)
    }

    /// Rows retained under `profile` (any year) whose `os_set` has at
    /// least `k` members — the "vulnerabilities affecting ≥ k OSes" column
    /// of Section IV-B. Always answerable, even by a coarse index.
    pub fn rows_with_at_least(&self, profile: ServerProfile, k: usize) -> usize {
        let tables = &self.profiles[profile_slot(profile)];
        if k > OsDistribution::COUNT {
            return 0;
        }
        tables.at_least[k] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{CveId, CvssV2, Date, OsPart, VulnerabilityEntry};

    fn entry(
        number: u32,
        year: u16,
        part: Option<OsPart>,
        remote: bool,
        oses: &[OsDistribution],
    ) -> VulnerabilityEntry {
        let mut builder = VulnerabilityEntry::builder(CveId::new(year, number))
            .published(Date::new(year, 6, 1).unwrap())
            .summary(format!("synthetic entry {number}"))
            .cvss(if remote {
                CvssV2::typical_remote()
            } else {
                CvssV2::typical_local()
            });
        if let Some(part) = part {
            builder = builder.part(part);
        }
        for os in oses {
            builder = builder.affects_os(*os);
        }
        builder.build().unwrap()
    }

    #[test]
    fn empty_dataset_answers_zero_everywhere() {
        let index = CountIndex::build(&StudyDataset::new());
        assert_eq!(index.year_count(), 0);
        for profile in ServerProfile::ALL {
            assert_eq!(
                index.count_common_in(OsSet::all(), profile, Period::Whole),
                Some(0)
            );
            assert_eq!(
                index.count_shared_within(OsSet::all(), profile, Period::Whole),
                Some(0)
            );
            assert_eq!(index.rows_with_at_least(profile, 0), 0);
        }
    }

    #[test]
    fn superset_and_shared_counts_match_hand_computed_values() {
        use OsDistribution::*;
        let dataset = StudyDataset::from_entries(&[
            entry(1, 2000, Some(OsPart::Kernel), true, &[OpenBsd, NetBsd]),
            entry(2, 2004, Some(OsPart::Application), true, &[OpenBsd, NetBsd]),
            entry(3, 2007, Some(OsPart::SystemSoftware), false, &[OpenBsd]),
            entry(4, 2008, Some(OsPart::Kernel), true, &[NetBsd, FreeBsd]),
        ]);
        let index = CountIndex::build(&dataset);
        let pair = OsSet::pair(OpenBsd, NetBsd);
        assert_eq!(
            index.count_common_in(pair, ServerProfile::FatServer, Period::Whole),
            Some(2)
        );
        assert_eq!(
            index.count_common_in(pair, ServerProfile::ThinServer, Period::Whole),
            Some(1)
        );
        assert_eq!(
            index.count_common_years(pair, ServerProfile::FatServer, 2001, 2010),
            Some(1)
        );
        let bsd = OsSet::from_iter([OpenBsd, NetBsd, FreeBsd]);
        assert_eq!(
            index.count_shared_within(bsd, ServerProfile::FatServer, Period::Whole),
            Some(3)
        );
        assert_eq!(index.rows_with_at_least(ServerProfile::FatServer, 2), 3);
        assert_eq!(index.rows_with_at_least(ServerProfile::FatServer, 3), 0);
        assert_eq!(index.rows_with_at_least(ServerProfile::FatServer, 12), 0);
    }

    #[test]
    fn coarse_index_answers_whole_range_only() {
        let entries: Vec<_> = (0..(MAX_YEAR_LAYERS as u32 + 10))
            .map(|i| {
                entry(
                    i + 1,
                    1000 + i as u16,
                    Some(OsPart::Kernel),
                    true,
                    &[OsDistribution::Debian],
                )
            })
            .collect();
        let dataset = StudyDataset::from_entries(&entries);
        let index = CountIndex::build(&dataset);
        assert!(index.is_coarse());
        let debian = OsSet::singleton(OsDistribution::Debian);
        // The whole range (and anything containing it) is exact…
        assert_eq!(
            index.count_common_years(debian, ServerProfile::FatServer, 0, u16::MAX),
            Some(MAX_YEAR_LAYERS + 10)
        );
        // …a window entirely outside the data is exactly zero…
        assert_eq!(
            index.count_common_years(debian, ServerProfile::FatServer, 3000, 4000),
            Some(0)
        );
        // …and a partial window is not answerable.
        assert_eq!(
            index.count_common_years(debian, ServerProfile::FatServer, 1000, 1100),
            None
        );
    }
}
