//! The study dataset: a relational store plus the paper's filtered views.

use std::sync::Arc;

use classify::Classifier;
use nvd_model::{OsDistribution, OsSet, VulnerabilityEntry};
use parking_lot::RwLock;
use vulnstore::{VulnId, VulnStore, VulnerabilityRow};

use crate::index::CountIndex;

/// The three server configurations the paper evaluates (Section IV-B).
///
/// * `FatServer` — every valid vulnerability counts (a platform with a
///   reasonable number of installed applications);
/// * `ThinServer` — Application-class vulnerabilities are filtered out (a
///   stripped-down server offering a single service);
/// * `IsolatedThinServer` — additionally only remotely exploitable
///   vulnerabilities count (the machine is physically protected, so local
///   attacks are out of scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServerProfile {
    /// All valid vulnerabilities.
    FatServer,
    /// No Application vulnerabilities.
    ThinServer,
    /// No Application vulnerabilities, remotely exploitable only.
    IsolatedThinServer,
}

impl ServerProfile {
    /// The three profiles in increasing order of filtering.
    pub const ALL: [ServerProfile; 3] = [
        ServerProfile::FatServer,
        ServerProfile::ThinServer,
        ServerProfile::IsolatedThinServer,
    ];

    /// The column label used in Table III.
    pub fn label(&self) -> &'static str {
        match self {
            ServerProfile::FatServer => "All",
            ServerProfile::ThinServer => "No Applications",
            ServerProfile::IsolatedThinServer => "No App. and No Local",
        }
    }
}

impl std::fmt::Display for ServerProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ServerProfile {
    type Err = crate::analysis::AnalysisError;

    /// Parses the CLI spellings of the three profiles: `fat`, `thin` and
    /// `isolated` (plus a few long-form aliases).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fat" | "fat-server" | "all" => Ok(ServerProfile::FatServer),
            "thin" | "thin-server" | "noapp" => Ok(ServerProfile::ThinServer),
            "isolated" | "isolated-thin" | "its" => Ok(ServerProfile::IsolatedThinServer),
            other => Err(crate::analysis::AnalysisError::UnknownProfile(
                other.to_string(),
            )),
        }
    }
}

/// The two periods of the Table V / Figure 3 analysis, plus the full study
/// period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Period {
    /// 1994–2005 (two thirds of the valid vulnerabilities).
    History,
    /// 2006–2010 (the remaining third).
    Observed,
    /// 1994–2010.
    Whole,
}

impl Period {
    /// The inclusive year range of the period.
    pub fn years(&self) -> (u16, u16) {
        match self {
            Period::History => (1994, 2005),
            Period::Observed => (2006, 2010),
            Period::Whole => (1994, 2010),
        }
    }

    /// Whether a publication year falls in the period.
    pub fn contains(&self, year: u16) -> bool {
        let (lo, hi) = self.years();
        (lo..=hi).contains(&year)
    }

    /// Label used in tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Period::History => "History",
            Period::Observed => "Observed",
            Period::Whole => "1994-2010",
        }
    }
}

/// The vulnerability dataset of the study, wrapping a [`VulnStore`] and
/// exposing the filtered queries every analysis is built on.
///
/// The group-count queries (`count_common*`, `count_shared_within*`) are
/// answered by a lazily built, memoized [`CountIndex`] — an O(1) table
/// lookup instead of a store scan. The index is dropped whenever the rows
/// mutate ([`StudyDataset::classify_unlabelled`]) and rebuilt on the next
/// query.
#[derive(Debug, Default)]
pub struct StudyDataset {
    store: VulnStore,
    /// The memoized count index (`None` until the first count query after
    /// a build or mutation). Shared by clones — the tables are immutable
    /// once built.
    index: RwLock<Option<Arc<CountIndex>>>,
}

impl Clone for StudyDataset {
    fn clone(&self) -> Self {
        StudyDataset {
            store: self.store.clone(),
            index: RwLock::new(self.index.read().clone()),
        }
    }
}

impl StudyDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        StudyDataset {
            store: VulnStore::new(),
            index: RwLock::new(None),
        }
    }

    /// Builds a dataset from parsed entries (duplicates are merged by CVE
    /// identifier, exactly like the paper's SQL ingestion).
    pub fn from_entries(entries: &[VulnerabilityEntry]) -> Self {
        let mut dataset = StudyDataset::new();
        dataset.store.ingest(entries);
        dataset
    }

    /// Builds a dataset from a pre-populated store.
    pub fn from_store(store: VulnStore) -> Self {
        StudyDataset {
            store,
            index: RwLock::new(None),
        }
    }

    /// The memoized [`CountIndex`] of the dataset, building it on first
    /// use. The build happens under the write lock, so concurrent first
    /// calls wait for (and then share) one build instead of redundantly
    /// transforming the same tables — `Study::run_all` fans eight
    /// analyses out at once and all of them want the index immediately.
    pub fn count_index(&self) -> Arc<CountIndex> {
        if let Some(index) = self.index.read().as_ref() {
            return Arc::clone(index);
        }
        let mut slot = self.index.write();
        if let Some(index) = slot.as_ref() {
            return Arc::clone(index);
        }
        let _span = crate::obs::span(crate::obs::SpanKind::IndexBuild, "count_index");
        let built = Arc::new(CountIndex::build(self));
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Installs a pre-built count index (a snapshot reload) so the first
    /// query after a warm restart skips the rebuild.
    pub(crate) fn preload_index(&self, index: Arc<CountIndex>) {
        *self.index.write() = Some(index);
    }

    /// The underlying store.
    pub fn store(&self) -> &VulnStore {
        &self.store
    }

    /// Consumes the dataset and returns the store.
    pub fn into_store(self) -> VulnStore {
        self.store
    }

    /// Classifies every valid vulnerability that does not yet have an
    /// OS-part class, using the given classifier (the automated counterpart
    /// of the paper's manual Section III-B step). Returns how many rows were
    /// classified.
    pub fn classify_unlabelled(&mut self, classifier: &Classifier) -> usize {
        let unlabelled: Vec<(VulnId, String)> = self
            .store
            .rows()
            .filter(|row| row.part.is_none())
            .map(|row| (row.id, row.summary.clone()))
            .collect();
        let count = unlabelled.len();
        for (id, summary) in unlabelled {
            let part = classifier.classify_summary(&summary);
            self.store
                .set_part(id, part)
                .expect("row ids obtained from the store are valid");
        }
        if count > 0 {
            // Classification changes profile retention; the memoized count
            // index is stale.
            *self.index.write() = None;
        }
        count
    }

    /// Number of valid vulnerabilities in the dataset.
    pub fn valid_count(&self) -> usize {
        self.store.valid_count()
    }

    /// A rough estimate of the dataset's resident memory (see
    /// [`VulnStore::estimated_bytes`]) — the unit of the serving registry's
    /// byte budget.
    pub fn estimated_bytes(&self) -> usize {
        self.store.estimated_bytes()
    }

    /// Whether a row survives the given server profile.
    pub fn retains(&self, row: &VulnerabilityRow, profile: ServerProfile) -> bool {
        if !row.is_valid() {
            return false;
        }
        match profile {
            ServerProfile::FatServer => true,
            ServerProfile::ThinServer => row.part.map(|p| p.is_base_system()).unwrap_or(true),
            ServerProfile::IsolatedThinServer => {
                row.part.map(|p| p.is_base_system()).unwrap_or(true) && self.store.is_remote(row.id)
            }
        }
    }

    /// The valid rows that survive a profile, an optional period restriction
    /// and affect **all** members of `group`.
    pub fn common_vulnerabilities(
        &self,
        group: OsSet,
        profile: ServerProfile,
        period: Period,
    ) -> Vec<&VulnerabilityRow> {
        self.store
            .rows()
            .filter(|row| {
                self.retains(row, profile)
                    && period.contains(row.year())
                    && group.is_subset_of(&row.os_set)
            })
            .collect()
    }

    /// Number of vulnerabilities common to every member of `group` under a
    /// profile, over the whole study period.
    pub fn count_common(&self, group: OsSet, profile: ServerProfile) -> usize {
        self.count_common_in(group, profile, Period::Whole)
    }

    /// Number of vulnerabilities common to every member of `group` under a
    /// profile, restricted to a period. O(1) via the memoized
    /// [`CountIndex`].
    pub fn count_common_in(&self, group: OsSet, profile: ServerProfile, period: Period) -> usize {
        let (first, last) = period.years();
        self.count_common_years(group, profile, first, last)
    }

    /// Number of vulnerabilities common to every member of `group` under a
    /// profile, published in `first..=last` (inclusive). O(1) via the
    /// memoized [`CountIndex`]; a coarse index (pathological year spans)
    /// falls back to a scan.
    pub fn count_common_years(
        &self,
        group: OsSet,
        profile: ServerProfile,
        first: u16,
        last: u16,
    ) -> usize {
        if let Some(count) = self
            .count_index()
            .count_common_years(group, profile, first, last)
        {
            return count;
        }
        self.store
            .rows()
            .filter(|row| {
                self.retains(row, profile)
                    && (first..=last).contains(&row.year())
                    && group.is_subset_of(&row.os_set)
            })
            .count()
    }

    /// Number of vulnerabilities of a single OS under a profile (the `v(A)`
    /// columns of Table III).
    pub fn count_for_os(&self, os: OsDistribution, profile: ServerProfile) -> usize {
        self.count_common(OsSet::singleton(os), profile)
    }

    /// The number of distinct vulnerabilities that affect **at least two**
    /// members of `group` under a profile and period — the quantity that
    /// matters for a replicated system, since a vulnerability present in two
    /// replicas already halves the attacker's work.
    pub fn count_shared_within(
        &self,
        group: OsSet,
        profile: ServerProfile,
        period: Period,
    ) -> usize {
        let (first, last) = period.years();
        self.count_shared_within_years(group, profile, first, last)
    }

    /// [`StudyDataset::count_shared_within`] over an explicit inclusive
    /// year window. O(1) via the memoized [`CountIndex`]; a coarse index
    /// falls back to a scan. A homogeneous configuration (`group.len() <=
    /// 1`) counts every vulnerability of the single OS, since four
    /// identical replicas share all of them.
    pub fn count_shared_within_years(
        &self,
        group: OsSet,
        profile: ServerProfile,
        first: u16,
        last: u16,
    ) -> usize {
        if let Some(count) = self
            .count_index()
            .count_shared_within_years(group, profile, first, last)
        {
            return count;
        }
        if group.len() <= 1 {
            return self.count_common_years(group, profile, first, last);
        }
        self.store
            .rows()
            .filter(|row| {
                self.retains(row, profile)
                    && (first..=last).contains(&row.year())
                    && row.os_set.intersection(group).len() >= 2
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{CveId, CvssV2, Date, OsPart, Validity};

    fn entry(
        number: u32,
        year: u16,
        part: Option<OsPart>,
        remote: bool,
        oses: &[OsDistribution],
    ) -> VulnerabilityEntry {
        let mut builder = VulnerabilityEntry::builder(CveId::new(year, number))
            .published(Date::new(year, 6, 1).unwrap())
            .summary(format!("synthetic entry {number}"))
            .cvss(if remote {
                CvssV2::typical_remote()
            } else {
                CvssV2::typical_local()
            });
        if let Some(part) = part {
            builder = builder.part(part);
        }
        for os in oses {
            builder = builder.affects_os(*os);
        }
        builder.build().unwrap()
    }

    fn sample_dataset() -> StudyDataset {
        use OsDistribution::*;
        StudyDataset::from_entries(&[
            entry(1, 2000, Some(OsPart::Kernel), true, &[OpenBsd, NetBsd]),
            entry(2, 2004, Some(OsPart::Application), true, &[OpenBsd, NetBsd]),
            entry(
                3,
                2007,
                Some(OsPart::SystemSoftware),
                false,
                &[OpenBsd, NetBsd],
            ),
            entry(4, 2008, Some(OsPart::Kernel), true, &[OpenBsd]),
            entry(5, 2009, Some(OsPart::Kernel), true, &[NetBsd]),
        ])
    }

    #[test]
    fn profiles_filter_progressively() {
        let study = sample_dataset();
        let pair = OsSet::pair(OsDistribution::OpenBsd, OsDistribution::NetBsd);
        assert_eq!(study.count_common(pair, ServerProfile::FatServer), 3);
        assert_eq!(study.count_common(pair, ServerProfile::ThinServer), 2);
        assert_eq!(
            study.count_common(pair, ServerProfile::IsolatedThinServer),
            1
        );
    }

    #[test]
    fn per_os_counts_match_table_iii_diagonal_semantics() {
        let study = sample_dataset();
        assert_eq!(
            study.count_for_os(OsDistribution::OpenBsd, ServerProfile::FatServer),
            4
        );
        assert_eq!(
            study.count_for_os(OsDistribution::NetBsd, ServerProfile::FatServer),
            4
        );
        assert_eq!(
            study.count_for_os(OsDistribution::OpenBsd, ServerProfile::IsolatedThinServer),
            2
        );
    }

    #[test]
    fn period_restriction_filters_by_year() {
        let study = sample_dataset();
        let pair = OsSet::pair(OsDistribution::OpenBsd, OsDistribution::NetBsd);
        assert_eq!(
            study.count_common_in(pair, ServerProfile::FatServer, Period::History),
            2
        );
        assert_eq!(
            study.count_common_in(pair, ServerProfile::FatServer, Period::Observed),
            1
        );
        assert!(Period::History.contains(2005));
        assert!(!Period::History.contains(2006));
        assert_eq!(Period::Observed.years(), (2006, 2010));
        assert_eq!(Period::Whole.label(), "1994-2010");
    }

    #[test]
    fn invalid_entries_never_count() {
        let mut invalid = entry(
            10,
            2005,
            Some(OsPart::Kernel),
            true,
            &[OsDistribution::OpenBsd],
        );
        invalid.set_validity(Validity::Unspecified);
        let study = StudyDataset::from_entries(&[invalid]);
        assert_eq!(study.valid_count(), 0);
        assert_eq!(
            study.count_for_os(OsDistribution::OpenBsd, ServerProfile::FatServer),
            0
        );
    }

    #[test]
    fn unclassified_rows_are_treated_as_base_system() {
        let study =
            StudyDataset::from_entries(&[entry(11, 2005, None, true, &[OsDistribution::Solaris])]);
        assert_eq!(
            study.count_for_os(OsDistribution::Solaris, ServerProfile::ThinServer),
            1
        );
    }

    #[test]
    fn classify_unlabelled_assigns_parts() {
        let mut study = StudyDataset::from_entries(&[
            VulnerabilityEntry::builder(CveId::new(2006, 77))
                .summary("Buffer overflow in the kernel TCP/IP stack allows remote attackers to crash the system")
                .affects_os(OsDistribution::FreeBsd)
                .build()
                .unwrap(),
        ]);
        let classified = study.classify_unlabelled(&Classifier::with_default_rules());
        assert_eq!(classified, 1);
        let row = study.store().rows().next().unwrap();
        assert_eq!(row.part, Some(OsPart::Kernel));
        // A second pass has nothing left to classify.
        assert_eq!(
            study.classify_unlabelled(&Classifier::with_default_rules()),
            0
        );
    }

    #[test]
    fn shared_within_counts_pairs_inside_a_group() {
        use OsDistribution::*;
        let study = sample_dataset();
        let group = OsSet::from_iter([OpenBsd, NetBsd, FreeBsd, Solaris]);
        // Entries 1-3 affect two members of the group; entries 4 and 5 only one.
        assert_eq!(
            study.count_shared_within(group, ServerProfile::FatServer, Period::Whole),
            3
        );
        // A homogeneous configuration counts every vulnerability of that OS.
        assert_eq!(
            study.count_shared_within(
                OsSet::singleton(OpenBsd),
                ServerProfile::FatServer,
                Period::Whole
            ),
            4
        );
    }
}
