//! The typed analysis layer: the [`Analysis`] trait every deliverable of the
//! paper implements, the [`AnalysisId`] registry that drives the CLI and the
//! combined report, and the [`Section`]/[`Artifact`] building blocks handed
//! to the renderers.
//!
//! An analysis is a pure function from a study dataset (plus a typed
//! [`Analysis::Config`]) to an output value. The [`Study`] session runs
//! analyses on demand, memoizes their default-config results and can fan the
//! whole registry out across threads — see [`Study::run_all`].

use std::fmt;

use tabular::{SeriesSet, TextTable};

use crate::study::Study;

/// Identifies one of the registered analyses. The registry (see
/// [`registry`]) maps every id to its runner and section builders, so a new
/// analysis only needs a new variant plus one registry entry to appear in
/// the combined report and the CLI dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnalysisId {
    /// Table I — per-OS validity distribution.
    Validity,
    /// Table II — per-OS component-class distribution.
    Classes,
    /// Tables III/IV and the Section IV-E summary — pairwise common
    /// vulnerabilities.
    Pairwise,
    /// Table V — history vs observed period split.
    Split,
    /// Table VI — diversity across OS releases.
    Releases,
    /// Figure 2 — temporal distribution per OS family.
    Temporal,
    /// Section IV-B — k-OS combination analysis.
    KWay,
    /// Section IV-C / Figure 3 — replica-group selection and validation.
    Selection,
}

impl AnalysisId {
    /// Every registered analysis, in the order the combined report presents
    /// them.
    pub const ALL: [AnalysisId; 8] = [
        AnalysisId::Validity,
        AnalysisId::Classes,
        AnalysisId::Pairwise,
        AnalysisId::Split,
        AnalysisId::Releases,
        AnalysisId::Temporal,
        AnalysisId::KWay,
        AnalysisId::Selection,
    ];

    /// The stable machine-readable name (used as a CLI token).
    pub fn name(&self) -> &'static str {
        match self {
            AnalysisId::Validity => "validity",
            AnalysisId::Classes => "classes",
            AnalysisId::Pairwise => "pairwise",
            AnalysisId::Split => "split",
            AnalysisId::Releases => "releases",
            AnalysisId::Temporal => "temporal",
            AnalysisId::KWay => "kway",
            AnalysisId::Selection => "selection",
        }
    }

    /// The paper deliverables the analysis reproduces.
    pub fn deliverables(&self) -> &'static str {
        match self {
            AnalysisId::Validity => "Table I",
            AnalysisId::Classes => "Table II",
            AnalysisId::Pairwise => "Tables III-IV, Section IV-E summary",
            AnalysisId::Split => "Table V",
            AnalysisId::Releases => "Table VI",
            AnalysisId::Temporal => "Figure 2",
            AnalysisId::KWay => "Section IV-B",
            AnalysisId::Selection => "Figure 3",
        }
    }

    /// One-line description shown by the CLI.
    pub fn describe(&self) -> &'static str {
        match self {
            AnalysisId::Validity => "distribution of OS vulnerabilities by validity flag",
            AnalysisId::Classes => "vulnerabilities per OS component class",
            AnalysisId::Pairwise => "common vulnerabilities for every OS pair",
            AnalysisId::Split => "history vs observed common vulnerabilities",
            AnalysisId::Releases => "common vulnerabilities between OS releases",
            AnalysisId::Temporal => "per-year vulnerability publications per family",
            AnalysisId::KWay => "vulnerabilities shared by k or more OSes",
            AnalysisId::Selection => "replica-group selection and validation",
        }
    }

    /// Resolves a machine-readable name back to an id.
    pub fn from_name(name: &str) -> Result<AnalysisId, AnalysisError> {
        AnalysisId::ALL
            .into_iter()
            .find(|id| id.name() == name)
            .ok_or_else(|| AnalysisError::UnknownAnalysis(name.to_string()))
    }
}

impl fmt::Display for AnalysisId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced when configuring or dispatching analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A year range with `first_year > last_year` (e.g. a Figure 2 request
    /// for 2010–1993). The old API silently produced empty series instead.
    InvalidYearRange {
        /// Requested first year.
        first: u16,
        /// Requested last year.
        last: u16,
    },
    /// An analysis name that is not in the registry.
    UnknownAnalysis(String),
    /// An output format name that is not `text`, `csv` or `json`.
    UnknownFormat(String),
    /// A server-profile name that is not `fat`, `thin` or `isolated`.
    UnknownProfile(String),
    /// A selection-criterion name that is not `pairwise-sum` or
    /// `distinct-shared`.
    UnknownCriterion(String),
    /// A configuration key the analysis does not accept (see
    /// [`crate::params::FromParams`]).
    UnknownParam {
        /// The rejected key.
        name: String,
        /// The keys the configuration accepts.
        expected: &'static [&'static str],
    },
    /// A configuration value that failed to parse.
    InvalidParam {
        /// The key whose value is invalid.
        name: String,
        /// The rejected raw value.
        value: String,
        /// Why the value failed to parse.
        reason: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InvalidYearRange { first, last } => write!(
                f,
                "invalid year range: first year {first} is after last year {last}"
            ),
            AnalysisError::UnknownAnalysis(name) => {
                write!(f, "unknown analysis {name:?} (see `AnalysisId::ALL`)")
            }
            AnalysisError::UnknownFormat(name) => {
                write!(f, "unknown format {name:?} (expected text, csv or json)")
            }
            AnalysisError::UnknownProfile(name) => write!(
                f,
                "unknown server profile {name:?} (expected fat, thin or isolated)"
            ),
            AnalysisError::UnknownCriterion(name) => write!(
                f,
                "unknown selection criterion {name:?} (expected pairwise-sum or distinct-shared)"
            ),
            AnalysisError::UnknownParam { name, expected } => {
                if expected.is_empty() {
                    write!(f, "unknown parameter {name:?} (the analysis takes none)")
                } else {
                    write!(
                        f,
                        "unknown parameter {name:?} (expected one of: {})",
                        expected.join(", ")
                    )
                }
            }
            AnalysisError::InvalidParam {
                name,
                value,
                reason,
            } => write!(f, "invalid value {value:?} for parameter {name}: {reason}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// A deliverable of the paper expressed as one typed computation.
///
/// Implementors are the analysis output types themselves (`type Output =
/// Self`), so a session lookup reads naturally:
/// `study.get::<PairwiseAnalysis>()`.
///
/// `run` receives the whole [`Study`] session rather than the bare dataset,
/// so analyses can compose: the pairwise summary, for instance, reuses the
/// memoized class distribution instead of recomputing it.
pub trait Analysis {
    /// Analysis parameters. `Default` must yield the paper's configuration.
    type Config: Clone + Default + Send + Sync;
    /// The computed result (also the implementing type, by convention).
    type Output: Clone + Send + Sync + 'static;

    /// The registry identity of the analysis.
    fn id() -> AnalysisId;

    /// Runs the analysis over the session's dataset.
    fn run(study: &Study, config: &Self::Config) -> Result<Self::Output, AnalysisError>;
}

/// The body of a rendered section: either an aligned table or a set of
/// labelled series. Every output format ([`crate::render::Format`]) knows
/// how to render both.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A table deliverable (Tables I–VI, Figure 3, k-way, summary).
    Table(TextTable),
    /// A series deliverable (the Figure 2 sub-plots).
    Series(SeriesSet),
}

/// A titled deliverable, the unit the renderers consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section heading (e.g. `Table I: validity distribution`).
    pub title: String,
    /// The table or series body.
    pub artifact: Artifact,
}

impl Section {
    /// Creates a table section.
    pub fn table(title: impl Into<String>, table: TextTable) -> Self {
        Section {
            title: title.into(),
            artifact: Artifact::Table(table),
        }
    }

    /// Creates a series section.
    pub fn series(title: impl Into<String>, series: SeriesSet) -> Self {
        Section {
            title: title.into(),
            artifact: Artifact::Series(series),
        }
    }
}

/// A registry hook building the sections of one analysis.
pub type SectionsFn = fn(&Study) -> Result<Vec<Section>, AnalysisError>;

/// A registry hook building a single epilogue section.
pub type SectionFn = fn(&Study) -> Result<Section, AnalysisError>;

/// A registry hook building the sections of one analysis under an untyped
/// parameter list (see [`crate::params::FromParams`]). An empty list is the
/// memoized default configuration; a non-empty list is parsed into the
/// analysis's `Config` and run through [`Study::get_with`].
pub type ParamSectionsFn =
    fn(&Study, &crate::params::Params) -> Result<Vec<Section>, AnalysisError>;

/// One registry row: an [`AnalysisId`] plus the type-erased hooks the
/// dispatcher needs — forcing the memoized computation, building the
/// analysis's own sections, and contributing to the combined report.
pub struct AnalysisEntry {
    /// The analysis this entry describes.
    pub id: AnalysisId,
    /// Runs (and memoizes) the analysis under its default configuration.
    pub prime: fn(&Study) -> Result<(), AnalysisError>,
    /// Builds every section of the analysis (used by per-analysis exports).
    pub sections: SectionsFn,
    /// Builds the analysis's sections under an explicit parameter list
    /// (the parameterized CLI commands and the HTTP query-string path).
    pub sections_with: ParamSectionsFn,
    /// The sections the analysis contributes to the *body* of the combined
    /// report, or `None` to stay out of it (the selection analysis predates
    /// the combined report and keeps its own subcommand instead, preserving
    /// the historical report layout byte for byte).
    pub report_sections: Option<SectionsFn>,
    /// A section appended after every body section (the pairwise analysis
    /// closes the report with the Section IV-E summary).
    pub epilogue: Option<SectionFn>,
}

fn prime<A: Analysis>(study: &Study) -> Result<(), AnalysisError> {
    study.get::<A>().map(|_| ())
}

/// The analysis registry, in report order. `Study::run_all`, the combined
/// report and the CLI dispatcher are all driven by this table, so adding an
/// entry makes a new analysis appear everywhere at once.
pub fn registry() -> &'static [AnalysisEntry] {
    const REGISTRY: &[AnalysisEntry] = &[
        AnalysisEntry {
            id: AnalysisId::Validity,
            prime: prime::<crate::classes::ValidityDistribution>,
            sections: crate::classes::validity_sections,
            sections_with: crate::classes::validity_sections_with,
            report_sections: Some(crate::classes::validity_sections),
            epilogue: None,
        },
        AnalysisEntry {
            id: AnalysisId::Classes,
            prime: prime::<crate::classes::ClassDistribution>,
            sections: crate::classes::class_sections,
            sections_with: crate::classes::class_sections_with,
            report_sections: Some(crate::classes::class_sections),
            epilogue: None,
        },
        AnalysisEntry {
            id: AnalysisId::Pairwise,
            prime: prime::<crate::pairwise::PairwiseAnalysis>,
            sections: crate::pairwise::sections,
            sections_with: crate::pairwise::sections_with,
            report_sections: Some(crate::pairwise::table_sections),
            epilogue: Some(crate::pairwise::summary_section),
        },
        AnalysisEntry {
            id: AnalysisId::Split,
            prime: prime::<crate::split::SplitMatrix>,
            sections: crate::split::sections,
            sections_with: crate::split::sections_with,
            report_sections: Some(crate::split::sections),
            epilogue: None,
        },
        AnalysisEntry {
            id: AnalysisId::Releases,
            prime: prime::<crate::releases::ReleaseAnalysis>,
            sections: crate::releases::sections,
            sections_with: crate::releases::sections_with,
            report_sections: Some(crate::releases::sections),
            epilogue: None,
        },
        AnalysisEntry {
            id: AnalysisId::Temporal,
            prime: prime::<crate::temporal::TemporalAnalysis>,
            sections: crate::temporal::sections,
            sections_with: crate::temporal::sections_with,
            report_sections: Some(crate::temporal::sections),
            epilogue: None,
        },
        AnalysisEntry {
            id: AnalysisId::KWay,
            prime: prime::<crate::kway::KWayAnalysis>,
            sections: crate::kway::sections,
            sections_with: crate::kway::sections_with,
            report_sections: Some(crate::kway::sections),
            epilogue: None,
        },
        AnalysisEntry {
            id: AnalysisId::Selection,
            prime: prime::<crate::selection::SelectionAnalysis>,
            sections: crate::selection::sections,
            sections_with: crate::selection::sections_with,
            report_sections: None,
            epilogue: None,
        },
    ];
    REGISTRY
}

/// Builds the sections of one analysis under an untyped parameter list: the
/// entry point shared by the parameterized `osdiv <analysis>` CLI commands
/// and the HTTP `GET /v1/analyses/{id}` route, so both emit byte-identical
/// documents for the same id, parameters and format.
pub fn analysis_sections(
    study: &Study,
    id: AnalysisId,
    params: &crate::params::Params,
) -> Result<Vec<Section>, AnalysisError> {
    (registry_entry(id).sections_with)(study, params)
}

/// The registry rendered as a table (the CLI's `list` command and the
/// server's `GET /v1/analyses` route).
pub fn registry_table() -> TextTable {
    let mut table = TextTable::new(["Analysis", "Deliverables", "Description"]);
    for entry in registry() {
        table.push_row([
            entry.id.name().to_string(),
            entry.id.deliverables().to_string(),
            entry.id.describe().to_string(),
        ]);
    }
    table
}

/// The registry table as a titled section.
pub fn registry_section() -> Section {
    Section::table("Analysis registry", registry_table())
}

/// Looks one registry entry up by id.
pub fn registry_entry(id: AnalysisId) -> &'static AnalysisEntry {
    registry()
        .iter()
        .find(|entry| entry.id == id)
        .expect("every AnalysisId has a registry entry")
}

/// Builds the section sequence of the combined report: every registry
/// entry's report contribution in registry order, followed by the epilogue
/// sections. The layout (and, through the text renderer, the byte-for-byte
/// output) matches the historical `report::full_report`.
pub fn report_sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    let mut sections = Vec::new();
    for entry in registry() {
        if let Some(build) = entry.report_sections {
            sections.extend(build(study)?);
        }
    }
    for entry in registry() {
        if let Some(build) = entry.epilogue {
            sections.push(build(study)?);
        }
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_has_a_registry_entry_in_order() {
        let ids: Vec<AnalysisId> = registry().iter().map(|e| e.id).collect();
        assert_eq!(ids, AnalysisId::ALL.to_vec());
        for id in AnalysisId::ALL {
            assert_eq!(registry_entry(id).id, id);
        }
    }

    #[test]
    fn names_round_trip_and_are_unique() {
        for id in AnalysisId::ALL {
            assert_eq!(AnalysisId::from_name(id.name()), Ok(id));
            assert_eq!(format!("{id}"), id.name());
            assert!(!id.deliverables().is_empty());
            assert!(!id.describe().is_empty());
        }
        assert_eq!(
            AnalysisId::from_name("nope"),
            Err(AnalysisError::UnknownAnalysis("nope".to_string()))
        );
    }

    #[test]
    fn errors_render_a_human_message() {
        let err = AnalysisError::InvalidYearRange {
            first: 2010,
            last: 1993,
        };
        assert!(err.to_string().contains("2010"));
        assert!(AnalysisError::UnknownFormat("yaml".into())
            .to_string()
            .contains("yaml"));
        assert!(AnalysisError::UnknownProfile("mega".into())
            .to_string()
            .contains("mega"));
    }

    #[test]
    fn sections_constructors_tag_the_artifact() {
        let table = Section::table("t", TextTable::new(["a"]));
        assert!(matches!(table.artifact, Artifact::Table(_)));
        let series = Section::series("s", SeriesSet::new("s"));
        assert!(matches!(series.artifact, Artifact::Series(_)));
    }
}
