//! OS-diversity analysis for intrusion tolerance — the core library of the
//! reproduction of Garcia et al., *"OS diversity for intrusion tolerance:
//! Myth or reality?"* (DSN 2011).
//!
//! The crate answers the paper's central question — *what are the gains of
//! applying OS diversity in a replicated intrusion-tolerant system?* — from
//! a vulnerability dataset, through a small session API:
//!
//! * [`Study`] wraps a [`StudyDataset`] and runs analyses on demand,
//!   **memoizing** each default-configuration result and fanning the whole
//!   registry out across threads with [`Study::run_all`];
//! * [`Analysis`] is the trait every deliverable implements: a typed
//!   `Config` (whose `Default` is the paper's setup), an `Output`, and a
//!   pure `run` over the session. Analyses compose — the Section IV-E
//!   summary reuses the memoized pairwise and class results;
//! * [`AnalysisId`] names the eight registered analyses; the
//!   [`analysis::registry`] drives the combined report and the `osdiv` CLI,
//!   so a new analysis plugs into both with one entry;
//! * [`render`] holds the pluggable output sinks: every table and figure
//!   renders as aligned text, CSV or JSON through the
//!   [`Render`](render::Render) trait.
//!
//! The eight analyses map to the paper as follows: [`ValidityDistribution`]
//! (Table I), [`ClassDistribution`] (Table II), [`PairwiseAnalysis`]
//! (Tables III/IV and the Section IV-E summary), [`SplitMatrix`] (Table V),
//! [`ReleaseAnalysis`] (Table VI), [`TemporalAnalysis`] (Figure 2),
//! [`KWayAnalysis`] (Section IV-B) and [`SelectionAnalysis`] (Section IV-C,
//! Figure 3).
//!
//! # Example
//!
//! ```
//! use datagen::CalibratedGenerator;
//! use osdiv_core::{AnalysisId, Format, PairwiseAnalysis, Study};
//!
//! let dataset = CalibratedGenerator::new(1).generate();
//! let study = Study::from_entries(dataset.entries());
//!
//! // Typed, memoized analysis lookup.
//! let pairwise = study.get::<PairwiseAnalysis>().unwrap();
//! assert_eq!(pairwise.rows().len(), 55);
//! assert!(study.is_cached(AnalysisId::Pairwise));
//!
//! // Custom configurations are what-if queries.
//! use osdiv_core::TemporalConfig;
//! let window = study
//!     .get_with::<osdiv_core::TemporalAnalysis>(&TemporalConfig {
//!         first_year: 2000,
//!         last_year: 2005,
//!     })
//!     .unwrap();
//! assert_eq!(window.last_year(), 2005);
//!
//! // The whole report, in any format, computed in parallel.
//! study.run_all().unwrap();
//! let json = study.report(Format::Json).unwrap();
//! assert!(json.starts_with("{\"sections\":["));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod classes;
pub mod dataset;
pub mod fault;
pub mod index;
pub mod kway;
pub mod obs;
pub mod pairwise;
pub mod params;
pub mod releases;
pub mod render;
pub mod selection;
pub mod snapshot;
pub mod split;
pub mod study;
pub mod temporal;

pub use analysis::{
    analysis_sections, registry, registry_entry, registry_section, registry_table, Analysis,
    AnalysisEntry, AnalysisError, AnalysisId, Artifact, Section,
};
pub use classes::{ClassDistribution, ValidityDistribution};
pub use dataset::{Period, ServerProfile, StudyDataset};
pub use index::CountIndex;
pub use kway::{KWayAnalysis, KWayConfig, KWayRow};
pub use obs::{
    EventLog, FlightRecorder, HistogramSnapshot, JsonLine, LatencyHistogram, RingSnapshot,
    SpanGuard, SpanKind, SpanRecord,
};
pub use pairwise::{PairRow, PairwiseAnalysis, PairwiseConfig, PairwiseSummary, PartBreakdownRow};
pub use params::{FromParams, Params};
pub use releases::{ReleaseAnalysis, ReleaseConfig, ReleasePairRow};
pub use render::{renderer, CsvRenderer, Format, JsonRenderer, Render, TextRenderer};
pub use selection::{
    figure3_configurations, figure3_table, ConfigurationOutcome, ReplicaSelection,
    SelectionAnalysis, SelectionConfig, SelectionCriterion,
};
pub use snapshot::{Snapshot, SnapshotError, SnapshotInfo};
pub use split::{SplitConfig, SplitMatrix};
pub use study::Study;
pub use temporal::{TemporalAnalysis, TemporalConfig};
