//! OS-diversity analysis for intrusion tolerance — the core library of the
//! reproduction of Garcia et al., *"OS diversity for intrusion tolerance:
//! Myth or reality?"* (DSN 2011).
//!
//! The crate answers the paper's central question — *what are the gains of
//! applying OS diversity in a replicated intrusion-tolerant system?* — from
//! a vulnerability dataset:
//!
//! * [`StudyDataset`] wraps the relational store and exposes the filtered
//!   views the paper uses (Fat Server, Thin Server, Isolated Thin Server);
//! * [`pairwise`] computes the common-vulnerability counts for every OS pair
//!   (Table III), their per-class breakdown (Table IV) and the summary
//!   statistics of Section IV-E (average reduction, pairs with at most one
//!   common vulnerability);
//! * [`classes`] reproduces the validity distribution (Table I) and the
//!   per-class distribution (Table II);
//! * [`temporal`] produces the per-family, per-year series of Figure 2;
//! * [`kway`] counts vulnerabilities shared by k or more OSes and finds the
//!   best/worst groups of a given size (Section IV-B);
//! * [`split`] computes the history/observed matrix of Table V;
//! * [`selection`] selects replica groups from history data and validates
//!   them on observed data (Section IV-C, Figure 3);
//! * [`releases`] analyses diversity across OS releases (Table VI);
//! * [`report`] renders every analysis as aligned text tables / CSV series.
//!
//! # Example
//!
//! ```
//! use datagen::CalibratedGenerator;
//! use nvd_model::{OsDistribution, OsSet};
//! use osdiv_core::{ServerProfile, StudyDataset};
//!
//! let dataset = CalibratedGenerator::new(1).generate();
//! let study = StudyDataset::from_entries(dataset.entries());
//!
//! let pair = OsSet::pair(OsDistribution::Debian, OsDistribution::RedHat);
//! let fat = study.count_common(pair, ServerProfile::FatServer);
//! let isolated = study.count_common(pair, ServerProfile::IsolatedThinServer);
//! assert!(isolated < fat, "filtering must reduce common vulnerabilities");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod dataset;
pub mod kway;
pub mod pairwise;
pub mod releases;
pub mod report;
pub mod selection;
pub mod split;
pub mod temporal;

pub use classes::{ClassDistribution, ValidityDistribution};
pub use dataset::{Period, ServerProfile, StudyDataset};
pub use kway::{KWayAnalysis, KWayRow};
pub use pairwise::{PairRow, PairwiseAnalysis, PairwiseSummary, PartBreakdownRow};
pub use releases::{ReleaseAnalysis, ReleasePairRow};
pub use selection::{
    figure3_configurations, ConfigurationOutcome, ReplicaSelection, SelectionCriterion,
};
pub use split::SplitMatrix;
pub use temporal::TemporalAnalysis;
