//! Pluggable output renderers: every table and figure of the study can be
//! emitted as aligned text, CSV or JSON through one [`Render`] sink trait.
//!
//! The renderers consume the [`Section`]/[`Artifact`] values produced by the
//! analysis registry, so a new analysis (or a new output format) plugs in
//! without touching the other side:
//!
//! * [`TextRenderer`] — the paper-style layout of the historical
//!   `report::full_report` (`== title ==` headings, aligned tables, CSV
//!   series);
//! * [`CsvRenderer`] — machine-readable CSV; a single section renders as a
//!   pure CSV document, multi-section documents separate the blocks with
//!   `# title` comment lines;
//! * [`JsonRenderer`] — one JSON document,
//!   `{"sections": [{"title": …, "data": …}, …]}`, built on the
//!   [`tabular::json`] helpers (the vendored `serde` is a marker stub).

use std::fmt;
use std::str::FromStr;

use tabular::json_string;

use crate::analysis::{AnalysisError, Artifact, Section};

/// The supported output formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Format {
    /// Paper-style aligned text (the default).
    #[default]
    Text,
    /// Comma-separated values.
    Csv,
    /// A single JSON document.
    Json,
}

impl Format {
    /// Every supported format.
    pub const ALL: [Format; 3] = [Format::Text, Format::Csv, Format::Json];

    /// The CLI token of the format.
    pub fn name(&self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    /// The HTTP `Content-Type` of the format (see [`tabular::mime`]).
    pub fn content_type(&self) -> &'static str {
        match self {
            Format::Text => tabular::mime::TEXT_PLAIN,
            Format::Csv => tabular::mime::TEXT_CSV,
            Format::Json => tabular::mime::APPLICATION_JSON,
        }
    }

    /// Resolves a media type (an `Accept` list member or a `Content-Type`)
    /// back to a format. Parameters are stripped and matching is
    /// case-insensitive; `*/*` and `text/*` resolve to the default
    /// text format.
    pub fn from_media_type(media_type: &str) -> Option<Format> {
        let essence = tabular::mime::essence(media_type);
        Format::ALL
            .into_iter()
            .find(|format| {
                tabular::mime::essence(format.content_type()).eq_ignore_ascii_case(essence)
            })
            .or(match essence {
                "*/*" | "text/*" => Some(Format::Text),
                "application/*" => Some(Format::Json),
                _ => None,
            })
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Format {
    type Err = AnalysisError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "txt" => Ok(Format::Text),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(AnalysisError::UnknownFormat(other.to_string())),
        }
    }
}

/// A rendering sink: turns artifacts and titled sections into one output
/// document.
pub trait Render {
    /// Renders a bare artifact (no title).
    fn artifact(&self, artifact: &Artifact) -> String;

    /// Renders one titled section.
    fn section(&self, section: &Section) -> String;

    /// Renders a sequence of sections as one document.
    fn document(&self, sections: &[Section]) -> String;
}

/// The paper-style text sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextRenderer;

impl Render for TextRenderer {
    fn artifact(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Table(table) => table.render(),
            Artifact::Series(series) => series.to_csv(),
        }
    }

    fn section(&self, section: &Section) -> String {
        format!(
            "== {} ==\n{}\n",
            section.title,
            self.artifact(&section.artifact)
        )
    }

    fn document(&self, sections: &[Section]) -> String {
        sections.iter().map(|s| self.section(s)).collect()
    }
}

/// The CSV sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvRenderer;

impl Render for CsvRenderer {
    fn artifact(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Table(table) => table.to_csv(),
            Artifact::Series(series) => series.to_csv(),
        }
    }

    fn section(&self, section: &Section) -> String {
        format!("# {}\n{}", section.title, self.artifact(&section.artifact))
    }

    fn document(&self, sections: &[Section]) -> String {
        match sections {
            [single] => self.artifact(&single.artifact),
            many => {
                let blocks: Vec<String> = many.iter().map(|s| self.section(s)).collect();
                blocks.join("\n")
            }
        }
    }
}

/// The JSON sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonRenderer;

impl Render for JsonRenderer {
    fn artifact(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Table(table) => table.to_json(),
            Artifact::Series(series) => series.to_json(),
        }
    }

    fn section(&self, section: &Section) -> String {
        format!(
            "{{\"title\":{},\"data\":{}}}",
            json_string(&section.title),
            self.artifact(&section.artifact)
        )
    }

    fn document(&self, sections: &[Section]) -> String {
        let inner: Vec<String> = sections.iter().map(|s| self.section(s)).collect();
        format!("{{\"sections\":[{}]}}\n", inner.join(","))
    }
}

/// The renderer for a format, behind one trait object.
pub fn renderer(format: Format) -> Box<dyn Render> {
    match format {
        Format::Text => Box::new(TextRenderer),
        Format::Csv => Box::new(CsvRenderer),
        Format::Json => Box::new(JsonRenderer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Series, SeriesSet, TextTable};

    fn table_section() -> Section {
        let mut table = TextTable::new(["OS", "Valid"]);
        table.push_row(["OpenBSD", "142"]);
        Section::table("Table I: validity distribution", table)
    }

    fn series_section() -> Section {
        let mut set = SeriesSet::new("BSD family");
        let mut series = Series::new("OpenBSD");
        series.push(2002, 12.0);
        set.push(series);
        Section::series("Figure 2 (BSD family)", set)
    }

    #[test]
    fn format_parsing_round_trips() {
        for format in Format::ALL {
            assert_eq!(format.name().parse::<Format>().unwrap(), format);
            assert_eq!(format!("{format}"), format.name());
        }
        assert_eq!(
            "yaml".parse::<Format>(),
            Err(AnalysisError::UnknownFormat("yaml".to_string()))
        );
        assert_eq!(Format::default(), Format::Text);
    }

    #[test]
    fn text_renderer_uses_report_headings() {
        let out = TextRenderer.document(&[table_section(), series_section()]);
        assert!(out.starts_with("== Table I: validity distribution ==\n"));
        assert!(out.contains("== Figure 2 (BSD family) ==\n"));
        assert!(out.contains("OpenBSD"));
    }

    #[test]
    fn csv_renderer_is_pure_csv_for_a_single_section() {
        let out = CsvRenderer.document(&[table_section()]);
        assert!(out.starts_with("OS,Valid\n"));
        assert!(!out.contains('#'));
        let multi = CsvRenderer.document(&[table_section(), series_section()]);
        assert!(multi.contains("# Table I: validity distribution\n"));
        assert!(multi.contains("# Figure 2 (BSD family)\n"));
    }

    #[test]
    fn json_renderer_emits_one_document() {
        let out = JsonRenderer.document(&[table_section(), series_section()]);
        assert!(out.starts_with("{\"sections\":["));
        assert!(out.contains("\"title\":\"Table I: validity distribution\""));
        assert!(out.contains("\"header\":[\"OS\",\"Valid\"]"));
        assert!(out.contains("\"label\":\"OpenBSD\""));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn content_types_round_trip_through_media_type_lookup() {
        for format in Format::ALL {
            assert_eq!(Format::from_media_type(format.content_type()), Some(format));
        }
        assert_eq!(
            Format::from_media_type("APPLICATION/JSON; q=0.8"),
            Some(Format::Json)
        );
        assert_eq!(Format::from_media_type("*/*"), Some(Format::Text));
        assert_eq!(Format::from_media_type("application/*"), Some(Format::Json));
        assert_eq!(Format::from_media_type("image/png"), None);
    }

    #[test]
    fn renderer_factory_dispatches_every_format() {
        for format in Format::ALL {
            let out = renderer(format).document(&[table_section()]);
            assert!(out.contains("OpenBSD") || out.contains("142"));
        }
    }
}
