//! Replica-group selection and validation (Section IV-C, Figure 3).
//!
//! The paper's methodology: use the *history* period (1994–2005) to choose
//! the replica OSes of an intrusion-tolerant system, then check on the
//! *observed* period (2006–2010) how many common vulnerabilities the chosen
//! group actually had. This module implements both the selection (exhaustive
//! search over groups, with a configurable scoring criterion) and the
//! Figure 3 evaluation of specific configurations.

use std::sync::Arc;

use nvd_model::{OsDistribution, OsSet};
use tabular::TextTable;

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::{Period, ServerProfile, StudyDataset};
use crate::index::CountIndex;
use crate::split::TABLE5_OSES;
use crate::study::Study;

/// How candidate replica groups are scored during selection (lower is
/// better in both cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionCriterion {
    /// Sum of the pairwise common-vulnerability counts inside the group —
    /// the quantity Table V exposes and the paper's narrative uses.
    PairwiseSum,
    /// Number of distinct vulnerabilities affecting at least two members of
    /// the group — the attacker-centric view (one such vulnerability
    /// compromises two replicas at once).
    DistinctShared,
}

impl std::str::FromStr for SelectionCriterion {
    type Err = AnalysisError;

    /// Parses the parameter spellings of the two criteria
    /// (`pairwise-sum` / `distinct-shared`, separators optional).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match normalized.as_str() {
            "pairwisesum" | "pairwise" => Ok(SelectionCriterion::PairwiseSum),
            "distinctshared" | "distinct" => Ok(SelectionCriterion::DistinctShared),
            _ => Err(AnalysisError::UnknownCriterion(s.to_string())),
        }
    }
}

/// The evaluation of one replica configuration over both periods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationOutcome {
    /// Display label (e.g. `Set1`).
    pub label: String,
    /// The replica OSes (a singleton set means four identical replicas).
    pub oses: OsSet,
    /// Score over the history period.
    pub history: usize,
    /// Score over the observed period.
    pub observed: usize,
}

/// Replica-group selection over a dataset.
#[derive(Debug, Clone)]
pub struct ReplicaSelection<'a> {
    study: &'a StudyDataset,
    /// The dataset's memoized count index: every score is an O(1) lookup
    /// (with a scan fallback through the dataset for coarse indexes).
    index: Arc<CountIndex>,
    profile: ServerProfile,
    criterion: SelectionCriterion,
    candidates: Vec<OsDistribution>,
}

impl<'a> ReplicaSelection<'a> {
    /// Creates a selection over the paper's eight history-rich OSes, the
    /// Isolated Thin Server profile and the distinct-shared criterion (the
    /// paper's narrative counts *vulnerabilities* — "this set would only
    /// have one vulnerability affecting two of the replicas" — so a
    /// vulnerability shared by three replicas is counted once, not three
    /// times).
    pub fn new(study: &'a StudyDataset) -> Self {
        ReplicaSelection {
            study,
            index: study.count_index(),
            profile: ServerProfile::IsolatedThinServer,
            criterion: SelectionCriterion::DistinctShared,
            candidates: TABLE5_OSES.to_vec(),
        }
    }

    /// An O(1) indexed common count with a scan fallback.
    fn common(&self, group: OsSet, period: Period) -> usize {
        self.index
            .count_common_in(group, self.profile, period)
            .unwrap_or_else(|| self.study.count_common_in(group, self.profile, period))
    }

    /// Restricts or widens the candidate OS pool.
    pub fn with_candidates(mut self, candidates: &[OsDistribution]) -> Self {
        self.candidates = candidates.to_vec();
        self
    }

    /// Changes the server profile.
    pub fn with_profile(mut self, profile: ServerProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Changes the scoring criterion.
    pub fn with_criterion(mut self, criterion: SelectionCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Scores a group over a period under the configured criterion.
    pub fn score(&self, group: OsSet, period: Period) -> usize {
        match self.criterion {
            SelectionCriterion::PairwiseSum => {
                if group.len() <= 1 {
                    // Four identical replicas: every vulnerability of the OS
                    // is common to all of them.
                    return self.common(group, period);
                }
                let members: Vec<OsDistribution> = group.iter().collect();
                let mut sum = 0;
                for (i, &a) in members.iter().enumerate() {
                    for &b in members.iter().skip(i + 1) {
                        sum += self.common(OsSet::pair(a, b), period);
                    }
                }
                sum
            }
            SelectionCriterion::DistinctShared => self
                .index
                .count_shared_within(group, self.profile, period)
                .unwrap_or_else(|| self.study.count_shared_within(group, self.profile, period)),
        }
    }

    /// Evaluates a configuration over both periods.
    pub fn evaluate(&self, label: impl Into<String>, oses: OsSet) -> ConfigurationOutcome {
        ConfigurationOutcome {
            label: label.into(),
            oses,
            history: self.score(oses, Period::History),
            observed: self.score(oses, Period::Observed),
        }
    }

    /// Exhaustively searches for the `top` best groups of `size` replicas
    /// according to the **history-period** score (the information available
    /// at deployment time), returning them with their history scores in
    /// ascending order.
    pub fn best_groups(&self, size: usize, top: usize) -> Vec<(OsSet, usize)> {
        let pool: OsSet = self.candidates.iter().copied().collect();
        let mut scored: Vec<(OsSet, usize)> = pool
            .subsets_of_size(size)
            .map(|group| (group, self.score(group, Period::History)))
            .collect();
        scored.sort_by_key(|(group, score)| (*score, group.bits()));
        scored.truncate(top);
        scored
    }

    /// The single OS with the fewest history-period vulnerabilities — the
    /// paper's baseline of four identical replicas ("the best strategy for
    /// this scenario would be to pick the OS with the least vulnerabilities
    /// during the history period").
    pub fn best_single_os(&self) -> (OsDistribution, usize) {
        self.candidates
            .iter()
            .map(|&os| (os, self.common(OsSet::singleton(os), Period::History)))
            .min_by_key(|(os, count)| (*count, os.index()))
            .expect("candidate pool is never empty")
    }

    /// Reproduces Figure 3: the homogeneous baseline (four replicas of the
    /// best single OS) plus the paper's four diverse configurations,
    /// evaluated over both periods.
    pub fn figure3(&self) -> Vec<ConfigurationOutcome> {
        let mut outcomes = Vec::new();
        let (best_os, _) = self.best_single_os();
        outcomes.push(self.evaluate(best_os.short_name(), OsSet::singleton(best_os)));
        for (label, oses) in figure3_configurations() {
            outcomes.push(self.evaluate(label, oses));
        }
        outcomes
    }
}

/// Configuration of the selection analysis. The default reproduces the
/// paper's Section IV-C methodology: the eight history-rich OSes, the
/// Isolated Thin Server profile, the distinct-shared criterion, and a
/// ranking of the five best four-OS groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionConfig {
    /// The server profile groups are scored under.
    pub profile: ServerProfile,
    /// How candidate groups are scored.
    pub criterion: SelectionCriterion,
    /// The candidate OS pool.
    pub candidates: Vec<OsDistribution>,
    /// The replica-group size to rank.
    pub group_size: usize,
    /// How many top groups to keep in the ranking.
    pub top: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            profile: ServerProfile::IsolatedThinServer,
            criterion: SelectionCriterion::DistinctShared,
            candidates: TABLE5_OSES.to_vec(),
            group_size: 4,
            top: 5,
        }
    }
}

/// The owned output of the selection analysis: the Figure 3 configuration
/// outcomes plus the history-ranked best groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionAnalysis {
    outcomes: Vec<ConfigurationOutcome>,
    ranked_groups: Vec<(OsSet, usize)>,
}

impl SelectionAnalysis {
    /// The Figure 3 outcomes: the homogeneous baseline followed by the four
    /// diverse configurations.
    pub fn outcomes(&self) -> &[ConfigurationOutcome] {
        &self.outcomes
    }

    /// The best groups of the configured size, ranked by ascending
    /// history-period score.
    pub fn ranked_groups(&self) -> &[(OsSet, usize)] {
        &self.ranked_groups
    }

    /// Renders the Figure 3 table.
    pub fn to_table(&self) -> TextTable {
        figure3_table(&self.outcomes)
    }

    /// Renders the group ranking as a table.
    pub fn ranking_table(&self) -> TextTable {
        let mut table = TextTable::new(["Group", "History score"]);
        for (group, score) in &self.ranked_groups {
            table.push_row([group.to_string(), score.to_string()]);
        }
        table
    }
}

impl Analysis for SelectionAnalysis {
    type Config = SelectionConfig;
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Selection
    }

    fn run(study: &Study, config: &SelectionConfig) -> Result<Self, AnalysisError> {
        let selection = ReplicaSelection::new(study.dataset())
            .with_candidates(&config.candidates)
            .with_profile(config.profile)
            .with_criterion(config.criterion);
        Ok(SelectionAnalysis {
            outcomes: selection.figure3(),
            ranked_groups: selection.best_groups(config.group_size, config.top),
        })
    }
}

/// Renders Figure 3 (replica configurations, history vs observed counts).
pub fn figure3_table(outcomes: &[ConfigurationOutcome]) -> TextTable {
    let mut table = TextTable::new(["Configuration", "OSes", "History", "Observed"]);
    for outcome in outcomes {
        let oses = if outcome.oses.len() == 1 {
            format!("{} x4 (homogeneous)", outcome.oses)
        } else {
            outcome.oses.to_string()
        };
        table.push_row([
            outcome.label.clone(),
            oses,
            outcome.history.to_string(),
            outcome.observed.to_string(),
        ]);
    }
    table
}

/// The Figure 3 sections of one analysis value.
fn sections_of(analysis: &SelectionAnalysis) -> Vec<Section> {
    vec![
        Section::table("Figure 3: replica configurations", analysis.to_table()),
        Section::table(
            "Best four-OS groups ranked from history data",
            analysis.ranking_table(),
        ),
    ]
}

/// The Figure 3 sections (configuration outcomes plus the group ranking).
pub(crate) fn sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    let analysis = study.get::<SelectionAnalysis>()?;
    Ok(sections_of(&analysis))
}

/// Parameterized Figure 3 sections: `profile=`, `criterion=`, `oses=`
/// (candidate pool), `group_size=` and `top=` select the search.
pub(crate) fn sections_with(
    study: &Study,
    params: &crate::params::Params,
) -> Result<Vec<Section>, AnalysisError> {
    use crate::params::FromParams;
    if params.is_empty() {
        return sections(study);
    }
    let config = SelectionConfig::from_params(params)?;
    Ok(sections_of(&study.get_with::<SelectionAnalysis>(&config)?))
}

/// The four diverse replica configurations of Figure 3 of the paper
/// (the homogeneous Debian baseline is derived from the data by
/// [`ReplicaSelection::best_single_os`]).
pub fn figure3_configurations() -> Vec<(&'static str, OsSet)> {
    use OsDistribution::*;
    vec![
        (
            "Set1",
            OsSet::from_iter([Windows2003, Solaris, Debian, OpenBsd]),
        ),
        (
            "Set2",
            OsSet::from_iter([Windows2003, Solaris, Debian, NetBsd]),
        ),
        (
            "Set3",
            OsSet::from_iter([Windows2003, Solaris, RedHat, NetBsd]),
        ),
        ("Set4", OsSet::from_iter([OpenBsd, NetBsd, Debian, RedHat])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::CalibratedGenerator;

    fn calibrated_study() -> StudyDataset {
        let dataset = CalibratedGenerator::new(9).generate();
        StudyDataset::from_entries(dataset.entries())
    }

    #[test]
    fn best_single_os_is_debian() {
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study);
        let (os, history) = selection.best_single_os();
        // The paper: "Debian would be the best choice because it only had 16
        // vulnerabilities that could be remotely exploited" in the history
        // period.
        assert_eq!(os, OsDistribution::Debian);
        assert!(history.abs_diff(16) <= 3, "history count {history}");
    }

    #[test]
    fn diverse_sets_beat_the_homogeneous_baseline_in_the_observed_period() {
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study);
        let outcomes = selection.figure3();
        assert_eq!(outcomes.len(), 5);
        let baseline = &outcomes[0];
        assert_eq!(baseline.oses.len(), 1);
        // The paper's point: the diverse configurations selected from
        // history data have far fewer observed-period common
        // vulnerabilities than four identical replicas. Set4 (BSD+Linux
        // only) is the weakest set and sits close to the baseline in our
        // calibrated data, so the requirement is: most sets win, and the
        // best one wins by a wide margin.
        let better = outcomes[1..]
            .iter()
            .filter(|o| o.observed < baseline.observed)
            .count();
        assert!(
            better >= 3,
            "only {better} of 4 diverse sets beat the baseline"
        );
        let best = outcomes[1..].iter().map(|o| o.observed).min().unwrap();
        assert!(
            best * 2 < baseline.observed,
            "best diverse set ({best}) should be well below the baseline ({})",
            baseline.observed
        );
        for diverse in &outcomes[1..] {
            assert_eq!(diverse.oses.len(), 4);
        }
    }

    #[test]
    fn set1_has_at_most_a_few_observed_common_vulnerabilities() {
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study);
        let outcomes = selection.figure3();
        let set1 = outcomes.iter().find(|o| o.label == "Set1").unwrap();
        // The paper: Set1 had a single common vulnerability in the observed
        // period (OpenBSD / Windows 2003); the calibration adds the named
        // multi-OS vulnerabilities of 2007/2008 on top of that.
        assert!(set1.observed <= 5, "Set1 observed = {}", set1.observed);
    }

    #[test]
    fn best_groups_are_sorted_and_have_the_requested_size() {
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study);
        let best = selection.best_groups(4, 5);
        assert_eq!(best.len(), 5);
        for window in best.windows(2) {
            assert!(window[0].1 <= window[1].1);
        }
        for (group, _) in &best {
            assert_eq!(group.len(), 4);
        }
        // The best four-OS groups found from history data share at most a
        // handful of vulnerabilities (the paper's top sets have 10-14).
        assert!(best[0].1 <= 20, "best history score {}", best[0].1);
    }

    #[test]
    fn top_groups_mix_families() {
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study);
        let (best_group, _) = selection.best_groups(4, 1)[0];
        let families: std::collections::HashSet<_> =
            best_group.iter().map(|os| os.family()).collect();
        assert!(
            families.len() >= 3,
            "the best group should span families, got {best_group}"
        );
    }

    #[test]
    fn distinct_shared_criterion_counts_each_vulnerability_once() {
        let study = calibrated_study();
        let pairwise = ReplicaSelection::new(&study);
        let distinct =
            ReplicaSelection::new(&study).with_criterion(SelectionCriterion::DistinctShared);
        let group = figure3_configurations()[3].1; // Set4
                                                   // A vulnerability shared by three members counts three times in the
                                                   // pairwise sum but once in the distinct count.
        assert!(distinct.score(group, Period::Whole) <= pairwise.score(group, Period::Whole));
    }

    #[test]
    fn six_os_group_with_few_common_vulnerabilities_exists() {
        // The paper: "it is possible to build a set of six operating systems
        // with few vulnerabilities" (OpenBSD, NetBSD, Windows 2003, Debian,
        // RedHat, Solaris).
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study);
        let best = selection.best_groups(6, 1);
        assert_eq!(best.len(), 1);
        let (group, history_score) = best[0];
        assert_eq!(group.len(), 6);
        assert!(
            history_score <= 40,
            "six-OS history score {history_score} too large"
        );
    }

    #[test]
    fn wider_candidate_pool_is_allowed() {
        let study = calibrated_study();
        let selection = ReplicaSelection::new(&study)
            .with_candidates(&OsDistribution::ALL)
            .with_profile(ServerProfile::ThinServer);
        let best = selection.best_groups(3, 2);
        assert_eq!(best.len(), 2);
    }
}
