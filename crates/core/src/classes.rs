//! Per-OS distributions: validity (Table I) and component classes (Table II).

use nvd_model::{OsDistribution, OsPart, Validity};
use tabular::TextTable;

use crate::analysis::{Analysis, AnalysisError, AnalysisId, Section};
use crate::dataset::StudyDataset;
use crate::params::{FromParams, Params};
use crate::study::Study;

/// The Table I reproduction: per-OS counts by validity flag, plus the
/// distinct counts across OSes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityDistribution {
    per_os: Vec<(OsDistribution, [usize; 4])>,
    distinct: [usize; 4],
}

impl ValidityDistribution {
    fn compute_impl(study: &StudyDataset) -> Self {
        let index_of = |validity: Validity| {
            Validity::ALL
                .iter()
                .position(|v| *v == validity)
                .expect("Validity::ALL is exhaustive")
        };
        let mut per_os = Vec::with_capacity(OsDistribution::COUNT);
        for os in OsDistribution::ALL {
            let mut counts = [0usize; 4];
            for row in study.store().vulnerabilities_for_os(os) {
                counts[index_of(row.validity)] += 1;
            }
            per_os.push((os, counts));
        }
        let mut distinct = [0usize; 4];
        for row in study.store().rows() {
            distinct[index_of(row.validity)] += 1;
        }
        ValidityDistribution { per_os, distinct }
    }

    /// The per-OS counts in Table I column order
    /// (`[valid, unknown, unspecified, disputed]`).
    pub fn per_os(&self) -> &[(OsDistribution, [usize; 4])] {
        &self.per_os
    }

    /// The counts for one OS.
    pub fn for_os(&self, os: OsDistribution) -> [usize; 4] {
        self.per_os
            .iter()
            .find(|(o, _)| *o == os)
            .map(|(_, counts)| *counts)
            .unwrap_or([0; 4])
    }

    /// Distinct counts across OSes (last row of Table I).
    pub fn distinct(&self) -> [usize; 4] {
        self.distinct
    }

    /// Number of distinct valid vulnerabilities.
    pub fn distinct_valid(&self) -> usize {
        self.distinct[0]
    }

    /// Renders Table I (distribution of OS vulnerabilities by validity).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(["OS", "Valid", "Unknown", "Unspecified", "Disputed"]);
        for (os, counts) in self.per_os() {
            table.push_row([
                os.short_name().to_string(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
                counts[3].to_string(),
            ]);
        }
        let distinct = self.distinct();
        table.push_row([
            "# distinct vuln.".to_string(),
            distinct[0].to_string(),
            distinct[1].to_string(),
            distinct[2].to_string(),
            distinct[3].to_string(),
        ]);
        table
    }
}

impl Analysis for ValidityDistribution {
    type Config = ();
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Validity
    }

    fn run(study: &Study, _config: &()) -> Result<Self, AnalysisError> {
        Ok(Self::compute_impl(study.dataset()))
    }
}

/// The Table I section of the combined report.
pub(crate) fn validity_sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    Ok(vec![Section::table(
        "Table I: validity distribution",
        study.get::<ValidityDistribution>()?.to_table(),
    )])
}

/// Parameterized Table I sections (the analysis takes no parameters, so
/// any key is rejected).
pub(crate) fn validity_sections_with(
    study: &Study,
    params: &Params,
) -> Result<Vec<Section>, AnalysisError> {
    <() as FromParams>::from_params(params)?;
    validity_sections(study)
}

/// The Table II reproduction: per-OS counts by component class, plus the
/// percentage of each class over the whole data set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDistribution {
    per_os: Vec<(OsDistribution, [usize; 4])>,
    class_totals: [usize; 4],
    distinct_total: usize,
}

impl ClassDistribution {
    /// Only valid vulnerabilities are counted; unclassified rows are
    /// ignored (the paper classified every valid entry, so run the
    /// classifier first for full coverage).
    fn compute_impl(study: &StudyDataset) -> Self {
        let index_of = |part: OsPart| {
            OsPart::ALL
                .iter()
                .position(|p| *p == part)
                .expect("OsPart::ALL is exhaustive")
        };
        let mut per_os = Vec::with_capacity(OsDistribution::COUNT);
        for os in OsDistribution::ALL {
            let mut counts = [0usize; 4];
            for row in study.store().vulnerabilities_for_os(os) {
                if !row.is_valid() {
                    continue;
                }
                if let Some(part) = row.part {
                    counts[index_of(part)] += 1;
                }
            }
            per_os.push((os, counts));
        }
        let mut class_totals = [0usize; 4];
        let mut distinct_total = 0usize;
        for row in study.store().valid_rows() {
            if let Some(part) = row.part {
                class_totals[index_of(part)] += 1;
                distinct_total += 1;
            }
        }
        ClassDistribution {
            per_os,
            class_totals,
            distinct_total,
        }
    }

    /// The per-OS counts in Table II column order
    /// (`[driver, kernel, system software, application]`).
    pub fn per_os(&self) -> &[(OsDistribution, [usize; 4])] {
        &self.per_os
    }

    /// The counts for one OS.
    pub fn for_os(&self, os: OsDistribution) -> [usize; 4] {
        self.per_os
            .iter()
            .find(|(o, _)| *o == os)
            .map(|(_, counts)| *counts)
            .unwrap_or([0; 4])
    }

    /// The per-OS total (must equal the OS's valid count when every row is
    /// classified).
    pub fn total_for_os(&self, os: OsDistribution) -> usize {
        self.for_os(os).iter().sum()
    }

    /// The percentage of each class over the distinct classified
    /// vulnerabilities (last row of Table II).
    pub fn class_percentages(&self) -> [f64; 4] {
        let mut percentages = [0.0; 4];
        if self.distinct_total == 0 {
            return percentages;
        }
        for (i, count) in self.class_totals.iter().enumerate() {
            percentages[i] = *count as f64 * 100.0 / self.distinct_total as f64;
        }
        percentages
    }

    /// The percentage of one class over the distinct classified
    /// vulnerabilities.
    pub fn class_percentage(&self, part: OsPart) -> f64 {
        let index = OsPart::ALL
            .iter()
            .position(|p| *p == part)
            .expect("OsPart::ALL is exhaustive");
        self.class_percentages()[index]
    }

    /// Renders Table II (vulnerabilities per OS component class).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(["OS", "Driver", "Kernel", "Sys. Soft.", "App.", "Total"]);
        for (os, counts) in self.per_os() {
            let total: usize = counts.iter().sum();
            table.push_row([
                os.short_name().to_string(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
                counts[3].to_string(),
                total.to_string(),
            ]);
        }
        let percentages = self.class_percentages();
        table.push_row([
            "% Total".to_string(),
            format!("{:.1}%", percentages[0]),
            format!("{:.1}%", percentages[1]),
            format!("{:.1}%", percentages[2]),
            format!("{:.1}%", percentages[3]),
            String::new(),
        ]);
        table
    }
}

impl Analysis for ClassDistribution {
    type Config = ();
    type Output = Self;

    fn id() -> AnalysisId {
        AnalysisId::Classes
    }

    fn run(study: &Study, _config: &()) -> Result<Self, AnalysisError> {
        Ok(Self::compute_impl(study.dataset()))
    }
}

/// The Table II section of the combined report.
pub(crate) fn class_sections(study: &Study) -> Result<Vec<Section>, AnalysisError> {
    Ok(vec![Section::table(
        "Table II: component classes",
        study.get::<ClassDistribution>()?.to_table(),
    )])
}

/// Parameterized Table II sections (the analysis takes no parameters, so
/// any key is rejected).
pub(crate) fn class_sections_with(
    study: &Study,
    params: &Params,
) -> Result<Vec<Section>, AnalysisError> {
    <() as FromParams>::from_params(params)?;
    class_sections(study)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::calibration::{table1_row, table2_row};
    use datagen::CalibratedGenerator;

    fn calibrated_study() -> Study {
        let dataset = CalibratedGenerator::new(5).generate();
        Study::from_entries(dataset.entries())
    }

    #[test]
    fn validity_distribution_matches_table1() {
        let study = calibrated_study();
        let table1 = study.get::<ValidityDistribution>().unwrap();
        for os in OsDistribution::ALL {
            let expected = table1_row(os);
            let [valid, unknown, unspecified, disputed] = table1.for_os(os);
            assert_eq!(valid as u32, expected.valid, "{os} valid");
            assert_eq!(unknown as u32, expected.unknown, "{os} unknown");
            assert_eq!(unspecified as u32, expected.unspecified, "{os} unspecified");
            assert_eq!(disputed as u32, expected.disputed, "{os} disputed");
        }
        // The distinct valid count is close to the paper's 1887 (the exact
        // multi-OS merge structure is unpublished, see EXPERIMENTS.md).
        let distinct = table1.distinct_valid() as i64;
        assert!((distinct - 1887).abs() < 300, "distinct valid = {distinct}");
    }

    #[test]
    fn class_distribution_is_close_to_table2() {
        let study = calibrated_study();
        let table2 = study.get::<ClassDistribution>().unwrap();
        for os in OsDistribution::ALL {
            let expected = table2_row(os);
            let counts = table2.for_os(os);
            for (i, part) in OsPart::ALL.iter().enumerate() {
                let want = i64::from(expected.count(*part));
                let got = counts[i] as i64;
                let slack = 6 + want * 20 / 100;
                assert!(
                    (got - want).abs() <= slack,
                    "{os} {part}: got {got}, paper {want}"
                );
            }
        }
    }

    #[test]
    fn class_percentages_follow_the_paper_shape() {
        let study = calibrated_study();
        let table2 = study.get::<ClassDistribution>().unwrap();
        let [driver, kernel, syssoft, app] = table2.class_percentages();
        // Paper: 1.4% / 35.5% / 23.2% / 39.9%.
        assert!(driver < 5.0, "driver share {driver:.1}%");
        assert!((25.0..=50.0).contains(&kernel), "kernel share {kernel:.1}%");
        assert!(
            (15.0..=35.0).contains(&syssoft),
            "system software share {syssoft:.1}%"
        );
        assert!((30.0..=50.0).contains(&app), "application share {app:.1}%");
        let total: f64 = table2.class_percentages().iter().sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn per_os_class_totals_equal_valid_counts_when_fully_classified() {
        let study = calibrated_study();
        let table1 = study.get::<ValidityDistribution>().unwrap();
        let table2 = study.get::<ClassDistribution>().unwrap();
        for os in OsDistribution::ALL {
            assert_eq!(table2.total_for_os(os), table1.for_os(os)[0], "{os}");
        }
    }

    #[test]
    fn empty_dataset_is_all_zero() {
        let study = Study::new(StudyDataset::new());
        let table1 = study.get::<ValidityDistribution>().unwrap();
        assert_eq!(table1.distinct(), [0; 4]);
        let table2 = study.get::<ClassDistribution>().unwrap();
        assert_eq!(table2.class_percentages(), [0.0; 4]);
        assert_eq!(table2.for_os(OsDistribution::Debian), [0; 4]);
    }

    #[test]
    fn tables_have_one_row_per_os_plus_a_totals_row() {
        let study = calibrated_study();
        let table1 = study.get::<ValidityDistribution>().unwrap().to_table();
        assert_eq!(table1.row_count(), OsDistribution::COUNT + 1);
        let table2 = study.get::<ClassDistribution>().unwrap().to_table();
        assert_eq!(table2.row_count(), OsDistribution::COUNT + 1);
    }

    #[test]
    fn sections_with_reject_any_parameter() {
        let study = calibrated_study();
        let empty = Params::new();
        assert_eq!(validity_sections_with(&study, &empty).unwrap().len(), 1);
        assert_eq!(class_sections_with(&study, &empty).unwrap().len(), 1);
        let params = Params::from_pairs([("profile", "fat")]);
        assert!(validity_sections_with(&study, &params).is_err());
        assert!(class_sections_with(&study, &params).is_err());
    }
}
