//! Accuracy and concurrency suite for [`osdiv_core::obs::LatencyHistogram`]:
//! histogram quantiles must track exact sorted-sample percentiles within
//! the documented relative error, the Prometheus series must stay
//! cumulative and self-consistent for arbitrary inputs, and concurrent
//! recording (and merging) must lose nothing versus sequential recording.

use std::sync::Arc;
use std::thread;

use osdiv_core::obs::{LatencyHistogram, MAX_TRACKED_US, PROMETHEUS_BOUNDS_US};
use proptest::prelude::*;

/// The exact `q`-percentile of a sample: the value at rank
/// `ceil(q * n)` (1-based) of the sorted sample — the same rank the
/// histogram answers with a bucket upper edge.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    let rank = rank.clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram answers with the upper edge of the bucket holding the
/// exact answer, so it may over-report by one bucket width: ≈1/64 of the
/// value above the linear region, 0 below it.
fn within_bucket_error(reported: u64, exact: u64) -> bool {
    let exact = exact.min(MAX_TRACKED_US);
    // Never under the exact answer…
    if reported < exact {
        return false;
    }
    // …and over by at most one sub-bucket (1/64 relative, rounded up),
    // which is 0 in the exact linear region.
    let slack = if exact < 64 { 0 } else { exact / 64 + 1 };
    reported <= exact + slack
}

proptest! {
    #[test]
    fn quantiles_track_exact_percentiles(
        values in proptest::collection::vec(0u64..MAX_TRACKED_US, 1..400),
        quantile_permille in proptest::collection::vec(0u64..=1000, 1..8),
    ) {
        let mut values = values;
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record_us(v);
        }
        values.sort_unstable();
        let snap = hist.snapshot();
        prop_assert_eq!(snap.total(), values.len() as u64);
        prop_assert_eq!(snap.sum_us(), values.iter().sum::<u64>());
        for &permille in &quantile_permille {
            let q = permille as f64 / 1000.0;
            let exact = exact_quantile(&values, q);
            let reported = snap.quantile_us(q);
            prop_assert!(
                within_bucket_error(reported, exact),
                "q={} exact={} reported={}",
                q,
                exact,
                reported
            );
        }
    }

    #[test]
    fn prometheus_series_is_cumulative_and_consistent(
        values in proptest::collection::vec(0u64..(2 * MAX_TRACKED_US), 0..200),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record_us(v);
        }
        let mut out = String::new();
        hist.snapshot().render_prometheus("h", "", &mut out);

        let mut cumulative = Vec::new();
        let mut count = None;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("h_bucket{le=\"") {
                let v: u64 = rest.split("\"} ").nth(1).unwrap().parse().unwrap();
                cumulative.push(v);
            } else if let Some(rest) = line.strip_prefix("h_count ") {
                count = Some(rest.parse::<u64>().unwrap());
            }
        }
        // One line per boundary plus +Inf, monotone, ending at _count.
        prop_assert_eq!(cumulative.len(), PROMETHEUS_BOUNDS_US.len() + 1);
        prop_assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(cumulative.last().copied(), Some(values.len() as u64));
        prop_assert_eq!(count, Some(values.len() as u64));
    }
}

#[test]
fn concurrent_recording_equals_sequential() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;

    let shared = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&shared);
            thread::spawn(move || {
                // A deterministic per-thread value stream spanning the
                // whole bucket range.
                for i in 0..PER_THREAD {
                    hist.record_us((t * PER_THREAD + i) * 977 % (2 * MAX_TRACKED_US));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let sequential = LatencyHistogram::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            sequential.record_us((t * PER_THREAD + i) * 977 % (2 * MAX_TRACKED_US));
        }
    }

    let concurrent_snap = shared.snapshot();
    let sequential_snap = sequential.snapshot();
    assert_eq!(concurrent_snap.total(), THREADS * PER_THREAD);
    assert_eq!(concurrent_snap.total(), sequential_snap.total());
    assert_eq!(concurrent_snap.sum_us(), sequential_snap.sum_us());
    let mut concurrent_out = String::new();
    let mut sequential_out = String::new();
    concurrent_snap.render_prometheus("h", "", &mut concurrent_out);
    sequential_snap.render_prometheus("h", "", &mut sequential_out);
    assert_eq!(concurrent_out, sequential_out);
}

#[test]
fn merged_shards_equal_one_histogram() {
    let merged = LatencyHistogram::new();
    let reference = LatencyHistogram::new();
    let shards: Vec<Arc<LatencyHistogram>> =
        (0..4).map(|_| Arc::new(LatencyHistogram::new())).collect();
    let handles: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(s, shard)| {
            let shard = Arc::clone(shard);
            thread::spawn(move || {
                for i in 0..10_000u64 {
                    shard.record_us((s as u64 * 10_000 + i) * 31 % 1_000_000);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    for s in 0..4u64 {
        for i in 0..10_000 {
            reference.record_us((s * 10_000 + i) * 31 % 1_000_000);
        }
    }
    for shard in &shards {
        merged.merge_from(shard);
    }
    let merged_snap = merged.snapshot();
    let reference_snap = reference.snapshot();
    assert_eq!(merged_snap.total(), reference_snap.total());
    assert_eq!(merged_snap.sum_us(), reference_snap.sum_us());
    for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(merged_snap.quantile_us(q), reference_snap.quantile_us(q));
    }
}

#[test]
fn recording_takes_shared_references_only() {
    // The hot path is `&self` over relaxed atomics: this compiles exactly
    // because no lock or &mut is involved, and a pre-sized bucket table
    // means no allocation either (the assertion is the signature itself).
    let hist = LatencyHistogram::new();
    let borrow_a = &hist;
    let borrow_b = &hist;
    borrow_a.record_us(10);
    borrow_b.record_us(20);
    assert_eq!(hist.snapshot().total(), 2);
}
