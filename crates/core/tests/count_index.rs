//! Equivalence suite for the zeta-transform [`CountIndex`]: for random
//! datasets, the indexed answers of every counting query must equal a
//! naive scan of the store — for random masks × **all** profiles × random
//! year windows, including degenerate and out-of-range windows.

use osdiv_core::{Period, ServerProfile, StudyDataset};

use nvd_model::{CveId, CvssV2, Date, OsPart, OsSet, Validity, VulnerabilityEntry};
use proptest::prelude::*;
use vulnstore::VulnerabilityRow;

/// One randomly drawn vulnerability: year, affected mask, part, access
/// vector and validity.
#[derive(Debug, Clone)]
struct RawEntry {
    year: u16,
    mask: u16,
    part: Option<OsPart>,
    remote: bool,
    valid: bool,
}

fn raw_entry() -> impl Strategy<Value = RawEntry> {
    (
        1990u16..2015,
        0u16..(1 << 11),
        prop_oneof![
            Just(None),
            Just(Some(OsPart::Driver)),
            Just(Some(OsPart::Kernel)),
            Just(Some(OsPart::SystemSoftware)),
            Just(Some(OsPart::Application)),
        ],
        (0u8..2).prop_map(|b| b == 1),
        (0u8..2).prop_map(|b| b == 1),
    )
        .prop_map(|(year, mask, part, remote, valid)| RawEntry {
            year,
            mask,
            part,
            remote,
            valid,
        })
}

fn dataset_from(raws: &[RawEntry]) -> StudyDataset {
    let entries: Vec<VulnerabilityEntry> = raws
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let mut builder = VulnerabilityEntry::builder(CveId::new(raw.year, i as u32 + 1))
                .published(Date::new(raw.year, 6, 1).unwrap())
                .summary(format!("synthetic vulnerability {i}"))
                .affects_set(OsSet::from_bits(raw.mask))
                .cvss(if raw.remote {
                    CvssV2::typical_remote()
                } else {
                    CvssV2::typical_local()
                });
            if let Some(part) = raw.part {
                builder = builder.part(part);
            }
            let mut entry = builder.build().unwrap();
            if !raw.valid {
                entry.set_validity(Validity::Unspecified);
            }
            entry
        })
        .collect();
    StudyDataset::from_entries(&entries)
}

/// The reference implementation: a full scan of the store with the same
/// retention predicate the dataset applies.
fn scan_common(
    dataset: &StudyDataset,
    group: OsSet,
    profile: ServerProfile,
    first: u16,
    last: u16,
) -> usize {
    dataset
        .store()
        .rows()
        .filter(|row| {
            dataset.retains(row, profile)
                && (first..=last).contains(&row.year())
                && group.is_subset_of(&row.os_set)
        })
        .count()
}

fn scan_shared_within(
    dataset: &StudyDataset,
    group: OsSet,
    profile: ServerProfile,
    first: u16,
    last: u16,
) -> usize {
    let wanted = |row: &&VulnerabilityRow| {
        dataset.retains(row, profile) && (first..=last).contains(&row.year())
    };
    if group.len() <= 1 {
        return scan_common(dataset, group, profile, first, last);
    }
    dataset
        .store()
        .rows()
        .filter(wanted)
        .filter(|row| row.os_set.intersection(group).len() >= 2)
        .count()
}

fn scan_at_least(dataset: &StudyDataset, profile: ServerProfile, k: usize) -> usize {
    dataset
        .store()
        .rows()
        .filter(|row| dataset.retains(row, profile) && row.os_set.len() >= k)
        .count()
}

proptest! {
    #[test]
    fn indexed_counts_match_the_naive_scan(
        raws in proptest::collection::vec(raw_entry(), 0..60),
        group_bits in 0u16..(1 << 11),
        window in (1985u16..2020, 1985u16..2020),
    ) {
        let dataset = dataset_from(&raws);
        let group = OsSet::from_bits(group_bits);
        // Both orientations: a window and its (possibly empty) reverse.
        for (first, last) in [window, (window.1, window.0)] {
            for profile in ServerProfile::ALL {
                prop_assert_eq!(
                    dataset.count_common_years(group, profile, first, last),
                    scan_common(&dataset, group, profile, first, last),
                    "common {group} {profile:?} {first}..={last}"
                );
                prop_assert_eq!(
                    dataset.count_shared_within_years(group, profile, first, last),
                    scan_shared_within(&dataset, group, profile, first, last),
                    "shared {group} {profile:?} {first}..={last}"
                );
            }
        }
    }

    #[test]
    fn indexed_period_queries_match_the_naive_scan(
        raws in proptest::collection::vec(raw_entry(), 0..60),
        group_bits in 0u16..(1 << 11),
    ) {
        let dataset = dataset_from(&raws);
        let group = OsSet::from_bits(group_bits);
        for period in [Period::History, Period::Observed, Period::Whole] {
            let (first, last) = period.years();
            for profile in ServerProfile::ALL {
                prop_assert_eq!(
                    dataset.count_common_in(group, profile, period),
                    scan_common(&dataset, group, profile, first, last)
                );
                prop_assert_eq!(
                    dataset.count_shared_within(group, profile, period),
                    scan_shared_within(&dataset, group, profile, first, last)
                );
            }
        }
    }

    #[test]
    fn indexed_popcount_totals_match_the_naive_scan(
        raws in proptest::collection::vec(raw_entry(), 0..60),
    ) {
        let dataset = dataset_from(&raws);
        let index = dataset.count_index();
        for profile in ServerProfile::ALL {
            for k in 0..=12 {
                prop_assert_eq!(
                    index.rows_with_at_least(profile, k),
                    scan_at_least(&dataset, profile, k),
                    "at_least {profile:?} k={}", k
                );
            }
        }
    }
}

#[test]
fn coarse_datasets_fall_back_to_exact_scans() {
    // More than MAX_YEAR_LAYERS distinct years: the index degrades to one
    // whole-range layer and the dataset methods must transparently answer
    // narrow windows by scanning.
    let raws: Vec<RawEntry> = (0..300)
        .map(|i| RawEntry {
            year: 1200 + i as u16 * 2,
            mask: 1 << (i % 11),
            part: Some(OsPart::Kernel),
            remote: i % 3 != 0,
            valid: true,
        })
        .collect();
    let dataset = dataset_from(&raws);
    assert!(dataset.count_index().is_coarse());
    let group = OsSet::from_bits(0b1);
    for profile in ServerProfile::ALL {
        for (first, last) in [(0, u16::MAX), (1200, 1300), (1500, 1400), (1795, 1799)] {
            assert_eq!(
                dataset.count_common_years(group, profile, first, last),
                scan_common(&dataset, group, profile, first, last),
                "{profile:?} {first}..={last}"
            );
        }
    }
}

#[test]
fn the_index_is_memoized_and_invalidated_on_classification() {
    let raws = vec![RawEntry {
        year: 2005,
        mask: 0b11,
        part: None,
        remote: true,
        valid: true,
    }];
    let mut dataset = dataset_from(&raws);
    let first = dataset.count_index();
    let again = dataset.count_index();
    assert!(std::sync::Arc::ptr_eq(&first, &again), "index is memoized");
    // A clone shares the already built tables…
    let cloned = dataset.clone();
    assert!(std::sync::Arc::ptr_eq(&first, &cloned.count_index()));
    // …and classification drops them (retention may change).
    let classified = dataset.classify_unlabelled(&classify::Classifier::with_default_rules());
    assert_eq!(classified, 1);
    let rebuilt = dataset.count_index();
    assert!(!std::sync::Arc::ptr_eq(&first, &rebuilt));
}
