//! Integration tests for the span-tracing flight recorder: wrap-around
//! retention, concurrent multi-writer integrity, parent/child nesting
//! reconstruction, and the Chrome-trace dump format.

use std::thread;

use osdiv_core::obs::{self, LABEL_BYTES};
use osdiv_core::{FlightRecorder, SpanKind, SpanRecord};

/// A record whose payload fields all derive from its id, so a torn write
/// (fields from two different writers in one slot) is detectable.
fn coherent_record(id: u64) -> SpanRecord {
    SpanRecord {
        id,
        parent: id.wrapping_mul(3),
        trace: id.wrapping_mul(5),
        kind: SpanKind::Render,
        tid: id % 7,
        start_us: id.wrapping_mul(1_000),
        dur_us: id,
        label: [0; LABEL_BYTES],
    }
}

fn assert_coherent(record: &SpanRecord) {
    let id = record.id;
    assert_eq!(record.parent, id.wrapping_mul(3), "torn parent in slot");
    assert_eq!(record.trace, id.wrapping_mul(5), "torn trace in slot");
    assert_eq!(
        record.start_us,
        id.wrapping_mul(1_000),
        "torn start in slot"
    );
    assert_eq!(record.dur_us, id, "torn duration in slot");
}

#[test]
fn wrap_around_keeps_the_newest_records_and_counts_drops_exactly() {
    let recorder = FlightRecorder::with_capacity(16);
    assert_eq!(recorder.capacity(), 16);
    for _ in 0..100 {
        let id = recorder.next_span_id();
        recorder.record(coherent_record(id));
    }
    assert_eq!(recorder.recorded_total(), 100);
    assert_eq!(recorder.dropped(), 84, "dropped = recorded - capacity");
    assert_eq!(recorder.contended(), 0, "a single writer never contends");

    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.total, 100);
    assert_eq!(snapshot.dropped, 84);
    let ids: Vec<u64> = snapshot.records.iter().map(|r| r.id).collect();
    let expected: Vec<u64> = (85..=100).collect();
    assert_eq!(
        ids, expected,
        "the ring retains exactly the newest 16 spans"
    );
    for record in &snapshot.records {
        assert_coherent(record);
    }
}

#[test]
fn concurrent_writers_never_tear_records_and_account_for_every_claim() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 200;
    let recorder = FlightRecorder::with_capacity(32);
    thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for _ in 0..PER_WRITER {
                    let id = recorder.next_span_id();
                    recorder.record(coherent_record(id));
                }
            });
        }
    });
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(
        recorder.recorded_total(),
        total,
        "every write claims exactly one slot"
    );
    assert_eq!(recorder.dropped(), total - 32);

    let snapshot = recorder.snapshot();
    assert!(
        snapshot.records.len() <= 32,
        "a snapshot never exceeds the ring capacity"
    );
    assert!(
        !snapshot.records.is_empty(),
        "the ring retains records after the storm"
    );
    for record in &snapshot.records {
        assert_coherent(record);
    }
    // The snapshot is ordered for direct Chrome-trace rendering.
    for pair in snapshot.records.windows(2) {
        assert!(
            (pair[0].start_us, pair[0].id) <= (pair[1].start_us, pair[1].id),
            "snapshot records sort by (start, id)"
        );
    }
    // Contended writes are skipped, not torn — they are counted instead.
    assert_eq!(
        snapshot.contended,
        recorder.contended(),
        "the snapshot reports the contention counter"
    );
}

#[test]
fn nested_spans_reconstruct_their_parent_chain_from_the_dump() {
    // The free functions feed the process-global ring; unique labels keep
    // this test independent of whatever else the process recorded.
    let parent = obs::span(SpanKind::Analysis, "fr_nest_outer");
    let parent_id = parent.id();
    let child = obs::span(SpanKind::IndexBuild, "fr_nest_inner");
    let child_id = child.id();
    drop(child);
    drop(parent);

    let snapshot = FlightRecorder::global().snapshot();
    let find = |id: u64| {
        snapshot
            .records
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("span {id} is in the dump"))
    };
    let inner = find(child_id);
    assert_eq!(inner.parent, parent_id, "the child links to its parent");
    assert_eq!(inner.label_str(), "fr_nest_inner");
    assert_eq!(inner.display_name(), "index_build:fr_nest_inner");
    let outer = find(parent_id);
    assert_eq!(outer.parent, 0, "the outermost span is a root");
    assert!(
        outer.start_us <= inner.start_us,
        "the parent starts before the child"
    );
}

#[test]
fn chrome_trace_dump_renders_spans_with_request_joins() {
    let recorder = FlightRecorder::with_capacity(8);
    let trace_key = (0xabcd1234u64 << 32) | 0x11u64;
    let mut traced = coherent_record(recorder.next_span_id());
    traced.trace = trace_key;
    recorder.record(traced);
    let mut untraced = coherent_record(recorder.next_span_id());
    untraced.trace = 0;
    recorder.record(untraced);

    let json = recorder.snapshot().to_chrome_trace();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(
        json.contains("\"traceEvents\":["),
        "trace-event array present"
    );
    assert!(json.contains("\"ph\":\"X\""), "complete-span phase events");
    assert!(
        json.contains(&format!(
            "\"request\":\"{}\"",
            obs::format_trace_id(trace_key)
        )),
        "traced spans carry the X-Request-Id join key"
    );
    assert!(
        json.contains("\"otherData\":{"),
        "ring accounting rides along in otherData"
    );
}
