//! Round-trip and robustness suite for the `OSDV` snapshot container:
//! random datasets must survive write → read with every analysis
//! byte-identical, every corruption must answer a typed error (never a
//! panic), and a golden-fixture test re-parses the writer's output using
//! only the offsets documented in docs/SNAPSHOT_FORMAT.md — so the spec
//! and the code cannot drift apart silently.

use nvd_model::{CveId, CvssV2, Date, OsPart, OsSet, Validity, VulnerabilityEntry};
use osdiv_core::{
    analysis_sections, renderer, AnalysisId, Format, Params, Snapshot, SnapshotError, Study,
    StudyDataset,
};
use proptest::prelude::*;

/// One randomly drawn vulnerability: year, affected mask, part, access
/// vector and validity.
#[derive(Debug, Clone)]
struct RawEntry {
    year: u16,
    mask: u16,
    part: Option<OsPart>,
    remote: bool,
    valid: bool,
}

fn raw_entry() -> impl Strategy<Value = RawEntry> {
    (
        1990u16..2015,
        0u16..(1 << 11),
        prop_oneof![
            Just(None),
            Just(Some(OsPart::Driver)),
            Just(Some(OsPart::Kernel)),
            Just(Some(OsPart::SystemSoftware)),
            Just(Some(OsPart::Application)),
        ],
        (0u8..2).prop_map(|b| b == 1),
        (0u8..2).prop_map(|b| b == 1),
    )
        .prop_map(|(year, mask, part, remote, valid)| RawEntry {
            year,
            mask,
            part,
            remote,
            valid,
        })
}

fn dataset_from(raws: &[RawEntry]) -> StudyDataset {
    let entries: Vec<VulnerabilityEntry> = raws
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let mut builder = VulnerabilityEntry::builder(CveId::new(raw.year, i as u32 + 1))
                .published(Date::new(raw.year, 6, 1).unwrap())
                .summary(format!("synthetic vulnerability {i}"))
                .affects_set(OsSet::from_bits(raw.mask))
                .cvss(if raw.remote {
                    CvssV2::typical_remote()
                } else {
                    CvssV2::typical_local()
                });
            if let Some(part) = raw.part {
                builder = builder.part(part);
            }
            let mut entry = builder.build().unwrap();
            if !raw.valid {
                entry.set_validity(Validity::Unspecified);
            }
            entry
        })
        .collect();
    StudyDataset::from_entries(&entries)
}

/// An analysis rendered to JSON, or the error it answers — both sides of
/// the round trip must agree on which.
fn rendered(study: &Study, id: AnalysisId) -> Result<String, String> {
    analysis_sections(study, id, &Params::new())
        .map(|sections| renderer(Format::Json).document(&sections))
        .map_err(|error| error.to_string())
}

proptest! {
    #[test]
    fn every_analysis_survives_the_round_trip_byte_for_byte(
        raws in proptest::collection::vec(raw_entry(), 0..40),
    ) {
        let original = Study::new(dataset_from(&raws));
        let meta = vec![("origin".to_string(), "roundtrip".to_string())];
        let bytes = Snapshot::to_bytes(original.dataset(), &meta);

        let snapshot = Snapshot::from_bytes(&bytes).expect("a fresh snapshot reads back");
        prop_assert!(snapshot.index_loaded, "the writer always includes the index");
        prop_assert_eq!(&snapshot.meta, &meta);
        let reloaded = Study::new(snapshot.dataset);

        for id in AnalysisId::ALL {
            prop_assert_eq!(
                rendered(&original, id),
                rendered(&reloaded, id),
                "analysis {} diverged after the round trip",
                id.name()
            );
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected_or_harmless(
        raws in proptest::collection::vec(raw_entry(), 1..12),
        flip in (0usize..usize::MAX, 1u8..=255),
    ) {
        let dataset = dataset_from(&raws);
        let bytes = Snapshot::to_bytes(&dataset, &[("k".into(), "v".into())]);
        let expected = Snapshot::from_bytes(&bytes).unwrap().dataset;

        let position = flip.0 % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[position] ^= flip.1;
        // A typed verdict, never a panic. Reads that still succeed must
        // have been saved by a CRC-covered redundancy (e.g. a flipped
        // INDEX byte falls back to the rebuilt index) and therefore still
        // decode an equivalent store.
        if let Ok(snapshot) = Snapshot::from_bytes(&corrupt) {
            prop_assert_eq!(
                snapshot.dataset.store().vulnerability_count(),
                expected.store().vulnerability_count(),
                "an accepted byte flip at {} changed the store",
                position
            );
        }
    }

    #[test]
    fn any_truncation_answers_a_typed_error(
        raws in proptest::collection::vec(raw_entry(), 1..12),
        cut in 0usize..usize::MAX,
    ) {
        let dataset = dataset_from(&raws);
        let bytes = Snapshot::to_bytes(&dataset, &[]);
        let cut = cut % bytes.len(); // strictly shorter than the file
        let error = Snapshot::from_bytes(&bytes[..cut])
            .expect_err("a truncated snapshot must not decode");
        prop_assert!(
            matches!(
                error,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::MissingStore
                    | SnapshotError::Rows(_)
            ),
            "unexpected verdict for a truncation at {}: {}",
            cut,
            error
        );
    }
}

#[test]
fn wrong_container_and_store_versions_answer_typed_errors() {
    let dataset = dataset_from(&[RawEntry {
        year: 2005,
        mask: 0b11,
        part: Some(OsPart::Kernel),
        remote: true,
        valid: true,
    }]);
    let bytes = Snapshot::to_bytes(&dataset, &[]);

    // Container version: u16 LE at offset 4 (per docs/SNAPSHOT_FORMAT.md).
    let mut wrong_container = bytes.clone();
    wrong_container[4..6].copy_from_slice(&99u16.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&wrong_container),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    // STORE section version: bytes 2..4 of its 24-byte table entry. The
    // store has no lazy fallback — an unknown version is a hard error
    // (flipping the version also breaks no CRC: only payloads are
    // checksummed, which is exactly why the reader must check it).
    let store_entry = 8;
    let mut wrong_store = bytes.clone();
    wrong_store[store_entry + 2..store_entry + 4].copy_from_slice(&99u16.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&wrong_store),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    // INDEX section version: same offset in the second entry. Unknown
    // index versions are the documented compatibility promise — the read
    // succeeds and the index is rebuilt lazily instead.
    let index_entry = 8 + 24;
    let mut unknown_index = bytes.clone();
    unknown_index[index_entry + 2..index_entry + 4].copy_from_slice(&99u16.to_le_bytes());
    let snapshot = Snapshot::from_bytes(&unknown_index).unwrap();
    assert!(!snapshot.index_loaded);
    assert_eq!(
        snapshot.dataset.store().vulnerability_count(),
        dataset.store().vulnerability_count()
    );
}

/// The reference CRC-32 (IEEE, reflected, `0xEDB8_8320`) computed bit by
/// bit — deliberately *not* the library's table-driven implementation, so
/// this file checks the documented algorithm, not the code against
/// itself.
fn reference_crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Golden fixture: decode a writer-produced file using nothing but the
/// byte offsets documented in docs/SNAPSHOT_FORMAT.md. If the writer and
/// the spec drift apart, this test fails.
#[test]
fn the_documented_offsets_parse_a_real_snapshot() {
    assert_eq!(
        reference_crc32(b"123456789"),
        0xCBF4_3926,
        "the documented check value"
    );

    let dataset = dataset_from(&[
        RawEntry {
            year: 2004,
            mask: 0b101,
            part: Some(OsPart::Driver),
            remote: true,
            valid: true,
        },
        RawEntry {
            year: 2008,
            mask: 0b11,
            part: None,
            remote: false,
            valid: false,
        },
    ]);
    let meta = vec![("source".to_string(), "golden".to_string())];
    let bytes = Snapshot::to_bytes(&dataset, &meta);

    // Fixed header: magic "OSDV", container version u16 LE, section count
    // u16 LE — 8 bytes total.
    assert_eq!(&bytes[0..4], b"OSDV");
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);
    let section_count = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    assert_eq!(section_count, 3, "STORE, INDEX, META");

    // Section table: 24-byte entries from offset 8 —
    // id u16 | version u16 | offset u64 | length u64 | crc32 u32, all LE.
    let mut next_payload = 8 + section_count * 24;
    let mut seen = Vec::new();
    for i in 0..section_count {
        let entry = &bytes[8 + i * 24..8 + (i + 1) * 24];
        let id = u16::from_le_bytes([entry[0], entry[1]]);
        let version = u16::from_le_bytes([entry[2], entry[3]]);
        let offset = u64::from_le_bytes(entry[4..12].try_into().unwrap()) as usize;
        let length = u64::from_le_bytes(entry[12..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(entry[20..24].try_into().unwrap());
        assert_eq!(version, 1, "section {id} version");
        assert_eq!(
            offset, next_payload,
            "payloads are contiguous, in table order"
        );
        assert_eq!(
            reference_crc32(&bytes[offset..offset + length]),
            crc,
            "section {id} CRC over exactly its payload"
        );
        next_payload = offset + length;
        seen.push(id);
    }
    assert_eq!(seen, [1, 2, 3], "section ids: STORE=1, INDEX=2, META=3");
    assert_eq!(next_payload, bytes.len(), "no trailing bytes");

    // The META payload: pair count u32 LE, then length-prefixed UTF-8
    // strings (u32 LE) alternating key, value.
    let meta_entry = &bytes[8 + 2 * 24..8 + 3 * 24];
    let offset = u64::from_le_bytes(meta_entry[4..12].try_into().unwrap()) as usize;
    let payload = &bytes[offset..];
    assert_eq!(u32::from_le_bytes(payload[0..4].try_into().unwrap()), 1);
    let key_len = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
    assert_eq!(&payload[8..8 + key_len], b"source");
    let value_at = 8 + key_len;
    let value_len =
        u32::from_le_bytes(payload[value_at..value_at + 4].try_into().unwrap()) as usize;
    assert_eq!(&payload[value_at + 4..value_at + 4 + value_len], b"golden");
}
