//! `osdiv-guard` CLI: the CI gate.
//!
//! ```text
//! osdiv-guard check [--root <dir>] [--format text|json]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use osdiv_guard::{check_tree, render_json, render_text};

const USAGE: &str = "osdiv-guard — static-analysis gate for attacker-facing modules

Usage: osdiv-guard check [--root <dir>] [--format text|json]

  --root <dir>     workspace root (default: nearest ancestor with a
                   [workspace] Cargo.toml, starting from the current dir)
  --format <fmt>   text (default) or json

Rules (waive inline with `// guard: allow(<rule>) — <reason>`):
  panic   no unwrap/expect/panic!/unreachable!/todo! in attacker-facing code
  index   no bare slice indexing expr[…] — use .get(…)
  arith   no unguarded -/* on length/offset operands — checked_/saturating_
  clamp   Params-derived numerics feeding loops/allocs must be capped
  lock    no RwLock write guard live across ingest/parse/IO calls
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("check") => {}
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return Ok(true);
        }
        Some(other) => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--root" => {
                let value = iter.next().ok_or("--root expects a directory")?;
                root = Some(PathBuf::from(value));
            }
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => json = false,
                Some("json") => json = true,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(root) => root,
        None => find_workspace_root()?,
    };
    let report = check_tree(&root);
    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    Ok(report.is_clean())
}

/// Walks up from the current directory to the nearest `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no [workspace] Cargo.toml above {} — pass --root",
                    start.display()
                ))
            }
        }
    }
}
