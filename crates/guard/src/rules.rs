//! The guard's rule engine: token-level checks over a lexed file.
//!
//! Every rule is deliberately *syntactic* — the guard has no type
//! information and never will. The rules are tuned so that on this
//! workspace's attacker-facing modules the remaining noise is small enough
//! to waive explicitly, and every waiver is counted and must carry a
//! written reason. Golden fixtures under `tests/fixtures/` pin each rule's
//! behavior (bad twin must flag, clean twin must pass).

use crate::tokenizer::{lex, FileLex, Token, TokenKind};

/// The rules the guard enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` outside `#[cfg(test)]`.
    Panic,
    /// No bare slice/array indexing `expr[…]` (use `get`/`get_mut`).
    Index,
    /// No unguarded `-` / `*` / `-=` / `*=` on length/offset-named
    /// operands (use `checked_`/`saturating_`/`wrapping_` or clamp on the
    /// same line).
    Arith,
    /// `Params`-derived numerics feeding loops/allocations must be clamped
    /// (`.min(…)` / `.clamp(…)` / `bounded(…)`) in the same function.
    Clamp,
    /// An `RwLock` write guard must not live across calls into
    /// ingest/parse/decode/IO-named functions.
    Lock,
}

impl Rule {
    pub const ALL: &'static [Rule] = &[
        Rule::Panic,
        Rule::Index,
        Rule::Arith,
        Rule::Clamp,
        Rule::Lock,
    ];

    /// The name used in reports and in `guard: allow(<name>)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Arith => "arith",
            Rule::Clamp => "clamp",
            Rule::Lock => "lock",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// One finding. `rule` is the rule name (or `"waiver"` / `"config"` for
/// meta findings, which cannot themselves be waived).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// An accepted (reason-carrying) waiver, reported for auditability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverRecord {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// The result of checking one file or a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub waivers: Vec<WaiverRecord>,
    pub files_checked: usize,
}

impl Report {
    pub fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.waivers.extend(other.waivers);
        self.files_checked += other.files_checked;
    }

    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Identifiers that make a `[` *not* an index expression when they precede
/// it (keyword positions like `let [a, b] = …` patterns, `impl [T]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Name fragments that mark an identifier as length/offset-flavored for
/// the arith rule.
const LENGTH_SEGMENTS: &[&str] = &[
    "len",
    "length",
    "pos",
    "offset",
    "idx",
    "index",
    "end",
    "start",
    "remaining",
    "keep",
    "take",
    "cap",
    "capacity",
    "count",
    "size",
    "budget",
    "cursor",
    "depth",
    "width",
];

/// Call-name fragments that the lock rule treats as attacker-paced work
/// (parsing, ingestion, replay) or blocking IO.
const LOCK_HAZARDS: &[&str] = &["ingest", "parse", "decode", "replay", "failpoint"];
const LOCK_HAZARDS_EXACT: &[&str] = &[
    "flush",
    "write_all",
    "read_to_end",
    "recv",
    "sync_all",
    "sync_file",
    "sync_dir",
];

/// Statement-level escapes for the arith rule: a flagged operator whose
/// source line shows one of these is considered guarded.
const ARITH_GUARDS: &[&str] = &[
    "saturating_",
    "checked_",
    "wrapping_",
    "overflowing_",
    ".min(",
    ".max(",
    ".clamp(",
];

/// Checks one file's source against a set of rules. `file` is the label
/// used in findings (a repo-relative path in tree mode).
pub fn check_source(file: &str, source: &str, rules: &[Rule]) -> Report {
    let lexed = lex(source);
    let skipped = cfg_test_mask(&lexed.tokens);
    let lines: Vec<&str> = source.lines().collect();
    let mut raw: Vec<Violation> = Vec::new();

    for rule in rules {
        match rule {
            Rule::Panic => panic_rule(file, &lexed, &skipped, &mut raw),
            Rule::Index => index_rule(file, &lexed, &skipped, &mut raw),
            Rule::Arith => arith_rule(file, &lexed, &skipped, &lines, &mut raw),
            Rule::Clamp => clamp_rule(file, &lexed, &skipped, &mut raw),
            Rule::Lock => lock_rule(file, &lexed, &skipped, &mut raw),
        }
    }

    // Waiver pass: a violation is suppressed by a same-line waiver naming
    // its rule *and* carrying a reason. Waivers with no reason or an
    // unknown rule are findings themselves (not suppressible).
    let mut report = Report {
        files_checked: 1,
        ..Report::default()
    };
    for waiver in &lexed.waivers {
        if Rule::from_name(&waiver.rule).is_none() {
            report.violations.push(Violation {
                file: file.to_string(),
                line: waiver.comment_line,
                rule: "waiver",
                message: format!(
                    "waiver names unknown rule {:?} (known: panic, index, arith, clamp, lock)",
                    waiver.rule
                ),
            });
        } else if waiver.reason.is_empty() {
            report.violations.push(Violation {
                file: file.to_string(),
                line: waiver.comment_line,
                rule: "waiver",
                message: format!(
                    "waiver for rule `{}` has no reason — write `// guard: allow({}) — <why>`",
                    waiver.rule, waiver.rule
                ),
            });
        } else {
            report.waivers.push(WaiverRecord {
                file: file.to_string(),
                line: waiver.applies_to,
                rule: waiver.rule.clone(),
                reason: waiver.reason.clone(),
            });
        }
    }
    for violation in raw {
        let waived = report
            .waivers
            .iter()
            .any(|w| w.line == violation.line && w.rule == violation.rule);
        if !waived {
            report.violations.push(violation);
        }
    }
    report.violations.sort_by_key(|v| v.line);
    report
}

/// Marks every token inside an item annotated `#[cfg(test)]` (test modules
/// are not attacker-facing — panics there are assertions, not crashes).
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut skipped = vec![false; tokens.len()];
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip from the attribute through the end of the item it gates:
        // forward to the first `{`, then to its matching `}`. A `;` first
        // (e.g. `#[cfg(test)] mod tests;`) ends the item immediately.
        let start = i;
        let mut j = i + 7;
        while j < tokens.len() && text(j) != Some("{") && text(j) != Some(";") {
            j += 1;
        }
        if text(j) == Some("{") {
            let mut depth = 0i32;
            while j < tokens.len() {
                match text(j) {
                    Some("{") => depth += 1,
                    Some("}") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        for flag in skipped
            .iter_mut()
            .take((j + 1).min(tokens.len()))
            .skip(start)
        {
            *flag = true;
        }
        i = j + 1;
    }
    skipped
}

fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

fn panic_rule(file: &str, lexed: &FileLex, skipped: &[bool], out: &mut Vec<Violation>) {
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        if skipped[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let name = tokens[i].text.as_str();
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        if (name == "unwrap" || name == "expect") && prev == Some(".") && next == Some("(") {
            out.push(Violation {
                file: file.to_string(),
                line: tokens[i].line,
                rule: Rule::Panic.name(),
                message: format!(
                    "`.{name}()` can panic on attacker-controlled input — return an error instead"
                ),
            });
        }
        if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") && next == Some("!") {
            out.push(Violation {
                file: file.to_string(),
                line: tokens[i].line,
                rule: Rule::Panic.name(),
                message: format!("`{name}!` aborts the worker — return an error instead"),
            });
        }
    }
}

fn index_rule(file: &str, lexed: &FileLex, skipped: &[bool], out: &mut Vec<Violation>) {
    let tokens = &lexed.tokens;
    for i in 1..tokens.len() {
        if skipped[i] || tokens[i].text != "[" {
            continue;
        }
        let prev = &tokens[i - 1];
        let is_index = match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text),
            TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
            _ => false,
        };
        if is_index {
            let subject = match prev.kind {
                TokenKind::Ident => format!("`{}[…]`", prev.text),
                _ => "`…[…]`".to_string(),
            };
            out.push(Violation {
                file: file.to_string(),
                line: tokens[i].line,
                rule: Rule::Index.name(),
                message: format!("bare indexing {subject} can panic out of bounds — use `.get(…)`"),
            });
        }
    }
}

/// Splits a lowered identifier on `_` and checks the arith name flavor.
fn is_length_flavored(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower
        .split('_')
        .any(|segment| LENGTH_SEGMENTS.contains(&segment))
        || lower.contains("len")
        || lower.contains("offset")
        || lower.contains("pos")
        || lower.contains("idx")
}

/// The nearest identifier looking backwards from `i` (exclusive), hopping
/// over call/index punctuation — finds `len` in `self.buffer.len() - keep`.
fn operand_ident_back(tokens: &[Token], i: usize) -> Option<&str> {
    let mut j = i;
    let mut hops = 0;
    while j > 0 && hops < 4 {
        j -= 1;
        hops += 1;
        match tokens[j].kind {
            TokenKind::Ident if !is_keyword(&tokens[j].text) => return Some(&tokens[j].text),
            TokenKind::Punct if matches!(tokens[j].text.as_str(), ")" | "]" | "(" | "." | "?") => {}
            _ => return None,
        }
    }
    None
}

/// The nearest identifier looking forwards from `i` (exclusive).
fn operand_ident_fwd(tokens: &[Token], i: usize) -> Option<&str> {
    let mut j = i;
    let mut hops = 0;
    while j + 1 < tokens.len() && hops < 4 {
        j += 1;
        hops += 1;
        match tokens[j].kind {
            TokenKind::Ident if tokens[j].text == "self" => {}
            TokenKind::Ident if !is_keyword(&tokens[j].text) => return Some(&tokens[j].text),
            TokenKind::Punct if matches!(tokens[j].text.as_str(), "(" | "&" | ".") => {}
            _ => return None,
        }
    }
    None
}

fn arith_rule(
    file: &str,
    lexed: &FileLex,
    skipped: &[bool],
    lines: &[&str],
    out: &mut Vec<Violation>,
) {
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        if skipped[i] {
            continue;
        }
        let op = tokens[i].text.as_str();
        let flagged_names: Vec<&str> = match op {
            "-" | "*" => {
                let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
                    continue;
                };
                let binary_left = match prev.kind {
                    TokenKind::Ident => !is_keyword(&prev.text),
                    TokenKind::Number => true,
                    TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                    _ => false,
                };
                let binary_right = tokens.get(i + 1).is_some_and(|next| match next.kind {
                    TokenKind::Ident => !is_keyword(&next.text),
                    TokenKind::Number => true,
                    TokenKind::Punct => next.text == "(",
                    _ => false,
                });
                if !(binary_left && binary_right) {
                    continue;
                }
                operand_ident_back(tokens, i)
                    .into_iter()
                    .chain(operand_ident_fwd(tokens, i))
                    .collect()
            }
            "-=" | "*=" => operand_ident_back(tokens, i)
                .into_iter()
                .chain(operand_ident_fwd(tokens, i))
                .collect(),
            _ => continue,
        };
        let Some(name) = flagged_names.iter().find(|n| is_length_flavored(n)) else {
            continue;
        };
        let line_no = tokens[i].line;
        let source_line = lines.get(line_no as usize - 1).copied().unwrap_or("");
        if ARITH_GUARDS.iter().any(|g| source_line.contains(g)) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: line_no,
            rule: Rule::Arith.name(),
            message: format!(
                "unguarded `{op}` on length/offset operand `{name}` can overflow — use \
                 `checked_`/`saturating_` or clamp on this line"
            ),
        });
    }
}

/// A function body: token index range (exclusive of the outer braces'
/// positions is not needed — ranges include them).
struct FnSpan {
    name: String,
    start: usize,
    end: usize,
}

/// Finds every `fn` item body (heuristic: from `fn`, the first `{` at zero
/// paren/bracket depth opens the body; `;` first means no body).
fn function_spans(tokens: &[Token], skipped: &[bool]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if skipped[i] || tokens[i].text != "fn" || tokens[i].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = tokens
            .get(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let mut j = i + 1;
        let mut paren = 0i32;
        let body_start = loop {
            let Some(token) = tokens.get(j) else {
                break None;
            };
            match token.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => break Some(j),
                ";" if paren == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut k = start;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push(FnSpan {
            name,
            start,
            end: k.min(tokens.len().saturating_sub(1)),
        });
        i = start + 1; // nested fns get their own (overlapping) span
    }
    spans
}

/// Walks back from `i` to the start of the enclosing statement.
fn statement_start(tokens: &[Token], i: usize, floor: usize) -> usize {
    let mut j = i;
    while j > floor {
        if matches!(tokens[j - 1].text.as_str(), ";" | "{" | "}") {
            break;
        }
        j -= 1;
    }
    j
}

/// The end (`;` index, or span end) of the statement starting at `s`.
fn statement_end(tokens: &[Token], s: usize, ceil: usize) -> usize {
    let mut j = s;
    while j < ceil {
        if tokens[j].text == ";" {
            return j;
        }
        j += 1;
    }
    ceil
}

/// The binding name of a `let` statement starting at `s`, if any: the
/// first identifier after `let` that isn't `mut`/pattern scaffolding.
fn let_binding_name(tokens: &[Token], s: usize, end: usize) -> Option<String> {
    let mut saw_let = false;
    for token in tokens.iter().take(end).skip(s) {
        if token.text == "=" {
            return None; // hit the initializer without a name
        }
        if !saw_let {
            if token.text == "let" {
                saw_let = true;
            }
            continue;
        }
        if token.kind == TokenKind::Ident
            && !matches!(token.text.as_str(), "mut" | "Some" | "Ok" | "ref")
        {
            return Some(token.text.clone());
        }
    }
    None
}

fn clamp_rule(file: &str, lexed: &FileLex, skipped: &[bool], out: &mut Vec<Violation>) {
    let tokens = &lexed.tokens;
    for span in function_spans(tokens, skipped) {
        // 1. Params-derived local bindings in this function.
        let mut derived: Vec<(String, usize, usize)> = Vec::new(); // (name, stmt_start, stmt_end)
        for i in span.start..span.end {
            if skipped[i] {
                continue;
            }
            let receiver_is_params = tokens[i].kind == TokenKind::Ident
                && tokens[i].text.to_ascii_lowercase().ends_with("params");
            if !receiver_is_params
                || tokens.get(i + 1).map(|t| t.text.as_str()) != Some(".")
                || !tokens.get(i + 2).is_some_and(|t| {
                    matches!(t.text.as_str(), "parse" | "parse_list" | "get" | "take")
                })
            {
                continue;
            }
            let s = statement_start(tokens, i, span.start);
            let e = statement_end(tokens, s, span.end);
            if let Some(name) = let_binding_name(tokens, s, e) {
                derived.push((name, s, e));
            }
        }
        // 2. Clamped if the binding statement clamps, or the name is later
        //    fed through `.min(` / `.clamp(` / a `bounded(`-style call.
        let clamped = |name: &str, stmt: (usize, usize)| -> bool {
            let stmt_clamps = tokens[stmt.0..stmt.1].iter().any(|t| {
                t.kind == TokenKind::Ident && matches!(t.text.as_str(), "min" | "clamp" | "bounded")
            });
            if stmt_clamps {
                return true;
            }
            (span.start..span.end).any(|i| {
                !skipped[i]
                    && tokens[i].text == name
                    && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(".")
                    && tokens
                        .get(i + 2)
                        .is_some_and(|t| matches!(t.text.as_str(), "min" | "clamp"))
            })
        };
        // 3. Sinks: ranges (`..name`, `..=name`), `with_capacity(name…`,
        //    `vec![…; name]`.
        for (name, s, e) in &derived {
            if clamped(name, (*s, *e)) {
                continue;
            }
            for i in span.start..span.end {
                if skipped[i] || tokens[i].text != *name || tokens[i].kind != TokenKind::Ident {
                    continue;
                }
                if i >= *s && i < *e {
                    continue; // its own binding statement is not a sink
                }
                let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
                let is_range_end = matches!(prev, Some("..") | Some("..="));
                let is_capacity =
                    prev == Some("(") && i >= 2 && tokens[i - 2].text == "with_capacity";
                let is_vec_len = prev == Some(";") && {
                    let mut j = i;
                    let mut found = false;
                    while j > span.start {
                        j -= 1;
                        if tokens[j].text == "[" {
                            found = j > 0 && tokens[j - 1].text == "!";
                            break;
                        }
                        if tokens[j].text == "]" || tokens[j].text == "{" {
                            break;
                        }
                    }
                    found
                };
                if is_range_end || is_capacity || is_vec_len {
                    out.push(Violation {
                        file: file.to_string(),
                        line: tokens[i].line,
                        rule: Rule::Clamp.name(),
                        message: format!(
                            "HTTP-reachable parameter `{name}` feeds a loop/allocation in \
                             `{}` without a `.min(…)`/`.clamp(…)`/`bounded(…)` cap",
                            span.name
                        ),
                    });
                    break; // one finding per binding is enough
                }
            }
        }
    }
}

fn lock_rule(file: &str, lexed: &FileLex, skipped: &[bool], out: &mut Vec<Violation>) {
    let tokens = &lexed.tokens;
    // Brace depth at each token, for live-range scoping.
    let mut depth = 0i32;
    let depths: Vec<i32> = tokens
        .iter()
        .map(|t| {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            depth
        })
        .collect();

    for span in function_spans(tokens, skipped) {
        for i in span.start..span.end {
            if skipped[i] {
                continue;
            }
            // `let <guard> = <expr>.write(…)…;`
            if tokens[i].text != "write"
                || tokens[i].kind != TokenKind::Ident
                || i == 0
                || tokens[i - 1].text != "."
                || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("(")
            {
                continue;
            }
            let s = statement_start(tokens, i, span.start);
            let e = statement_end(tokens, s, span.end);
            let Some(guard_name) = let_binding_name(tokens, s, e) else {
                continue;
            };
            let binding_depth = depths.get(e).copied().unwrap_or(0);
            // Live range: from the end of the binding statement until the
            // enclosing block closes or `drop(<guard>)`.
            let mut j = e;
            while j + 1 < span.end {
                j += 1;
                if depths[j] < binding_depth {
                    break;
                }
                if tokens[j].text == "drop"
                    && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("(")
                    && tokens.get(j + 2).map(|t| t.text.as_str()) == Some(guard_name.as_str())
                {
                    break;
                }
                let is_call = tokens[j].kind == TokenKind::Ident
                    && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("(");
                if !is_call || skipped[j] {
                    continue;
                }
                let callee = tokens[j].text.to_ascii_lowercase();
                let hazardous = LOCK_HAZARDS.iter().any(|h| callee.contains(h))
                    || LOCK_HAZARDS_EXACT.contains(&callee.as_str());
                if hazardous {
                    out.push(Violation {
                        file: file.to_string(),
                        line: tokens[j].line,
                        rule: Rule::Lock.name(),
                        message: format!(
                            "write guard `{guard_name}` (taken line {}) is live across \
                             `{}()` — attacker-paced work under an exclusive lock stalls \
                             every reader",
                            tokens[i].line, tokens[j].text
                        ),
                    });
                    break; // one finding per guard
                }
            }
        }
    }
}
